#!/bin/bash
# Regenerates every table and figure. Outputs land in results/.
set -x
cd /root/repo
B=./target/release
{ time $B/fig1   --scale 1.0            ; } > results/fig1.txt   2> results/fig1.log
{ time $B/table4 --scale 0.25           ; } > results/table4.txt 2> results/table4.log
{ time $B/table5 --scale 0.25           ; } > results/table5.txt 2> results/table5.log
{ time $B/table6 --scale 0.25           ; } > results/table6.txt 2> results/table6.log
{ time $B/fig8   --scale 0.25           ; } > results/fig8.txt   2> results/fig8.log
{ time $B/fig9                          ; } > results/fig9.txt   2> results/fig9.log
{ time $B/memcost --scale 0.25          ; } > results/memcost.txt 2> results/memcost.log
{ time $B/fig7   --scale 0.25           ; } > results/fig7.txt   2> results/fig7.log
{ time $B/pipeline                      ; } > /dev/null          2> results/pipeline.log
{ time $B/kernels                       ; } > /dev/null          2> results/kernels.log
{ time $B/drift                         ; } > /dev/null          2> results/drift.log
{ time $B/serve  --scale 0.25           ; } > /dev/null          2> results/serve.log
{ time $B/partition --scale 0.25        ; } > /dev/null          2> results/partition.log
echo ALL_DONE
