#![warn(missing_docs)]
//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice-parallelism surface the workspace actually uses — `par_iter().map()
//! .collect()`, `par_iter_mut().for_each()`, `par_chunks_mut().enumerate()
//! .for_each()` — on `std::thread::scope`. Work is split into one contiguous
//! band per thread, which keeps `map().collect()` order-stable (a property
//! the engine's determinism guarantees rely on). With one available core (or
//! `RAYON_NUM_THREADS=1`) everything runs inline with zero spawn overhead.

use std::sync::OnceLock;

/// Number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            })
    })
}

/// Runs the two closures, in parallel when more than one thread is available.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        (a(), b())
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            (a(), hb.join().expect("rayon-shim worker panicked"))
        })
    }
}

/// The import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSliceMut,
    };
}

/// `par_iter()` on shared slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// The element type.
    type Item: Sync + 'a;
    /// Shared parallel iterator over the elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// `par_iter_mut()` on mutable slices and vectors.
pub trait IntoParallelRefMutIterator<'a> {
    /// The element type.
    type Item: Send + 'a;
    /// Exclusive parallel iterator over the elements.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

/// `par_chunks_mut()` on mutable slices and vectors.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of `size`.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunksMut { data: self, size }
    }
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        self.as_mut_slice().par_chunks_mut(size)
    }
}

/// Shared parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element through `f`.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap { items: self.items, f }
    }

    /// Applies `f` to every element.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let bands = band_starts(self.items.len());
        if bands.len() <= 1 {
            self.items.iter().for_each(f);
            return;
        }
        let fr = &f;
        std::thread::scope(|s| {
            for w in bands.windows(2) {
                let band = &self.items[w[0]..w[1]];
                s.spawn(move || band.iter().for_each(fr));
            }
            self.items[*bands.last().unwrap()..].iter().for_each(fr);
        });
    }
}

/// The result of [`ParIter::map`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Collects the mapped elements, preserving input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.items.len();
        let bands = band_starts(n);
        if bands.len() <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let f = &self.f;
        let mut parts: Vec<Vec<R>> = Vec::with_capacity(bands.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = bands
                .windows(2)
                .map(|w| {
                    let band = &self.items[w[0]..w[1]];
                    s.spawn(move || band.iter().map(f).collect::<Vec<R>>())
                })
                .collect();
            let last = &self.items[*bands.last().unwrap()..];
            let tail: Vec<R> = last.iter().map(f).collect();
            for h in handles {
                parts.push(h.join().expect("rayon-shim worker panicked"));
            }
            parts.push(tail);
        });
        parts.into_iter().flatten().collect()
    }
}

/// Exclusive parallel iterator over a slice.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Applies `f` to every element.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        self.enumerate().for_each(|(_, item)| f(item));
    }

    /// Pairs each element with its index.
    pub fn enumerate(self) -> EnumerateMut<'a, T> {
        EnumerateMut { items: self.items }
    }
}

/// The result of [`ParIterMut::enumerate`].
pub struct EnumerateMut<'a, T> {
    items: &'a mut [T],
}

impl<T: Send> EnumerateMut<'_, T> {
    /// Applies `f` to every `(index, element)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        let n = self.items.len();
        let bands = band_starts(n);
        if bands.len() <= 1 {
            for (i, item) in self.items.iter_mut().enumerate() {
                f((i, item));
            }
            return;
        }
        let mut rest = self.items;
        std::thread::scope(|s| {
            let mut start = 0usize;
            for w in bands.windows(2) {
                let (band, tail) = rest.split_at_mut(w[1] - w[0]);
                rest = tail;
                let base = start;
                let fr = &f;
                s.spawn(move || {
                    for (i, item) in band.iter_mut().enumerate() {
                        fr((base + i, item));
                    }
                });
                start = w[1];
            }
            for (i, item) in rest.iter_mut().enumerate() {
                f((start + i, item));
            }
        });
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T> {
    data: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its chunk index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut { data: self.data, size: self.size }
    }

    /// Applies `f` to every chunk.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// The result of [`ParChunksMut::enumerate`].
pub struct EnumerateChunksMut<'a, T> {
    data: &'a mut [T],
    size: usize,
}

impl<T: Send> EnumerateChunksMut<'_, T> {
    /// Applies `f` to every `(chunk_index, chunk)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let n_chunks = self.data.len().div_ceil(self.size.max(1));
        let bands = band_starts(n_chunks);
        if bands.len() <= 1 {
            for (i, chunk) in self.data.chunks_mut(self.size).enumerate() {
                f((i, chunk));
            }
            return;
        }
        let mut rest = self.data;
        std::thread::scope(|s| {
            let mut chunk_base = 0usize;
            for w in bands.windows(2) {
                let elems = ((w[1] - w[0]) * self.size).min(rest.len());
                let (band, tail) = rest.split_at_mut(elems);
                rest = tail;
                let base = chunk_base;
                let size = self.size;
                let fr = &f;
                s.spawn(move || {
                    for (i, chunk) in band.chunks_mut(size).enumerate() {
                        fr((base + i, chunk));
                    }
                });
                chunk_base = w[1];
            }
            for (i, chunk) in rest.chunks_mut(self.size).enumerate() {
                f((chunk_base + i, chunk));
            }
        });
    }
}

/// Start offsets of each thread's contiguous band over `n` items, ending
/// sentinel excluded. A single band means "run inline".
fn band_starts(n: usize) -> Vec<usize> {
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n == 0 {
        return vec![0];
    }
    let per = n.div_ceil(threads);
    (0..threads).map(|t| t * per).filter(|&s| s < n).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_touches_every_element_once() {
        let mut data = vec![0u32; 1003];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = (i * 10 + j) as u32 + 1;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
    }

    #[test]
    fn iter_mut_for_each_mutates_in_place() {
        let mut data: Vec<usize> = vec![0; 517];
        data.par_iter_mut().enumerate().for_each(|(i, x)| *x = i + 7);
        assert!(data.iter().enumerate().all(|(i, &x)| x == i + 7));
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let mut nothing: [u16; 0] = [];
        nothing.par_chunks_mut(4).enumerate().for_each(|_| panic!("no chunks expected"));
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }
}
