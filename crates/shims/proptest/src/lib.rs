#![warn(missing_docs)]
//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of proptest the workspace's property tests use: the
//! [`proptest!`] macro, range / tuple / [`Just`] / `collection::vec` /
//! `bool::ANY` strategies, `prop_flat_map` / `prop_map`, and the
//! `prop_assume!` / `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test seed (derived from the test name), and failing cases are
//! reported with their case number but **not shrunk**. Failures therefore
//! reproduce exactly on re-run, which is what matters for CI.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the runner draws a fresh case.
    Reject(String),
    /// An assertion failed; the runner panics with this message.
    Fail(String),
}

/// Per-block runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections before the runner gives up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256, max_global_rejects: 65_536 }
    }
}

/// A generator of random values (upstream proptest's `Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Transforms each generated value.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Generates `true` or `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random_range(0u32..2) == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Length specifications accepted by [`vec()`]: a fixed `usize` or a
    /// half-open `Range<usize>`.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// A strategy producing `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// The result of [`vec()`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.draw_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives one property test: draws cases, retries rejections, panics on the
/// first failing case with its case number (no shrinking).
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash = (hash ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::seed_from_u64(hash ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        attempt += 1;
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < config.max_global_rejects,
                    "property `{name}`: too many prop_assume! rejections \
                     ({rejected}) after {passed} passing cases"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property `{name}` failed at case {} (attempt {}):\n{msg}",
                    passed + 1,
                    attempt
                );
            }
        }
    }
}

/// The common import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::ProptestConfig = $cfg;
            let __pt_strategies = ($($strat,)+);
            $crate::run_cases(&__pt_config, stringify!($name), |__pt_rng| {
                let ($($pat,)+) = $crate::Strategy::generate(&__pt_strategies, __pt_rng);
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

/// Rejects the current case (the runner draws fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed at {}:{}: {}: {}",
                file!(), line!(), stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __pt_l = $left;
        let __pt_r = $right;
        if __pt_l != __pt_r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed at {}:{}: {} == {}\n  left: {:?}\n right: {:?}",
                file!(), line!(), stringify!($left), stringify!($right), __pt_l, __pt_r
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __pt_l = $left;
        let __pt_r = $right;
        if __pt_l == __pt_r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed at {}:{}: {} != {}\n  both: {:?}",
                file!(), line!(), stringify!($left), stringify!($right), __pt_l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -5i32..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn flat_map_threads_values(
            (n, v) in (1usize..6).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0u32..100, n))
            }),
        ) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_rejects_and_retries(b in crate::bool::ANY, k in 0u64..4) {
            prop_assume!(k != 1);
            prop_assert_ne!(k, 1);
            let _ = b;
        }

        #[test]
        fn fixed_size_vec(v in crate::collection::vec(crate::bool::ANY, 7)) {
            prop_assert_eq!(v.len(), 7);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed at case 1")]
    fn failure_reports_case_number() {
        crate::run_cases(
            &ProptestConfig { cases: 8, ..ProptestConfig::default() },
            "always_fails",
            |_rng| -> Result<(), crate::TestCaseError> {
                prop_assert!(false);
                Ok(())
            },
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            crate::run_cases(
                &ProptestConfig { cases: 16, ..ProptestConfig::default() },
                "determinism_probe",
                |rng| {
                    out.push(Strategy::generate(&(0u64..1_000_000), rng));
                    Ok(())
                },
            );
        }
        assert_eq!(first, second);
    }
}
