#![warn(missing_docs)]
//! Offline stand-in for `crossbeam`.
//!
//! Only the bounded-channel surface the examples use is provided, backed by
//! `std::sync::mpsc::sync_channel` (same blocking-on-full semantics).

/// Multi-producer single-consumer channels.
pub mod channel {
    /// A channel disconnection error, mirroring `crossbeam_channel::SendError`.
    pub use std::sync::mpsc::SendError;

    /// Sending half of a bounded channel.
    pub struct Sender<T>(std::sync::mpsc::SyncSender<T>);

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Sender<T> {
        /// Sends `value`, blocking while the channel is full. Errors when the
        /// receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Receiver<T> {
        /// Blocking iterator draining the channel until all senders are gone.
        pub fn iter(&self) -> std::sync::mpsc::Iter<'_, T> {
            self.0.iter()
        }

        /// Receives one value, blocking until one is available. Errors when
        /// all senders are gone.
        pub fn recv(&self) -> Result<T, std::sync::mpsc::RecvError> {
            self.0.recv()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = std::sync::mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// A bounded channel holding at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn roundtrip_through_thread() {
        let (tx, rx) = channel::bounded(2);
        let producer = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
