#![warn(missing_docs)]
//! Offline stand-in for `crossbeam`.
//!
//! Only the bounded-channel surface the examples use is provided, backed by
//! `std::sync::mpsc::sync_channel` (same blocking-on-full semantics).

/// Multi-producer single-consumer channels.
pub mod channel {
    /// A channel disconnection error, mirroring `crossbeam_channel::SendError`.
    pub use std::sync::mpsc::SendError;
    /// A non-blocking send failure, mirroring `crossbeam_channel::TrySendError`.
    pub use std::sync::mpsc::TrySendError;
    /// A timed receive failure, mirroring `crossbeam_channel::RecvTimeoutError`.
    pub use std::sync::mpsc::RecvTimeoutError;
    /// A non-blocking receive failure, mirroring `crossbeam_channel::TryRecvError`.
    pub use std::sync::mpsc::TryRecvError;

    /// Sending half of a bounded channel.
    pub struct Sender<T>(std::sync::mpsc::SyncSender<T>);

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Sender<T> {
        /// Sends `value`, blocking while the channel is full. Errors when the
        /// receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }

        /// Sends `value` without blocking; errors when the channel is full
        /// or the receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocking iterator draining the channel until all senders are gone.
        pub fn iter(&self) -> std::sync::mpsc::Iter<'_, T> {
            self.0.iter()
        }

        /// Receives one value, blocking until one is available. Errors when
        /// all senders are gone.
        pub fn recv(&self) -> Result<T, std::sync::mpsc::RecvError> {
            self.0.recv()
        }

        /// Receives one value without blocking; errors when the channel is
        /// empty or all senders are gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Receives one value, giving up after `timeout`.
        pub fn recv_timeout(
            &self,
            timeout: std::time::Duration,
        ) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = std::sync::mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// A bounded channel holding at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn roundtrip_through_thread() {
        let (tx, rx) = channel::bounded(2);
        let producer = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn try_send_reports_full() {
        let (tx, rx) = channel::bounded::<u8>(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(channel::TrySendError::Full(2))));
        assert_eq!(rx.recv().unwrap(), 1);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = channel::bounded::<u8>(1);
        let timeout = std::time::Duration::from_millis(5);
        assert!(matches!(rx.recv_timeout(timeout), Err(channel::RecvTimeoutError::Timeout)));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(timeout).unwrap(), 9);
    }
}
