#![warn(missing_docs)]
//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the tiny slice of `rand`'s API it actually uses: a seedable deterministic
//! generator ([`rngs::StdRng`], xoshiro256** seeded via SplitMix64) and
//! [`RngExt::random_range`] over half-open / inclusive primitive ranges.
//! Sequences are deterministic per seed (that is all the experiments need —
//! they do not need to match upstream `rand` streams bit-for-bit).

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value convenience methods, mirroring `rand::Rng`'s `random_range`.
pub trait RngExt: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<G: RngCore> RngExt for G {}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Small, fast, and high-quality for simulation workloads; the state is
    /// expanded from the seed with SplitMix64 as the xoshiro authors
    /// recommend.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`; `hi` must be strictly greater.
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the modulo bias
                // of a 64-bit draw against spans this small is < 2^-64 and
                // irrelevant for synthetic workloads, but this is exact
                // enough and branch-free.
                let draw = rng.next_u64() as u128;
                let off = (draw * span) >> 64;
                ((lo as i128) + off as i128) as $t
            }
            #[inline]
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = rng.next_u64() as u128;
                let off = (draw * span) >> 64;
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty => $bits:expr),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                // 53 (resp. 24) uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> (64 - $bits)) as $t
                    / (1u64 << $bits) as $t;
                lo + unit * (hi - lo)
            }
            #[inline]
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t
                    / ((1u64 << $bits) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

uniform_float!(f64 => 53, f32 => 24);

/// Range shapes accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1 << 60), b.random_range(0u64..1 << 60));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.random_range(0u32..1000) == b.random_range(0u32..1000)).count();
        assert!(same < 16, "streams should differ: {same}/64 collisions");
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&y));
            let z = rng.random_range(0u32..=9);
            assert!(z <= 9);
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values should appear in 1000 draws");
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&x));
            let y: f32 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn tiny_positive_lower_bound_works() {
        // sparse_power_law draws from f64::MIN_POSITIVE..1.0.
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
        }
    }
}
