#![warn(missing_docs)]
//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this crate provides a
//! minimal drop-in for the benchmark surface the workspace uses:
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, and `Bencher::iter`. Each bench
//! runs a short warm-up, then `sample_size` timed samples, and prints the
//! median / mean / min per-iteration time. No statistical regression
//! analysis is performed — numbers are for eyeballing trends, not for
//! criterion-grade comparisons.

use std::time::{Duration, Instant};

/// Re-export so existing `use criterion::black_box` imports keep working.
pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name, sample_size }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }
}

/// A named benchmark identifier (`function_name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function.into(), parameter) }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (printing already happened per bench).
    pub fn finish(self) {}
}

/// Hands the measured routine to the harness.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    mode: Mode,
}

enum Mode {
    /// Estimating a good iteration count.
    Calibrate(Duration),
    /// Collecting timed samples.
    Measure,
}

impl Bencher {
    /// Times `routine`, running it enough times per sample to be measurable.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Calibrate(ref mut elapsed) => {
                let t = Instant::now();
                black_box(routine());
                *elapsed = t.elapsed();
            }
            Mode::Measure => {
                let t = Instant::now();
                for _ in 0..self.iters_per_sample {
                    black_box(routine());
                }
                self.samples.push(t.elapsed() / self.iters_per_sample.max(1) as u32);
            }
        }
    }
}

fn run_bench<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // One calibration pass: pick an iteration count that makes a sample take
    // roughly a millisecond, so cheap kernels aren't all timer noise.
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        mode: Mode::Calibrate(Duration::ZERO),
    };
    f(&mut b);
    let once = match b.mode {
        Mode::Calibrate(d) => d,
        Mode::Measure => unreachable!(),
    };
    let iters = if once >= Duration::from_millis(1) {
        1
    } else {
        (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 1 << 20) as u64
    };

    let mut b = Bencher { samples: Vec::new(), iters_per_sample: iters, mode: Mode::Measure };
    for _ in 0..sample_size {
        f(&mut b);
    }
    let mut samples = b.samples;
    if samples.is_empty() {
        println!("{label:<48} (no samples — routine never called iter)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples[0];
    println!(
        "{label:<48} median {median:>12?}  mean {mean:>12?}  min {min:>12?}  ({} samples x {iters} iters)",
        samples.len()
    );
}

/// Declares a group of benchmark functions, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(5);
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0, "routine should have been invoked");
    }

    #[test]
    fn group_api_roundtrip() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("f", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats_as_path() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }
}
