#![warn(missing_docs)]
#![cfg(unix)]
//! Offline stand-in for `mio`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! readiness-multiplexing surface the serving layer uses — [`Poll`],
//! [`Events`], [`Token`], [`Interest`], [`Waker`] — over raw OS facilities:
//! **epoll** on Linux and **poll(2)** everywhere else on Unix (and on Linux
//! when `INK_MIO_FORCE_POLL=1`, so the fallback stays tested). Both backends
//! are level-triggered: an event keeps firing while the condition holds, so
//! the caller never has to drain a socket to redeem the next notification.
//!
//! Everything is `std` plus four libc symbols declared here (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `poll`) — std already links libc on every Unix
//! target, so no external crate is needed.
//!
//! ```
//! use mio::{Events, Interest, Poll, Token};
//! use std::io::Write;
//! use std::os::unix::net::UnixStream;
//!
//! let poll = Poll::new().unwrap();
//! let (mut a, b) = UnixStream::pair().unwrap();
//! b.set_nonblocking(true).unwrap();
//! poll.register(&b, Token(7), Interest::READABLE).unwrap();
//!
//! let mut events = Events::with_capacity(8);
//! // Nothing to read yet: a zero timeout comes back empty.
//! poll.poll(&mut events, Some(std::time::Duration::ZERO)).unwrap();
//! assert!(events.is_empty());
//!
//! a.write_all(b"x").unwrap();
//! poll.poll(&mut events, Some(std::time::Duration::from_secs(1))).unwrap();
//! let event = events.iter().next().expect("readable after the peer wrote");
//! assert_eq!(event.token(), Token(7));
//! assert!(event.is_readable());
//! ```

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Mutex;
use std::time::Duration;

/// Caller-chosen identifier attached to a registration and echoed back on
/// every event for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Which readiness conditions a registration asks to be told about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Wake when the source has bytes to read (or hit EOF / an error).
    pub const READABLE: Interest = Interest(0b01);
    /// Wake when the source can accept bytes without blocking.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combines two interests (`READABLE | WRITABLE` via [`Interest::add`]).
    /// Named after the upstream `mio::Interest::add`, which this shim
    /// mirrors — not the `std::ops::Add` trait.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Does this interest include readability?
    pub fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Does this interest include writability?
    pub fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness notification.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    closed: bool,
}

impl Event {
    /// The token the source was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// The source has bytes (or EOF, or an error) to read.
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// The source can accept bytes without blocking.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// The peer closed or the source errored (`EPOLLHUP`/`EPOLLERR`/
    /// `EPOLLRDHUP`, `POLLHUP`/`POLLERR`). Also reported as readable so a
    /// plain read loop observes the EOF.
    pub fn is_closed(&self) -> bool {
        self.closed
    }
}

/// Reusable buffer of events filled by [`Poll::poll`].
#[derive(Debug)]
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// A buffer that receives at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events { inner: Vec::with_capacity(capacity.max(1)), capacity: capacity.max(1) }
    }

    /// Iterates the events of the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// No events were delivered (the poll timed out).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of events delivered by the last poll.
    pub fn len(&self) -> usize {
        self.inner.len()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

// ---------------------------------------------------------------------------
// libc declarations (std links libc on every Unix target).

#[cfg(target_os = "linux")]
mod sys_epoll {
    //! The four epoll symbols plus the event struct layout. On x86-64 the
    //! kernel ABI packs `epoll_event` to 12 bytes; other architectures use
    //! natural alignment.

    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLL_CLOEXEC: i32 = 0x80000;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }
}

mod sys_poll {
    //! `poll(2)` — POSIX, available on every Unix target.

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: i32) -> i32;
    }
}

/// Converts an optional timeout to the millisecond convention both backends
/// use: `None` → block forever (-1), sub-millisecond non-zero waits round up
/// to 1 ms so a short timeout never spins.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) if d.is_zero() => 0,
        Some(d) => i32::try_from(d.as_millis().max(1)).unwrap_or(i32::MAX),
    }
}

// ---------------------------------------------------------------------------
// Backends.

#[cfg(target_os = "linux")]
struct EpollBackend {
    epfd: OwnedFd,
    buf: Vec<sys_epoll::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollBackend {
    fn new() -> io::Result<Self> {
        let fd = unsafe { sys_epoll::epoll_create1(sys_epoll::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { epfd: unsafe { OwnedFd::from_raw_fd(fd) }, buf: Vec::new() })
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = sys_epoll::EPOLLRDHUP;
        if interest.is_readable() {
            bits |= sys_epoll::EPOLLIN;
        }
        if interest.is_writable() {
            bits |= sys_epoll::EPOLLOUT;
        }
        bits
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: Interest, token: Token) -> io::Result<()> {
        let mut ev = sys_epoll::EpollEvent {
            events: Self::interest_bits(interest),
            data: token.0 as u64,
        };
        let rc = unsafe { sys_epoll::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = sys_epoll::EpollEvent { events: 0, data: 0 };
        let rc = unsafe {
            sys_epoll::epoll_ctl(self.epfd.as_raw_fd(), sys_epoll::EPOLL_CTL_DEL, fd, &mut ev)
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        self.buf.resize(events.capacity, sys_epoll::EpollEvent { events: 0, data: 0 });
        let n = loop {
            let rc = unsafe {
                sys_epoll::epoll_wait(
                    self.epfd.as_raw_fd(),
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms(timeout),
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        events.inner.clear();
        for raw in &self.buf[..n] {
            let (bits, data) = (raw.events, raw.data);
            let closed =
                bits & (sys_epoll::EPOLLERR | sys_epoll::EPOLLHUP | sys_epoll::EPOLLRDHUP) != 0;
            events.inner.push(Event {
                token: Token(data as usize),
                readable: bits & sys_epoll::EPOLLIN != 0 || closed,
                writable: bits & sys_epoll::EPOLLOUT != 0,
                closed,
            });
        }
        Ok(())
    }
}

struct PollBackend {
    /// Registration table: fd → (token, interest). Rebuilt into a `pollfd`
    /// array on every poll — O(n) per call, which is exactly why epoll is
    /// preferred where available.
    regs: HashMap<RawFd, (Token, Interest)>,
    fds: Vec<sys_poll::PollFd>,
}

impl PollBackend {
    fn new() -> Self {
        Self { regs: HashMap::new(), fds: Vec::new() }
    }

    fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        self.fds.clear();
        let mut tokens = Vec::with_capacity(self.regs.len());
        for (&fd, &(token, interest)) in &self.regs {
            let mut bits = 0i16;
            if interest.is_readable() {
                bits |= sys_poll::POLLIN;
            }
            if interest.is_writable() {
                bits |= sys_poll::POLLOUT;
            }
            self.fds.push(sys_poll::PollFd { fd, events: bits, revents: 0 });
            tokens.push(token);
        }
        let n = loop {
            let rc = unsafe {
                sys_poll::poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as std::os::raw::c_ulong,
                    timeout_ms(timeout),
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        events.inner.clear();
        if n == 0 {
            return Ok(());
        }
        for (pfd, &token) in self.fds.iter().zip(&tokens) {
            if pfd.revents == 0 {
                continue;
            }
            let closed = pfd.revents & (sys_poll::POLLERR | sys_poll::POLLHUP) != 0;
            events.inner.push(Event {
                token,
                readable: pfd.revents & sys_poll::POLLIN != 0 || closed,
                writable: pfd.revents & sys_poll::POLLOUT != 0,
                closed,
            });
            if events.inner.len() == events.capacity {
                break;
            }
        }
        Ok(())
    }
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(EpollBackend),
    Poll(PollBackend),
}

/// Anything with a raw file descriptor can be registered: `TcpListener`,
/// `TcpStream`, `UnixStream`, ... Callers must put sources in non-blocking
/// mode themselves — readiness says a call *won't block now*, not that it
/// returns everything.
pub trait Source: AsRawFd {}
impl<T: AsRawFd> Source for T {}

/// The readiness selector. One per event loop; registrations and polls all
/// go through it. Registration state sits behind a mutex so [`Waker::new`]
/// can register from a `&Poll`, but polling itself takes `&self` and is
/// meant to be driven by a single thread.
pub struct Poll {
    inner: Mutex<Backend>,
    /// Read ends of wakers, drained transparently when their event fires.
    wakers: Mutex<HashMap<usize, UnixStream>>,
}

impl Poll {
    /// Creates a selector: epoll on Linux, poll(2) elsewhere. Setting
    /// `INK_MIO_FORCE_POLL=1` selects the poll(2) backend on Linux too (the
    /// fallback path stays testable on the primary platform).
    pub fn new() -> io::Result<Poll> {
        let force_poll = std::env::var("INK_MIO_FORCE_POLL").is_ok_and(|v| v == "1");
        let backend = {
            #[cfg(target_os = "linux")]
            {
                if force_poll {
                    Backend::Poll(PollBackend::new())
                } else {
                    Backend::Epoll(EpollBackend::new()?)
                }
            }
            #[cfg(not(target_os = "linux"))]
            {
                let _ = force_poll;
                Backend::Poll(PollBackend::new())
            }
        };
        Ok(Poll { inner: Mutex::new(backend), wakers: Mutex::new(HashMap::new()) })
    }

    /// Which backend this selector runs on (`"epoll"` or `"poll"`).
    pub fn backend_name(&self) -> &'static str {
        match *self.inner.lock().expect("mio backend lock poisoned") {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => "epoll",
            Backend::Poll(_) => "poll",
        }
    }

    /// Starts watching `source` for `interest`, tagging events with `token`.
    pub fn register(&self, source: &impl Source, token: Token, interest: Interest) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match &mut *self.inner.lock().expect("mio backend lock poisoned") {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.ctl(sys_epoll::EPOLL_CTL_ADD, fd, interest, token),
            Backend::Poll(pb) => {
                if pb.regs.insert(fd, (token, interest)).is_some() {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd already registered",
                    ));
                }
                Ok(())
            }
        }
    }

    /// Changes the interest set (and/or token) of an existing registration.
    pub fn reregister(
        &self,
        source: &impl Source,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match &mut *self.inner.lock().expect("mio backend lock poisoned") {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.ctl(sys_epoll::EPOLL_CTL_MOD, fd, interest, token),
            Backend::Poll(pb) => match pb.regs.get_mut(&fd) {
                Some(slot) => {
                    *slot = (token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            },
        }
    }

    /// Stops watching `source`. Call before closing the descriptor.
    pub fn deregister(&self, source: &impl Source) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match &mut *self.inner.lock().expect("mio backend lock poisoned") {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.deregister(fd),
            Backend::Poll(pb) => {
                pb.regs.remove(&fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one registered source is ready, the timeout
    /// elapses (`events` comes back empty), or a [`Waker`] fires. Waker
    /// bytes are drained internally — the caller just sees the token.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        match &mut *self.inner.lock().expect("mio backend lock poisoned") {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.poll(events, timeout)?,
            Backend::Poll(pb) => pb.poll(events, timeout)?,
        }
        // Drain any waker whose token fired so level-triggered readiness
        // doesn't re-report a stale wake forever.
        let wakers = self.wakers.lock().expect("mio waker lock poisoned");
        if !wakers.is_empty() {
            for ev in &events.inner {
                if let Some(mut stream) = wakers.get(&ev.token.0) {
                    let mut sink = [0u8; 64];
                    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
                }
            }
        }
        Ok(())
    }
}

/// Cross-thread wakeup for a [`Poll`] blocked in [`Poll::poll`]. Built on a
/// `UnixStream` pair: `wake` writes one byte to the pair's write end; the
/// read end is registered with the poll under `token`, and the byte is
/// drained by `poll` itself when the event is delivered.
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Registers a wakeup channel on `poll` under `token`.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        poll.register(&rx, token, Interest::READABLE)?;
        poll.wakers.lock().expect("mio waker lock poisoned").insert(token.0, rx);
        Ok(Waker { tx })
    }

    /// Wakes the poll. Cheap, thread-safe, and coalescing: multiple wakes
    /// before the poll runs deliver one event (the pipe simply holds more
    /// bytes, all drained together).
    pub fn wake(&self) -> io::Result<()> {
        match (&self.tx).write(&[1u8]) {
            Ok(_) => Ok(()),
            // A full pipe means a wake is already pending — mission achieved.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;

    fn with_backend<R>(force_poll: bool, f: impl FnOnce(Poll) -> R) -> R {
        // Env mutation is test-local; tests touching it run in this module
        // only and restore the variable before returning.
        if force_poll {
            std::env::set_var("INK_MIO_FORCE_POLL", "1");
        } else {
            std::env::remove_var("INK_MIO_FORCE_POLL");
        }
        let poll = Poll::new().unwrap();
        std::env::remove_var("INK_MIO_FORCE_POLL");
        f(poll)
    }

    fn readiness_roundtrip(poll: Poll) {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poll.register(&b, Token(3), Interest::READABLE).unwrap();
        let mut events = Events::with_capacity(4);

        poll.poll(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.is_empty(), "no readiness before the peer writes");

        a.write_all(b"ping").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(2))).unwrap();
        let ev = events.iter().next().expect("readable event");
        assert_eq!(ev.token(), Token(3));
        assert!(ev.is_readable());

        // Level-triggered: still readable until drained.
        poll.poll(&mut events, Some(Duration::ZERO)).unwrap();
        assert_eq!(events.len(), 1);
        let mut sink = [0u8; 16];
        let n = (&b).read(&mut sink).unwrap();
        assert_eq!(n, 4);
        poll.poll(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.is_empty(), "drained socket is no longer readable");

        // Peer hangup surfaces as readable + closed.
        drop(a);
        poll.poll(&mut events, Some(Duration::from_secs(2))).unwrap();
        let ev = events.iter().next().expect("hangup event");
        assert!(ev.is_readable() && ev.is_closed());
        poll.deregister(&b).unwrap();
    }

    #[test]
    fn default_backend_readiness() {
        with_backend(false, readiness_roundtrip);
    }

    #[test]
    fn forced_poll_backend_readiness() {
        with_backend(true, |poll| {
            assert_eq!(poll.backend_name(), "poll");
            readiness_roundtrip(poll);
        });
    }

    #[test]
    fn writable_interest_and_reregister() {
        let poll = Poll::new().unwrap();
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        poll.register(&a, Token(1), Interest::READABLE).unwrap();
        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.is_empty(), "read-only interest on a writable-but-empty socket");

        poll.reregister(&a, Token(9), Interest::READABLE | Interest::WRITABLE).unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(2))).unwrap();
        let ev = events.iter().next().expect("writable event");
        assert_eq!(ev.token(), Token(9));
        assert!(ev.is_writable());
        assert!(!ev.is_readable());
    }

    #[test]
    fn tcp_accept_readiness() {
        let poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poll.register(&listener, Token(0), Interest::READABLE).unwrap();

        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert!(events.iter().any(|e| e.token() == Token(0) && e.is_readable()));
        let (accepted, _) = listener.accept().unwrap();
        drop(accepted);
    }

    #[test]
    fn waker_wakes_across_threads_and_coalesces() {
        let poll = Arc::new(Poll::new().unwrap());
        let waker = Arc::new(Waker::new(&poll, Token(99)).unwrap());

        let w = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            // Many wakes before the poll returns deliver one event.
            for _ in 0..10 {
                w.wake().unwrap();
            }
        });
        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        t.join().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events.iter().next().unwrap().token(), Token(99));

        // The wake bytes were drained by poll itself: no stale readiness.
        poll.poll(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.is_empty(), "waker drained, nothing re-fires");

        // And a fresh wake after draining fires again.
        waker.wake().unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn zero_timeout_never_blocks() {
        let poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(1);
        let t = std::time::Instant::now();
        poll.poll(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(t.elapsed() < Duration::from_millis(100));
    }
}
