//! The message-passing layer abstraction.
//!
//! The paper's expressiveness condition (§II) is that one node's next message
//! depends only on its own message and aggregated neighborhood:
//! `m_{l+1,u} = act(T(α_{l,u}, m_{l,u}))`. A [`Conv`] implementation supplies
//! the two halves of that equation:
//!
//! * [`Conv::message_into`] — `m_{l,u}` from `h_{l,u}` (identity for
//!   aggregate-first layers, a linear transform for transform-first layers);
//! * [`Conv::update_into`] — the combination `T(α, m_u)` *without* the final
//!   activation, which the owning [`crate::Model`] applies after optional
//!   normalisation.
//!
//! [`Conv::self_dependent`] tells the incremental engine whether a changed
//! message propagates to the node itself in the next layer (true for
//! GraphSAGE and GIN, false for GCN) — the distinction behind the paper's
//! observation that GCN enjoys larger speedups.

use crate::Aggregator;
use ink_tensor::GemmScratch;

/// One GNN convolution layer (combination + aggregation, minus activation).
pub trait Conv: Send + Sync {
    /// Dimensionality of the layer input `h_l`.
    fn in_dim(&self) -> usize;

    /// Dimensionality of the message `m_l` entering aggregation.
    fn msg_dim(&self) -> usize;

    /// Dimensionality of the layer output `h_{l+1}`.
    fn out_dim(&self) -> usize;

    /// The aggregation function of this layer.
    fn aggregator(&self) -> Aggregator;

    /// Computes `m_{l,u}` from `h_{l,u}` into `out` (`msg_dim` long).
    fn message_into(&self, h: &[f32], out: &mut [f32]);

    /// True when the message is the identity (`m = h`), letting callers skip
    /// the copy.
    fn message_is_identity(&self) -> bool {
        false
    }

    /// Computes the pre-activation output `T(α_{l,u}, m_{l,u})` into `out`
    /// (`out_dim` long). Implementations that are not
    /// [self-dependent](Conv::self_dependent) ignore `self_msg`.
    fn update_into(&self, alpha: &[f32], self_msg: &[f32], out: &mut [f32]);

    /// Whether [`Conv::update_into`] reads `self_msg` — i.e. whether a change
    /// at a node propagates to the node itself in the next layer.
    fn self_dependent(&self) -> bool;

    /// Parameter count (for the memory model).
    fn param_count(&self) -> usize;

    /// True when the layer's aggregation weights depend on vertex degrees —
    /// the topology-only weighted sum the paper names LightGCN-style
    /// (§II, *Expressiveness*). Engines then scale each stored message by
    /// [`Conv::degree_scale`] of its *source* and each aggregate by
    /// [`Conv::update_scale`] of its *target*, and the incremental engine
    /// additionally rescales cached messages of vertices whose degree a ΔG
    /// batch changed.
    fn degree_scaled(&self) -> bool {
        false
    }

    /// Source-side weight applied to a vertex's message
    /// (`1/√d` for symmetric normalisation; `1` by default).
    fn degree_scale(&self, _degree: usize) -> f32 {
        1.0
    }

    /// Target-side weight applied to the aggregated neighborhood before
    /// [`Conv::update_into`] (`1/√d` for symmetric normalisation).
    fn update_scale(&self, _degree: usize) -> f32 {
        1.0
    }

    /// Batched [`Conv::message_into`] over `rows` row-major input vectors:
    /// `h` is `rows × in_dim`, `out` receives `rows × msg_dim`. Each output
    /// row must be bitwise-identical to `message_into` on the matching input
    /// row; transform-first layers override this with one GEMM over the
    /// whole batch (borrowing pack/ping-pong buffers from `scratch`).
    /// Returns the GEMM flop count (0 for the per-row fallback, which runs
    /// no GEMM).
    fn message_batch_into(
        &self,
        rows: usize,
        h: &[f32],
        out: &mut [f32],
        _scratch: &mut GemmScratch,
    ) -> u64 {
        let (kd, md) = (self.in_dim(), self.msg_dim());
        for (hrow, orow) in
            h.chunks_exact(kd.max(1)).zip(out.chunks_exact_mut(md.max(1))).take(rows)
        {
            self.message_into(hrow, orow);
        }
        0
    }

    /// Batched [`Conv::update_into`]: `alpha` is `rows × msg_dim` (already
    /// target-scaled where [`Conv::degree_scaled`] applies), `self_msg` is
    /// `rows × msg_dim` for [self-dependent](Conv::self_dependent) layers or
    /// empty otherwise, `out` receives `rows × out_dim` pre-activation
    /// values. Each output row must be bitwise-identical to `update_into` on
    /// the matching rows. Returns the GEMM flop count.
    fn update_batch_into(
        &self,
        rows: usize,
        alpha: &[f32],
        self_msg: &[f32],
        out: &mut [f32],
        _scratch: &mut GemmScratch,
    ) -> u64 {
        let (md, od) = (self.msg_dim(), self.out_dim());
        for i in 0..rows {
            let srow: &[f32] =
                if self_msg.is_empty() { &[] } else { &self_msg[i * md..(i + 1) * md] };
            self.update_into(&alpha[i * md..(i + 1) * md], srow, &mut out[i * od..(i + 1) * od]);
        }
        0
    }

    /// Allocating convenience wrapper around [`Conv::message_into`].
    fn message(&self, h: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; self.msg_dim()];
        self.message_into(h, &mut out);
        out
    }

    /// Allocating convenience wrapper around [`Conv::update_into`].
    fn update(&self, alpha: &[f32], self_msg: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; self.out_dim()];
        self.update_into(alpha, self_msg, out.as_mut_slice());
        out
    }
}
