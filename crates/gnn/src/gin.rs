//! GIN convolution (Xu et al.): `h'_u = MLP((1+ε)·h_u + A(h_v : v ∈ N(u)))`.
//!
//! GIN's canonical aggregator is sum; the paper's InkStream-m variant swaps
//! in max. Like GraphSAGE it is self-dependent through the `(1+ε)·h_u` term,
//! and its 5-layer benchmark depth is what makes the theoretical affected
//! area explode on dense graphs.

use crate::{Aggregator, Conv};
use ink_tensor::gemm::GemmScratch;
use ink_tensor::{Activation, Mlp};
use rand::rngs::StdRng;

/// A GIN layer with a 2-layer MLP combination function (the structure used
/// in the original paper and the benchmark).
#[derive(Clone, Debug)]
pub struct GinConv {
    mlp: Mlp,
    eps: f32,
    agg: Aggregator,
}

impl GinConv {
    /// Glorot-initialised layer with an `in → out → out` MLP.
    pub fn new(rng: &mut StdRng, in_dim: usize, out_dim: usize, eps: f32, agg: Aggregator) -> Self {
        Self { mlp: Mlp::new(rng, &[in_dim, out_dim, out_dim], Activation::Relu), eps, agg }
    }

    /// Layer from an explicit MLP.
    pub fn from_mlp(mlp: Mlp, eps: f32, agg: Aggregator) -> Self {
        Self { mlp, eps, agg }
    }
}

impl Conv for GinConv {
    fn in_dim(&self) -> usize {
        self.mlp.in_dim()
    }

    fn msg_dim(&self) -> usize {
        self.mlp.in_dim()
    }

    fn out_dim(&self) -> usize {
        self.mlp.out_dim()
    }

    fn aggregator(&self) -> Aggregator {
        self.agg
    }

    fn message_into(&self, h: &[f32], out: &mut [f32]) {
        out.copy_from_slice(h);
    }

    fn message_is_identity(&self) -> bool {
        true
    }

    fn update_into(&self, alpha: &[f32], self_msg: &[f32], out: &mut [f32]) {
        let mut pre = alpha.to_vec();
        ink_tensor::ops::axpy(&mut pre, 1.0 + self.eps, self_msg);
        out.copy_from_slice(&self.mlp.forward_vec(&pre));
    }

    /// Identity message: one bulk copy instead of a per-row loop.
    fn message_batch_into(
        &self,
        _rows: usize,
        h: &[f32],
        out: &mut [f32],
        _scratch: &mut GemmScratch,
    ) -> u64 {
        out.copy_from_slice(&h[..out.len()]);
        0
    }

    /// Builds `(1+ε)·h + α` for the whole batch in a pooled pre-buffer
    /// (same copy-then-axpy operation order as [`Conv::update_into`]), then
    /// runs the MLP as one batched GEMM chain.
    fn update_batch_into(
        &self,
        rows: usize,
        alpha: &[f32],
        self_msg: &[f32],
        out: &mut [f32],
        scratch: &mut GemmScratch,
    ) -> u64 {
        let md = self.mlp.in_dim();
        let mut pre = scratch.take(rows * md);
        pre.copy_from_slice(&alpha[..rows * md]);
        for (prow, srow) in pre.chunks_exact_mut(md).zip(self_msg.chunks_exact(md)) {
            ink_tensor::ops::axpy(prow, 1.0 + self.eps, srow);
        }
        let flops = self.mlp.forward_batch_into(rows, &pre, out, scratch);
        scratch.put(pre);
        flops
    }

    fn self_dependent(&self) -> bool {
        true
    }

    fn param_count(&self) -> usize {
        self.mlp.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ink_tensor::init::seeded_rng;
    use ink_tensor::Linear;

    fn identity_mlp(dim: usize) -> Mlp {
        Mlp::from_layers(vec![Linear::identity(dim)], Activation::Relu)
    }

    #[test]
    fn update_combines_alpha_and_scaled_self() {
        let conv = GinConv::from_mlp(identity_mlp(2), 0.5, Aggregator::Sum);
        // (1 + 0.5)·[2, 4] + [1, 1] = [4, 7]
        assert_eq!(conv.update(&[1.0, 1.0], &[2.0, 4.0]), vec![4.0, 7.0]);
    }

    #[test]
    fn zero_eps_is_plain_sum() {
        let conv = GinConv::from_mlp(identity_mlp(2), 0.0, Aggregator::Sum);
        assert_eq!(conv.update(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn gin_is_self_dependent_identity_message() {
        let mut rng = seeded_rng(1);
        let conv = GinConv::new(&mut rng, 4, 4, 0.1, Aggregator::Max);
        assert!(conv.self_dependent());
        assert!(conv.message_is_identity());
        assert_eq!(conv.message(&[1.0, 2.0, 3.0, 4.0]), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn batched_update_is_bitwise_equal_to_per_node() {
        let mut rng = seeded_rng(23);
        let conv = GinConv::new(&mut rng, 4, 5, 0.3, Aggregator::Sum);
        let alpha = ink_tensor::init::uniform(&mut rng, 8, 4, -1.0, 1.0);
        let selfm = ink_tensor::init::uniform(&mut rng, 8, 4, -1.0, 1.0);
        let mut batched = vec![0.0; 8 * 5];
        let mut scratch = GemmScratch::new();
        conv.update_batch_into(8, alpha.as_slice(), selfm.as_slice(), &mut batched, &mut scratch);
        for r in 0..8 {
            let single = conv.update(alpha.row(r), selfm.row(r));
            assert_eq!(single.as_slice(), &batched[r * 5..(r + 1) * 5], "row {r}");
        }
    }

    #[test]
    fn mlp_depth_is_two() {
        let mut rng = seeded_rng(2);
        let conv = GinConv::new(&mut rng, 3, 5, 0.0, Aggregator::Sum);
        assert_eq!((conv.in_dim(), conv.msg_dim(), conv.out_dim()), (3, 3, 5));
        assert_eq!(conv.param_count(), (3 * 5 + 5) + (5 * 5 + 5));
    }
}
