//! Aggregation functions — `A()` in the paper's notation.
//!
//! InkStream's two-level savings hinge on a split the paper draws between
//! **monotonic** aggregators (max, min — *selective*: only the extreme
//! neighbor matters per channel, so updates can be pruned) and
//! **accumulative** aggregators (sum, mean — *fully reversible*: a neighbor's
//! old impact can always be subtracted out).
//!
//! Empty-neighborhood convention: aggregating zero messages yields the zero
//! vector for every aggregator (applied by [`Aggregator::finalize`]); the
//! incremental engine and the recompute baselines share this code so they
//! agree bitwise.

/// The four aggregation functions InkStream supports natively.
///
/// ```
/// use ink_gnn::Aggregator;
///
/// let msgs: [&[f32]; 2] = [&[1.0, 4.0], &[3.0, 2.0]];
/// let mut out = vec![0.0; 2];
/// Aggregator::Max.aggregate_into(msgs.iter().copied(), &mut out);
/// assert_eq!(out, vec![3.0, 4.0]);
/// assert!(Aggregator::Max.is_monotonic());
/// assert!(Aggregator::Mean.is_accumulative());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Aggregator {
    /// Channel-wise maximum (monotonic).
    Max,
    /// Channel-wise minimum (monotonic).
    Min,
    /// Channel-wise sum (accumulative).
    Sum,
    /// Channel-wise arithmetic mean (accumulative).
    Mean,
}

impl Aggregator {
    /// Max/min — selective aggregators whose propagation can be pruned.
    #[inline]
    pub fn is_monotonic(self) -> bool {
        matches!(self, Aggregator::Max | Aggregator::Min)
    }

    /// Sum/mean — fully reversible aggregators.
    #[inline]
    pub fn is_accumulative(self) -> bool {
        !self.is_monotonic()
    }

    /// The identity element of the reduction (`-∞` for max, `+∞` for min,
    /// `0` for sum/mean) — the *reset* value in the paper's Fig. 4.
    #[inline]
    pub fn identity(self) -> f32 {
        match self {
            Aggregator::Max => f32::NEG_INFINITY,
            Aggregator::Min => f32::INFINITY,
            Aggregator::Sum | Aggregator::Mean => 0.0,
        }
    }

    /// Scalar reduction of two values.
    #[inline]
    pub fn combine_scalar(self, a: f32, b: f32) -> f32 {
        match self {
            Aggregator::Max => a.max(b),
            Aggregator::Min => a.min(b),
            Aggregator::Sum | Aggregator::Mean => a + b,
        }
    }

    /// `acc = A(acc, msg)` channel-wise. Mean accumulates a running sum here;
    /// the division happens in [`Aggregator::finalize`].
    #[inline]
    pub fn combine_into(self, acc: &mut [f32], msg: &[f32]) {
        match self {
            Aggregator::Max => ink_tensor::ops::max_assign(acc, msg),
            Aggregator::Min => ink_tensor::ops::min_assign(acc, msg),
            Aggregator::Sum | Aggregator::Mean => ink_tensor::ops::add_assign(acc, msg),
        }
    }

    /// Turns a running reduction over `degree` messages into the final
    /// aggregate: divides by the degree for mean, and maps an empty
    /// neighborhood to the zero vector for every aggregator.
    #[inline]
    pub fn finalize(self, acc: &mut [f32], degree: usize) {
        if degree == 0 {
            acc.fill(0.0);
            return;
        }
        if self == Aggregator::Mean {
            let inv = 1.0 / degree as f32;
            ink_tensor::ops::scale(acc, inv);
        }
    }

    /// Aggregates an iterator of messages into `out` (including
    /// [`Aggregator::finalize`]). `out.len()` is the channel count.
    ///
    /// Accumulative aggregators (sum/mean) use Neumaier-compensated
    /// summation so the full-recompute reference — which the incremental
    /// engine bootstraps from and drift audits compare against — carries
    /// O(1) rounding error instead of O(degree). Max/min are unaffected
    /// (bit-exact and order-independent either way).
    pub fn aggregate_into<'a>(
        self,
        msgs: impl Iterator<Item = &'a [f32]>,
        out: &mut [f32],
    ) {
        out.fill(self.identity());
        let mut degree = 0usize;
        if self.is_accumulative() {
            let mut comp = vec![0.0f32; out.len()];
            for m in msgs {
                ink_tensor::ops::neumaier_add_assign(out, &mut comp, m);
                degree += 1;
            }
            ink_tensor::ops::add_assign(out, &comp);
        } else {
            for m in msgs {
                self.combine_into(out, m);
                degree += 1;
            }
        }
        self.finalize(out, degree);
    }

    /// Aggregates a contiguous row-major panel of messages (`degree × dim`,
    /// `dim = out.len()`, rows packed back-to-back) into `out`, including
    /// [`Aggregator::finalize`]. The batched counterpart of
    /// [`Aggregator::aggregate_into`] for the apply phase's gathered
    /// neighbor panels.
    ///
    /// `comp` is the caller's reusable compensation buffer for the
    /// accumulative (sum/mean) Neumaier pass; it is resized and zeroed here,
    /// so steady-state callers allocate nothing. Because the panel rows are
    /// folded strictly in panel order with the same kernels and the same
    /// fill → fold → compensate → finalize sequence, the result is
    /// **bitwise-identical** to `aggregate_into` over the same rows in the
    /// same order — for all four aggregators.
    pub fn aggregate_rows_into(self, panel: &[f32], out: &mut [f32], comp: &mut Vec<f32>) {
        let dim = out.len();
        debug_assert!(dim == 0 || panel.len().is_multiple_of(dim), "panel is not whole rows");
        out.fill(self.identity());
        let degree = panel.len().checked_div(dim).unwrap_or(0);
        if self.is_accumulative() {
            comp.clear();
            comp.resize(dim, 0.0);
            ink_tensor::reduce::fold_rows_neumaier_into(panel, dim, out, comp);
            ink_tensor::ops::add_assign(out, comp);
        } else {
            match self {
                Aggregator::Max => ink_tensor::reduce::fold_rows_max_into(panel, dim, out),
                Aggregator::Min => ink_tensor::reduce::fold_rows_min_into(panel, dim, out),
                Aggregator::Sum | Aggregator::Mean => unreachable!("accumulative handled above"),
            }
        }
        self.finalize(out, degree);
    }

    /// True when `a` wins the reduction against `b` (`A(a, b) == a`). Used by
    /// the covered-reset check: the added message must *dominate* the deleted
    /// one on every reset channel.
    #[inline]
    pub fn dominates(self, a: f32, b: f32) -> bool {
        self.combine_scalar(a, b) == a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Aggregator; 4] =
        [Aggregator::Max, Aggregator::Min, Aggregator::Sum, Aggregator::Mean];

    #[test]
    fn classification_is_exhaustive() {
        for a in ALL {
            assert_ne!(a.is_monotonic(), a.is_accumulative());
        }
        assert!(Aggregator::Max.is_monotonic());
        assert!(Aggregator::Min.is_monotonic());
        assert!(Aggregator::Sum.is_accumulative());
        assert!(Aggregator::Mean.is_accumulative());
    }

    #[test]
    fn identity_is_neutral() {
        for a in ALL {
            assert_eq!(a.combine_scalar(a.identity(), 3.5), 3.5, "{a:?}");
            assert_eq!(a.combine_scalar(3.5, a.identity()), 3.5, "{a:?}");
        }
    }

    #[test]
    fn aggregate_hand_checked() {
        let msgs: Vec<&[f32]> = vec![&[1.0, 4.0], &[3.0, 2.0]];
        let mut out = vec![0.0; 2];
        Aggregator::Max.aggregate_into(msgs.iter().copied(), &mut out);
        assert_eq!(out, vec![3.0, 4.0]);
        Aggregator::Min.aggregate_into(msgs.iter().copied(), &mut out);
        assert_eq!(out, vec![1.0, 2.0]);
        Aggregator::Sum.aggregate_into(msgs.iter().copied(), &mut out);
        assert_eq!(out, vec![4.0, 6.0]);
        Aggregator::Mean.aggregate_into(msgs.iter().copied(), &mut out);
        assert_eq!(out, vec![2.0, 3.0]);
    }

    #[test]
    fn empty_neighborhood_is_zero_for_all() {
        for a in ALL {
            let mut out = vec![9.0; 3];
            a.aggregate_into(std::iter::empty(), &mut out);
            assert_eq!(out, vec![0.0; 3], "{a:?}");
        }
    }

    #[test]
    fn single_message_passes_through() {
        for a in ALL {
            let msgs: Vec<&[f32]> = vec![&[-1.5, 0.0, 2.0]];
            let mut out = vec![0.0; 3];
            a.aggregate_into(msgs.iter().copied(), &mut out);
            assert_eq!(out, vec![-1.5, 0.0, 2.0], "{a:?}");
        }
    }

    #[test]
    fn dominates_matches_semantics() {
        assert!(Aggregator::Max.dominates(5.0, 3.0));
        assert!(!Aggregator::Max.dominates(3.0, 5.0));
        assert!(Aggregator::Min.dominates(3.0, 5.0));
        assert!(Aggregator::Max.dominates(3.0, 3.0), "ties dominate");
    }

    #[test]
    fn mean_divides_by_degree_not_channel_count() {
        let msgs: Vec<&[f32]> = vec![&[3.0], &[5.0], &[10.0]];
        let mut out = vec![0.0; 1];
        Aggregator::Mean.aggregate_into(msgs.iter().copied(), &mut out);
        assert_eq!(out, vec![6.0]);
    }

    #[test]
    fn aggregate_rows_matches_aggregate_into_bitwise() {
        // Awkward values so accumulation-order changes would show up bitwise.
        let dim = 3;
        let mut s = 0x5EEDu32;
        for degree in [0usize, 1, 2, 7, 33] {
            let panel: Vec<f32> = (0..degree * dim)
                .map(|_| {
                    s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                    ((s >> 8) as f32 / (1u32 << 24) as f32 - 0.5) * 3.0e5
                })
                .collect();
            for a in ALL {
                let mut want = vec![f32::NAN; dim];
                a.aggregate_into(panel.chunks_exact(dim), &mut want);
                let mut got = vec![f32::NAN; dim];
                let mut comp = Vec::new();
                a.aggregate_rows_into(&panel, &mut got, &mut comp);
                assert!(
                    got.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "{a:?} degree {degree}: panel path diverged"
                );
            }
        }
    }

    #[test]
    fn compensated_sum_beats_naive_on_cancellation() {
        // A large value, a tiny value, and the large value's negation: plain
        // left-to-right f32 summation returns 0.0, compensated keeps `tiny`.
        let tiny = [2.0_f32.powi(-40)];
        let msgs: Vec<&[f32]> = vec![&[3.0e7], &tiny, &[-3.0e7]];
        let mut out = vec![0.0; 1];
        Aggregator::Sum.aggregate_into(msgs.iter().copied(), &mut out);
        assert_eq!(out, vec![tiny[0]]);
    }
}
