//! Neighbor sampling (Hamilton et al.) — the *PyG (+SAGE sampler)* baseline
//! configuration, and the cached-neighborhood diffing that lets InkStream
//! support sampling (paper §II-E).

use crate::full::Neighborhood;
use ink_graph::{DeltaBatch, DynGraph, EdgeChange, VertexId};
use rand::rngs::StdRng;
use rand::RngExt;

/// A per-vertex sampled in-neighborhood (at most `k` neighbors each).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampledGraph {
    adj: Vec<Vec<VertexId>>,
}

impl SampledGraph {
    /// Samples at most `k` in-neighbors per vertex, uniformly without
    /// replacement. Sampled lists are kept sorted so diffs are linear.
    pub fn sample(g: &DynGraph, k: usize, rng: &mut StdRng) -> Self {
        let n = g.num_vertices();
        let mut adj = Vec::with_capacity(n);
        for u in 0..n {
            let nbrs = g.in_neighbors(u as VertexId);
            let mut chosen: Vec<VertexId> = if nbrs.len() <= k {
                nbrs.to_vec()
            } else {
                // Partial Fisher–Yates over a scratch copy.
                let mut scratch = nbrs.to_vec();
                for i in 0..k {
                    let j = rng.random_range(i..scratch.len());
                    scratch.swap(i, j);
                }
                scratch.truncate(k);
                scratch
            };
            chosen.sort_unstable();
            adj.push(chosen);
        }
        Self { adj }
    }

    /// Direct construction (tests).
    pub fn from_adj(adj: Vec<Vec<VertexId>>) -> Self {
        let mut adj = adj;
        for a in &mut adj {
            a.sort_unstable();
        }
        Self { adj }
    }

    /// The ΔG between two sampled neighborhoods: the paper's recipe for
    /// supporting samplers — cache the sampled structure from the last
    /// timestamp and express the difference as edge removals/insertions.
    pub fn diff(old: &SampledGraph, new: &SampledGraph) -> DeltaBatch {
        assert_eq!(old.adj.len(), new.adj.len(), "vertex count changed");
        let mut changes = Vec::new();
        for (u, (o, n)) in old.adj.iter().zip(&new.adj).enumerate() {
            let u = u as VertexId;
            // Merge-walk the two sorted lists.
            let (mut i, mut j) = (0, 0);
            while i < o.len() || j < n.len() {
                match (o.get(i), n.get(j)) {
                    (Some(&a), Some(&b)) if a == b => {
                        i += 1;
                        j += 1;
                    }
                    (Some(&a), Some(&b)) if a < b => {
                        changes.push(EdgeChange::remove(a, u));
                        i += 1;
                    }
                    (Some(_), Some(&b)) => {
                        changes.push(EdgeChange::insert(b, u));
                        j += 1;
                    }
                    (Some(&a), None) => {
                        changes.push(EdgeChange::remove(a, u));
                        i += 1;
                    }
                    (None, Some(&b)) => {
                        changes.push(EdgeChange::insert(b, u));
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
        }
        DeltaBatch::new(changes)
    }

    /// Materialises the sampled view as a *directed* [`DynGraph`] (edges
    /// `v → u` for each sampled in-neighbor `v` of `u`), which the
    /// incremental engine can then evolve with [`SampledGraph::diff`] deltas.
    pub fn to_dyn_graph(&self) -> DynGraph {
        let mut g = DynGraph::new(self.adj.len(), true);
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &v in nbrs {
                g.insert_edge(v, u as VertexId);
            }
        }
        g
    }
}

impl Neighborhood for SampledGraph {
    fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    fn in_neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.adj[u as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn star() -> DynGraph {
        // vertex 0 connected to 1..=9
        let edges: Vec<_> = (1..10).map(|v| (0, v as VertexId)).collect();
        DynGraph::undirected_from_edges(10, &edges)
    }

    #[test]
    fn sampling_caps_degree() {
        let g = star();
        let s = SampledGraph::sample(&g, 4, &mut StdRng::seed_from_u64(1));
        assert_eq!(s.in_neighbors(0).len(), 4);
        assert_eq!(s.in_neighbors(1), &[0], "small neighborhoods kept whole");
    }

    #[test]
    fn sampled_neighbors_are_real_neighbors() {
        let g = star();
        let s = SampledGraph::sample(&g, 3, &mut StdRng::seed_from_u64(2));
        for u in 0..10 {
            for &v in s.in_neighbors(u) {
                assert!(g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn diff_of_identical_samples_is_empty() {
        let g = star();
        let s = SampledGraph::sample(&g, 4, &mut StdRng::seed_from_u64(3));
        assert!(SampledGraph::diff(&s, &s).is_empty());
    }

    #[test]
    fn diff_expresses_resample_as_edge_changes() {
        let old = SampledGraph::from_adj(vec![vec![1, 2], vec![], vec![]]);
        let new = SampledGraph::from_adj(vec![vec![2, 3].into_iter().map(|x| x as VertexId).collect(), vec![], vec![]]);
        let d = SampledGraph::diff(&old, &new);
        let ops: Vec<_> = d.changes().to_vec();
        assert!(ops.contains(&EdgeChange::remove(1, 0)));
        assert!(ops.contains(&EdgeChange::insert(3, 0)));
        assert_eq!(ops.len(), 2);
    }

    #[test]
    fn to_dyn_graph_preserves_in_neighborhoods() {
        let s = SampledGraph::from_adj(vec![vec![2], vec![0, 2], vec![]]);
        let g = s.to_dyn_graph();
        assert!(g.is_directed());
        assert_eq!(g.in_neighbors(0), &[2]);
        assert_eq!(g.in_neighbors(1), &[0, 2]);
        assert_eq!(g.in_neighbors(2), &[] as &[VertexId]);
    }
}
