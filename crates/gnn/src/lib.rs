#![warn(missing_docs)]
//! # ink-gnn
//!
//! A from-scratch message-passing GNN framework — the substrate the
//! InkStream reproduction runs on, since Rust has no mature GNN stack.
//!
//! The crate follows the paper's computing abstraction (its Fig. 3): a layer
//! is a *combination* function `T()`, an *aggregation* function `A()` over
//! the in-neighborhood, and an activation `act()`. It provides:
//!
//! * [`Aggregator`] — max / min (monotonic) and sum / mean (accumulative);
//! * [`Conv`] + the three benchmark layers [`GcnConv`], [`SageConv`],
//!   [`GinConv`], composed into a [`Model`];
//! * [`GraphNorm`] with exact and cached-statistics modes (paper §II-E);
//! * full-graph inference ([`full::full_inference`]) that caches the
//!   per-layer `m`/`α` checkpoints InkStream evolves;
//! * the evaluation baselines: the *PyG (+SAGE sampler)* stand-in
//!   ([`sampler`] + full inference), the *k-hop* affected-area baseline
//!   ([`khop`]), and the *Graphiler* stand-in ([`fused`]);
//! * the embedding-traffic [`cost`] model behind the paper's Table V.

pub mod aggregator;
pub mod cost;
pub mod full;
pub mod fused;
pub mod gcn;
pub mod gin;
pub mod graphnorm;
pub mod khop;
pub mod layer;
pub mod lightgcn;
pub mod model;
pub mod sage;
pub mod sampler;

pub use aggregator::Aggregator;
pub use cost::CostMeter;
pub use full::{full_inference, infer_embeddings, FullState, Neighborhood, NormStats};
pub use fused::{estimate_peak_bytes, fused_inference, OomError};
pub use gcn::GcnConv;
pub use gin::GinConv;
pub use graphnorm::{GraphNorm, GraphNormMode};
pub use khop::{khop_update, KhopOutput};
pub use layer::Conv;
pub use lightgcn::LightGcnConv;
pub use model::{LayerDef, Model};
pub use sage::SageConv;
pub use sampler::SampledGraph;
