//! GraphSAGE convolution (Hamilton et al.):
//! `h'_u = W₁·A(h_v : v ∈ N(u)) + W₂·h_u`.
//!
//! The message is the identity (`m = h`, aggregate-first), and the update
//! reads the node's own message through the `W₂` term — the *self-impact*
//! that, per the paper's Fig. 8 discussion, makes GraphSAGE's embeddings
//! sensitive and its exposed-reset fraction non-negligible.

use crate::{Aggregator, Conv};
use ink_tensor::gemm::{self, GemmScratch};
use ink_tensor::Linear;
use rand::rngs::StdRng;

/// A GraphSAGE layer with a configurable neighborhood aggregator.
#[derive(Clone, Debug)]
pub struct SageConv {
    w_neigh: Linear,
    w_self: Linear,
    agg: Aggregator,
}

impl SageConv {
    /// Glorot-initialised layer (`W₁` carries the bias, matching PyG).
    pub fn new(rng: &mut StdRng, in_dim: usize, out_dim: usize, agg: Aggregator) -> Self {
        Self {
            w_neigh: Linear::new(rng, in_dim, out_dim),
            w_self: Linear::from_parts(
                ink_tensor::init::glorot_uniform(rng, in_dim, out_dim),
                vec![0.0; out_dim],
            ),
            agg,
        }
    }

    /// Layer from explicit parameter blocks.
    pub fn from_parts(w_neigh: Linear, w_self: Linear, agg: Aggregator) -> Self {
        assert_eq!(w_neigh.in_dim(), w_self.in_dim());
        assert_eq!(w_neigh.out_dim(), w_self.out_dim());
        Self { w_neigh, w_self, agg }
    }

    /// The neighborhood transform `W₁` (used by the user-hook demo).
    pub fn w_neigh(&self) -> &Linear {
        &self.w_neigh
    }

    /// The self transform `W₂` (used by the user-hook demo).
    pub fn w_self(&self) -> &Linear {
        &self.w_self
    }
}

impl Conv for SageConv {
    fn in_dim(&self) -> usize {
        self.w_neigh.in_dim()
    }

    fn msg_dim(&self) -> usize {
        self.w_neigh.in_dim()
    }

    fn out_dim(&self) -> usize {
        self.w_neigh.out_dim()
    }

    fn aggregator(&self) -> Aggregator {
        self.agg
    }

    fn message_into(&self, h: &[f32], out: &mut [f32]) {
        out.copy_from_slice(h);
    }

    fn message_is_identity(&self) -> bool {
        true
    }

    fn update_into(&self, alpha: &[f32], self_msg: &[f32], out: &mut [f32]) {
        self.w_neigh.forward_vec(alpha, out);
        let mut self_part = vec![0.0; out.len()];
        self.w_self.weight().vecmul(self_msg, &mut self_part);
        ink_tensor::ops::add_assign(out, &self_part);
    }

    /// Identity message: one bulk copy instead of a per-row loop.
    fn message_batch_into(
        &self,
        _rows: usize,
        h: &[f32],
        out: &mut [f32],
        _scratch: &mut GemmScratch,
    ) -> u64 {
        out.copy_from_slice(&h[..out.len()]);
        0
    }

    /// Two GEMMs per batch (`α·W₁ + b` then `h·W₂` added in), replicating
    /// the per-element operation order of [`Conv::update_into`] exactly:
    /// neighbor term with bias first, self term added second.
    fn update_batch_into(
        &self,
        rows: usize,
        alpha: &[f32],
        self_msg: &[f32],
        out: &mut [f32],
        scratch: &mut GemmScratch,
    ) -> u64 {
        let (k, m) = (self.w_self.in_dim(), self.w_self.out_dim());
        let mut flops = self.w_neigh.forward_batch_into(rows, alpha, out, scratch);
        let mut self_part = scratch.take(rows * m);
        gemm::gemm_into(rows, k, m, self_msg, self.w_self.weight().as_slice(), &mut self_part, scratch, true);
        flops += gemm::gemm_flops(rows, k, m);
        for (orow, srow) in out.chunks_exact_mut(m).zip(self_part.chunks_exact(m)) {
            ink_tensor::ops::add_assign(orow, srow);
        }
        scratch.put(self_part);
        flops
    }

    fn self_dependent(&self) -> bool {
        true
    }

    fn param_count(&self) -> usize {
        self.w_neigh.param_count() + self.w_self.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ink_tensor::init::seeded_rng;
    use ink_tensor::Matrix;

    fn ident_linear(dim: usize) -> Linear {
        Linear::identity(dim)
    }

    #[test]
    fn message_is_identity() {
        let mut rng = seeded_rng(1);
        let conv = SageConv::new(&mut rng, 3, 2, Aggregator::Max);
        assert!(conv.message_is_identity());
        assert_eq!(conv.message(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn update_sums_neighbor_and_self_terms() {
        // W1 = I, W2 = 2I → update = α + 2·h_u.
        let w2 = Linear::from_parts(Matrix::from_vec(2, 2, vec![2.0, 0.0, 0.0, 2.0]), vec![0.0; 2]);
        let conv = SageConv::from_parts(ident_linear(2), w2, Aggregator::Sum);
        assert_eq!(conv.update(&[1.0, 1.0], &[10.0, -3.0]), vec![21.0, -5.0]);
    }

    #[test]
    fn sage_is_self_dependent() {
        let mut rng = seeded_rng(2);
        let conv = SageConv::new(&mut rng, 3, 3, Aggregator::Mean);
        assert!(conv.self_dependent());
        let a = conv.update(&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]);
        let b = conv.update(&[1.0, 2.0, 3.0], &[1.0, 0.0, 0.0]);
        assert_ne!(a, b, "self message must influence the update");
    }

    #[test]
    fn batched_update_is_bitwise_equal_to_per_node() {
        let mut rng = seeded_rng(17);
        let conv = SageConv::new(&mut rng, 4, 3, Aggregator::Mean);
        let alpha = ink_tensor::init::uniform(&mut rng, 9, 4, -1.5, 1.5);
        let selfm = ink_tensor::init::uniform(&mut rng, 9, 4, -1.5, 1.5);
        let mut batched = vec![0.0; 9 * 3];
        let mut scratch = GemmScratch::new();
        conv.update_batch_into(9, alpha.as_slice(), selfm.as_slice(), &mut batched, &mut scratch);
        for r in 0..9 {
            let single = conv.update(alpha.row(r), selfm.row(r));
            assert_eq!(single.as_slice(), &batched[r * 3..(r + 1) * 3], "row {r}");
        }
        let mut msg = vec![0.0; 9 * 4];
        conv.message_batch_into(9, alpha.as_slice(), &mut msg, &mut scratch);
        assert_eq!(&msg[..], alpha.as_slice(), "identity message is a copy");
    }

    #[test]
    fn msg_dim_is_input_dim() {
        let mut rng = seeded_rng(3);
        let conv = SageConv::new(&mut rng, 5, 2, Aggregator::Max);
        assert_eq!((conv.in_dim(), conv.msg_dim(), conv.out_dim()), (5, 5, 2));
        assert_eq!(conv.param_count(), (5 * 2 + 2) + (5 * 2 + 2));
    }

    #[test]
    #[should_panic]
    fn from_parts_rejects_dim_mismatch() {
        let _ = SageConv::from_parts(
            Linear::identity(2),
            Linear::identity(3),
            Aggregator::Max,
        );
    }
}
