//! The *Graphiler* stand-in: fused full-graph inference with an explicit
//! memory-budget model.
//!
//! Graphiler compiles the message-passing data-flow graph into fused GPU
//! kernels — extremely fast *static full-graph* inference — but cannot
//! sample or mini-batch, so large graphs × deep models go out of memory.
//! This substitute reproduces both behaviours (DESIGN.md §2): a streamlined
//! engine over a CSR snapshot that keeps only two ping-pong buffers (no
//! cached state, no per-node dispatch), plus [`estimate_peak_bytes`] checked
//! against a configurable device budget before running.

use crate::Model;
use ink_graph::{Csr, VertexId};
use ink_tensor::gemm::GemmScratch;
use ink_tensor::Matrix;
use rayon::prelude::*;

/// Vertices per fused gather-reduce-update batch: big enough that the
/// per-chunk GEMM amortises packing, small enough that the α chunk stays
/// cache-resident (512 × 256 dims × 4 B = 512 KiB worst case).
const FUSED_CHUNK: usize = 512;

/// Error returned when the model × graph would exceed the device budget —
/// the `OOM` entries of the paper's Table IV.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OomError {
    /// Estimated peak working set.
    pub required_bytes: usize,
    /// Configured device budget.
    pub budget_bytes: usize,
}

impl std::fmt::Display for OomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "OOM: fused full-graph inference needs {} MiB but the device budget is {} MiB",
            self.required_bytes / (1 << 20),
            self.budget_bytes / (1 << 20)
        )
    }
}

impl std::error::Error for OomError {}

/// Peak working-set estimate of fused full-graph inference: features +
/// adjacency + the widest pair of layer activations + messages + aggregates,
/// all resident at once (no mini-batching — Graphiler's limitation).
pub fn estimate_peak_bytes(model: &Model, n: usize, adjacency_entries: usize) -> usize {
    let f = std::mem::size_of::<f32>();
    let feat = n * model.in_dim() * f;
    let adj = adjacency_entries * std::mem::size_of::<VertexId>() + (n + 1) * 8;
    let widest_layer = (0..model.num_layers())
        .map(|l| {
            let c = &model.layer(l).conv;
            // h_l + m_l + α_l + h_{l+1} live simultaneously inside a layer.
            n * (c.in_dim() + 2 * c.msg_dim() + c.out_dim()) * f
        })
        .max()
        .unwrap_or(0);
    let params = model.param_count() * f;
    feat + adj + widest_layer + params
}

/// Fused full-graph inference with a device memory budget.
pub fn fused_inference(
    model: &Model,
    csr: &Csr,
    features: &Matrix,
    budget_bytes: usize,
) -> Result<Matrix, OomError> {
    let n = csr.num_vertices();
    let required = estimate_peak_bytes(model, n, csr.num_entries());
    if required > budget_bytes {
        return Err(OomError { required_bytes: required, budget_bytes });
    }

    let mut h = features.clone();
    let mut msg_buf = Matrix::zeros(0, 0);
    let mut scratch = GemmScratch::new();
    for l in 0..model.num_layers() {
        let conv = &model.layer(l).conv;
        let dim = conv.msg_dim();
        // Fused message phase: one batched transform (a single GEMM for
        // transform-first layers), reusing the ping-pong buffer.
        let scaled = conv.degree_scaled();
        let m: &Matrix = if conv.message_is_identity() && !scaled {
            &h
        } else {
            msg_buf.resize_to(n, dim);
            conv.message_batch_into(n, h.as_slice(), msg_buf.as_mut_slice(), &mut scratch);
            if scaled {
                msg_buf.as_mut_slice().par_chunks_mut(dim).enumerate().for_each(|(u, out)| {
                    ink_tensor::ops::scale(out, conv.degree_scale(csr.degree(u as VertexId)));
                });
            }
            &msg_buf
        };
        // Fused gather-reduce-update in vertex chunks: aggregate a chunk's
        // neighborhoods into a pooled α strip, transform the strip with one
        // batched GEMM chain, then normalise/activate in place. No per-vertex
        // allocation and no full α matrix handed back to the caller.
        let agg = conv.aggregator();
        let out_dim = conv.out_dim();
        let act = model.layer(l).act;
        let mut h_next = Matrix::zeros(n, out_dim);
        let mut alpha_chunk = scratch.take(FUSED_CHUNK * dim);
        for (ci, hchunk) in
            h_next.as_mut_slice().chunks_mut(FUSED_CHUNK * out_dim.max(1)).enumerate()
        {
            let u0 = ci * FUSED_CHUNK;
            let rows = hchunk.len() / out_dim.max(1);
            alpha_chunk[..rows * dim].par_chunks_mut(dim).enumerate().for_each(|(i, out)| {
                let u = (u0 + i) as VertexId;
                agg.aggregate_into(csr.neighbors(u).iter().map(|&v| m.row(v as usize)), out);
                if scaled {
                    ink_tensor::ops::scale(out, conv.update_scale(csr.degree(u)));
                }
            });
            let self_msg: &[f32] = if conv.self_dependent() {
                &m.as_slice()[u0 * dim..(u0 + rows) * dim]
            } else {
                &[]
            };
            conv.update_batch_into(rows, &alpha_chunk[..rows * dim], self_msg, hchunk, &mut scratch);
            for out in hchunk.chunks_exact_mut(out_dim.max(1)) {
                if let Some(norm) = &model.layer(l).norm {
                    norm.apply_cached(out);
                }
                act.apply(out);
            }
        }
        scratch.put(alpha_chunk);
        h = h_next;
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::full_inference;
    use crate::{Aggregator, Model};
    use ink_graph::DynGraph;
    use ink_tensor::init::seeded_rng;

    fn toy() -> (DynGraph, Matrix) {
        let g = DynGraph::undirected_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)]);
        let x = Matrix::from_fn(6, 4, |r, c| ((r + 2 * c) % 5) as f32 - 2.0);
        (g, x)
    }

    #[test]
    fn fused_matches_reference_engine() {
        for agg in [Aggregator::Max, Aggregator::Min, Aggregator::Sum, Aggregator::Mean] {
            let mut rng = seeded_rng(20);
            let model = Model::gcn(&mut rng, &[4, 5, 3], agg);
            let (g, x) = toy();
            let csr = Csr::from_graph(&g);
            let fused = fused_inference(&model, &csr, &x, usize::MAX).unwrap();
            let reference = full_inference(&model, &g, &x, None);
            assert_eq!(fused, reference.h, "{agg:?}");
        }
    }

    #[test]
    fn fused_matches_reference_for_self_dependent_models() {
        let mut rng = seeded_rng(21);
        let model = Model::gin(&mut rng, 4, 6, 3, 0.2, Aggregator::Max);
        let (g, x) = toy();
        let csr = Csr::from_graph(&g);
        let fused = fused_inference(&model, &csr, &x, usize::MAX).unwrap();
        let reference = full_inference(&model, &g, &x, None);
        assert_eq!(fused, reference.h);
    }

    #[test]
    fn oom_when_budget_too_small() {
        let mut rng = seeded_rng(22);
        let model = Model::gcn(&mut rng, &[4, 4], Aggregator::Max);
        let (g, x) = toy();
        let csr = Csr::from_graph(&g);
        let err = fused_inference(&model, &csr, &x, 64).unwrap_err();
        assert!(err.required_bytes > err.budget_bytes);
        assert!(err.to_string().contains("OOM"));
    }

    #[test]
    fn peak_estimate_grows_with_graph() {
        let mut rng = seeded_rng(23);
        let model = Model::gcn(&mut rng, &[8, 8], Aggregator::Max);
        let small = estimate_peak_bytes(&model, 100, 500);
        let large = estimate_peak_bytes(&model, 10_000, 50_000);
        assert!(large > 50 * small);
    }
}
