//! Full-graph inference — the classic method and the *PyG* baseline.
//!
//! Besides producing output embeddings, full inference is how InkStream
//! bootstraps: the paper's workflow saves the embedding *before and after
//! aggregation* (`m_l`, `α_l`) for the whole node set in all layers, and the
//! incremental engine evolves that cache. [`FullState`] is that cache.

use crate::cost::CostMeter;
use crate::{GraphNormMode, Model};
use ink_graph::{DynGraph, VertexId};
use ink_tensor::gemm::GemmScratch;
use ink_tensor::Matrix;
use rayon::prelude::*;

/// Anything that exposes per-vertex in-neighborhoods (the full graph or a
/// sampled view of it).
pub trait Neighborhood: Sync {
    /// Vertex count.
    fn num_vertices(&self) -> usize;
    /// Vertices whose messages `u` aggregates.
    fn in_neighbors(&self, u: VertexId) -> &[VertexId];
}

impl Neighborhood for DynGraph {
    fn num_vertices(&self) -> usize {
        DynGraph::num_vertices(self)
    }

    fn in_neighbors(&self, u: VertexId) -> &[VertexId] {
        DynGraph::in_neighbors(self, u)
    }
}

impl Neighborhood for ink_graph::Csr {
    fn num_vertices(&self) -> usize {
        ink_graph::Csr::num_vertices(self)
    }

    fn in_neighbors(&self, u: VertexId) -> &[VertexId] {
        self.neighbors(u)
    }
}

/// The cached intermediate state of one full inference: the paper's two
/// checkpoints per layer (messages `m_l` and aggregated neighborhoods `α_l`)
/// plus the final output `h`.
#[derive(Clone)]
pub struct FullState {
    /// `m[l]` — messages entering layer `l`'s aggregation (`n × msg_dim(l)`).
    pub m: Vec<Matrix>,
    /// `alpha[l]` — aggregated neighborhoods of layer `l` (`n × msg_dim(l)`).
    pub alpha: Vec<Matrix>,
    /// Final output embeddings (`n × out_dim`).
    pub h: Matrix,
    /// Per-layer GraphNorm statistics captured when the layer ran in exact
    /// mode (for freezing into the cached approximation).
    pub norm_stats: Vec<Option<NormStats>>,
}

impl FullState {
    /// An empty cache ready to be filled in place by an `_into` bootstrap —
    /// matrices get their real shapes (capacity-preserving) on first use.
    pub fn empty() -> Self {
        Self { m: Vec::new(), alpha: Vec::new(), h: Matrix::zeros(0, 0), norm_stats: Vec::new() }
    }

    /// Bytes held by the cached state (the paper's §III-E memory overhead).
    pub fn cache_bytes(&self) -> usize {
        self.m.iter().map(Matrix::nbytes).sum::<usize>()
            + self.alpha.iter().map(Matrix::nbytes).sum::<usize>()
            + self.h.nbytes()
    }

    /// Bytes *reserved* by the cached state (capacities, not lengths) — the
    /// observable the steady-state allocation tests track across repeated
    /// in-place recompute epochs.
    pub fn reserved_bytes(&self) -> usize {
        self.m.iter().map(Matrix::capacity_bytes).sum::<usize>()
            + self.alpha.iter().map(Matrix::capacity_bytes).sum::<usize>()
            + self.h.capacity_bytes()
    }
}

/// Computes messages for every vertex into caller-owned storage:
/// `m_l = message(h_l)` (one batched GEMM for transform-first layers), times
/// the source-side degree weight for degree-scaled layers (LightGCN-style).
/// `h` is the flat row-major input (`n × in_dim`), `m` is reshaped in place
/// (capacity retained). Returns the GEMM flop count.
pub fn batch_message_into<N: Neighborhood>(
    model: &Model,
    l: usize,
    h: &[f32],
    view: &N,
    m: &mut Matrix,
    scratch: &mut GemmScratch,
) -> u64 {
    let conv = &model.layer(l).conv;
    let scaled = conv.degree_scaled();
    let dim = conv.msg_dim();
    let n = view.num_vertices();
    m.resize_to(n, dim);
    let flops = conv.message_batch_into(n, h, m.as_mut_slice(), scratch);
    if scaled {
        m.as_mut_slice().par_chunks_mut(dim).enumerate().for_each(|(u, out)| {
            let s = conv.degree_scale(view.in_neighbors(u as VertexId).len());
            ink_tensor::ops::scale(out, s);
        });
    }
    flops
}

/// Computes messages for every vertex: `m_l = message(h_l)`, times the
/// source-side degree weight for degree-scaled layers (LightGCN-style).
/// Allocating wrapper over [`batch_message_into`].
pub fn batch_message<N: Neighborhood>(model: &Model, l: usize, h: &Matrix, view: &N) -> Matrix {
    let conv = &model.layer(l).conv;
    if conv.message_is_identity() && !conv.degree_scaled() {
        return h.clone();
    }
    let mut m = Matrix::zeros(0, 0);
    batch_message_into(model, l, h.as_slice(), view, &mut m, &mut GemmScratch::new());
    m
}

/// Aggregates every vertex's in-neighborhood into caller-owned storage:
/// `α_l[u] = A(m_l[v] : v∈N(u))`. `alpha` is reshaped in place (capacity
/// retained).
pub fn batch_aggregate_into<N: Neighborhood>(
    model: &Model,
    l: usize,
    view: &N,
    m: &Matrix,
    alpha: &mut Matrix,
) {
    let conv = &model.layer(l).conv;
    let agg = conv.aggregator();
    let dim = conv.msg_dim();
    let n = view.num_vertices();
    alpha.resize_to(n, dim);
    alpha
        .as_mut_slice()
        .par_chunks_mut(dim)
        .enumerate()
        .for_each(|(u, out)| {
            agg.aggregate_into(
                view.in_neighbors(u as VertexId).iter().map(|&v| m.row(v as usize)),
                out,
            );
        });
}

/// Aggregates every vertex's in-neighborhood: `α_l[u] = A(m_l[v] : v∈N(u))`.
/// Allocating wrapper over [`batch_aggregate_into`].
pub fn batch_aggregate<N: Neighborhood>(model: &Model, l: usize, view: &N, m: &Matrix) -> Matrix {
    let mut alpha = Matrix::zeros(0, 0);
    batch_aggregate_into(model, l, view, m, &mut alpha);
    alpha
}

/// Captured per-layer GraphNorm statistics: `(mean, var)`.
pub type NormStats = (Vec<f32>, Vec<f32>);

/// One layer's update phase into caller-owned storage:
/// `h_{l+1} = act(norm(T(α, m)))` as one batched GEMM chain, handling exact
/// GraphNorm (whole-vertex-set statistics) when present. `h` is reshaped in
/// place (capacity retained). Returns the captured statistics for exact
/// norms plus the GEMM flop count.
pub fn batch_update_into<N: Neighborhood>(
    model: &Model,
    l: usize,
    alpha: &Matrix,
    m: &Matrix,
    view: &N,
    h: &mut Matrix,
    scratch: &mut GemmScratch,
) -> (Option<NormStats>, u64) {
    let layer = model.layer(l);
    let conv = &layer.conv;
    let out_dim = conv.out_dim();
    let dim = conv.msg_dim();
    let scaled = conv.degree_scaled();
    let n = alpha.rows();
    h.resize_to(n, out_dim);
    let self_msg: &[f32] = if conv.self_dependent() { m.as_slice() } else { &[] };
    let flops = if scaled {
        // Fold the target-side degree weight into a scaled copy of α first —
        // the same `a[j] * s` the per-node path performs before its update.
        let mut scaled_alpha = scratch.take(n * dim);
        ink_tensor::gemm::gather_rows_scaled_into(
            alpha,
            (0..n).map(|u| (u, conv.update_scale(view.in_neighbors(u as VertexId).len()))),
            &mut scaled_alpha,
        );
        let flops = conv.update_batch_into(n, &scaled_alpha, self_msg, h.as_mut_slice(), scratch);
        scratch.put(scaled_alpha);
        flops
    } else {
        conv.update_batch_into(n, alpha.as_slice(), self_msg, h.as_mut_slice(), scratch)
    };

    let mut captured = None;
    match &layer.norm {
        Some(GraphNormMode::Exact(norm)) => {
            captured = Some(norm.apply_exact(h));
        }
        Some(cached @ GraphNormMode::Cached { .. }) => {
            h.as_mut_slice()
                .par_chunks_mut(out_dim)
                .for_each(|row| cached.apply_cached(row));
        }
        None => {}
    }
    layer.act.apply(h.as_mut_slice());
    (captured, flops)
}

/// Classic full-graph inference over `view`, rebuilding `state` in place:
/// every cached matrix is reshaped capacity-preserving and all temporaries
/// (the inter-layer hidden buffer, GEMM packing, MLP ping-pong) come from
/// `scratch`, so repeated recompute epochs over same-shaped inputs perform no
/// allocation after the first. Returns the total GEMM flop count.
///
/// When a `meter` is given, the embedding traffic of every phase is recorded
/// (analytically per layer, to keep the counters off the hot path).
pub fn full_inference_into<N: Neighborhood>(
    model: &Model,
    view: &N,
    features: &Matrix,
    meter: Option<&CostMeter>,
    state: &mut FullState,
    scratch: &mut GemmScratch,
) -> u64 {
    assert_eq!(features.cols(), model.in_dim(), "feature dim must match model input");
    assert_eq!(features.rows(), view.num_vertices(), "one feature row per vertex");
    let n = view.num_vertices();
    let k = model.num_layers();
    if k == 0 {
        state.h.resize_to(n, features.cols());
        state.h.as_mut_slice().copy_from_slice(features.as_slice());
        return 0;
    }
    state.m.resize_with(k, || Matrix::zeros(0, 0));
    state.alpha.resize_with(k, || Matrix::zeros(0, 0));
    state.norm_stats.clear();
    state.norm_stats.resize(k, None);
    let mut flops = 0;
    // `cur` carries h_l between layers; layer 0 reads the features directly.
    let mut cur = scratch.take(0);

    for l in 0..k {
        let conv = &model.layer(l).conv;
        let h_slice: &[f32] = if l == 0 { features.as_slice() } else { &cur };
        flops += batch_message_into(model, l, h_slice, view, &mut state.m[l], scratch);
        batch_aggregate_into(model, l, view, &state.m[l], &mut state.alpha[l]);
        let (stats, f) =
            batch_update_into(model, l, &state.alpha[l], &state.m[l], view, &mut state.h, scratch);
        state.norm_stats[l] = stats;
        flops += f;
        if let Some(meter) = meter {
            let entries: usize = (0..n).map(|u| view.in_neighbors(u as VertexId).len()).sum();
            // message: read h, write m; aggregate: gather msgs, write α;
            // update: read α (+ self msg), write h.
            meter.read(n * conv.in_dim() + entries * conv.msg_dim() + n * conv.msg_dim());
            if conv.self_dependent() {
                meter.read(n * conv.msg_dim());
            }
            meter.write(n * conv.msg_dim() + n * conv.msg_dim() + n * conv.out_dim());
            meter.visit_nodes(n);
        }
        if l + 1 < k {
            cur.clear();
            cur.extend_from_slice(state.h.as_slice());
        }
    }
    scratch.put(cur);
    flops
}

/// Classic full-graph inference over `view`, caching all intermediates.
/// Allocating wrapper over [`full_inference_into`].
pub fn full_inference<N: Neighborhood>(
    model: &Model,
    view: &N,
    features: &Matrix,
    meter: Option<&CostMeter>,
) -> FullState {
    let mut state = FullState::empty();
    full_inference_into(model, view, features, meter, &mut state, &mut GemmScratch::new());
    state
}

/// Full inference that discards intermediates — used when only the output
/// matters (baseline comparisons, accuracy studies).
pub fn infer_embeddings<N: Neighborhood>(
    model: &Model,
    view: &N,
    features: &Matrix,
    meter: Option<&CostMeter>,
) -> Matrix {
    full_inference(model, view, features, meter).h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Aggregator;
    use ink_tensor::init::seeded_rng;

    fn toy_graph() -> DynGraph {
        // 0 – 1 – 2 triangle plus a pendant 3.
        DynGraph::undirected_from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    fn toy_features(n: usize, d: usize) -> Matrix {
        Matrix::from_fn(n, d, |r, c| (r * d + c) as f32 * 0.1 - 0.5)
    }

    #[test]
    fn state_shapes_match_model() {
        let mut rng = seeded_rng(1);
        let model = Model::gcn(&mut rng, &[6, 4, 3], Aggregator::Max);
        let g = toy_graph();
        let st = full_inference(&model, &g, &toy_features(4, 6), None);
        assert_eq!(st.m.len(), 2);
        assert_eq!(st.m[0].shape(), (4, 4));
        assert_eq!(st.alpha[0].shape(), (4, 4));
        assert_eq!(st.m[1].shape(), (4, 3));
        assert_eq!(st.h.shape(), (4, 3));
    }

    #[test]
    fn isolated_vertex_gets_zero_alpha() {
        let mut rng = seeded_rng(2);
        let model = Model::gcn(&mut rng, &[3, 2], Aggregator::Max);
        let g = DynGraph::new(2, false); // no edges at all
        let st = full_inference(&model, &g, &toy_features(2, 3), None);
        assert_eq!(st.alpha[0].row(0), &[0.0, 0.0]);
    }

    #[test]
    fn sum_aggregation_hand_checked() {
        // Identity GCN-ish layer: W = I, b = 0 → h1[u] = Σ_{v∈N(u)} x[v].
        let lin = ink_tensor::Linear::identity(2);
        let conv = crate::GcnConv::from_linear(lin, Aggregator::Sum);
        let model = Model::new(vec![crate::LayerDef {
            conv: Box::new(conv),
            norm: None,
            act: ink_tensor::Activation::Identity,
        }]);
        let g = toy_graph();
        let x = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 2.0]);
        let st = full_inference(&model, &g, &x, None);
        // N(0) = {1, 2} → [1, 2]; N(3) = {2} → [1, 1]
        assert_eq!(st.h.row(0), &[1.0, 2.0]);
        assert_eq!(st.h.row(3), &[1.0, 1.0]);
    }

    #[test]
    fn csr_view_matches_dyn_graph() {
        let mut rng = seeded_rng(3);
        let model = Model::sage(&mut rng, &[5, 4, 3], Aggregator::Mean);
        let g = toy_graph();
        let x = toy_features(4, 5);
        let a = full_inference(&model, &g, &x, None);
        let csr = ink_graph::Csr::from_graph(&g);
        let b = full_inference(&model, &csr, &x, None);
        assert_eq!(a.h, b.h);
    }

    #[test]
    fn meter_counts_scale_with_layers() {
        let mut rng = seeded_rng(4);
        let model = Model::gcn(&mut rng, &[3, 3, 3], Aggregator::Mean);
        let g = toy_graph();
        let x = toy_features(4, 3);
        let meter = CostMeter::new();
        full_inference(&model, &g, &x, Some(&meter));
        assert!(meter.total_traffic() > 0);
        assert_eq!(meter.nodes_visited(), 8, "4 nodes × 2 layers");
    }

    #[test]
    fn exact_graphnorm_stats_are_captured() {
        let mut rng = seeded_rng(5);
        let model = Model::gcn(&mut rng, &[3, 4, 2], Aggregator::Mean).with_exact_graphnorm();
        let g = toy_graph();
        let st = full_inference(&model, &g, &toy_features(4, 3), None);
        assert!(st.norm_stats[0].is_some());
        assert!(st.norm_stats[1].is_none(), "last layer is unnormalised");
        let (mean, var) = st.norm_stats[0].as_ref().unwrap();
        assert_eq!(mean.len(), 4);
        assert_eq!(var.len(), 4);
    }

    #[test]
    fn frozen_stats_reproduce_exact_inference_on_same_graph() {
        let mut rng = seeded_rng(6);
        let g = toy_graph();
        let x = toy_features(4, 3);
        let exact = Model::gcn(&mut rng, &[3, 4, 2], Aggregator::Mean).with_exact_graphnorm();
        let st = full_inference(&exact, &g, &x, None);
        let frozen = exact.freeze_graphnorm_stats(&st.norm_stats);
        let st2 = full_inference(&frozen, &g, &x, None);
        assert!(st.h.allclose(&st2.h, 1e-5), "same graph → same statistics → same output");
    }
}
