//! Full-graph inference — the classic method and the *PyG* baseline.
//!
//! Besides producing output embeddings, full inference is how InkStream
//! bootstraps: the paper's workflow saves the embedding *before and after
//! aggregation* (`m_l`, `α_l`) for the whole node set in all layers, and the
//! incremental engine evolves that cache. [`FullState`] is that cache.

use crate::cost::CostMeter;
use crate::{GraphNormMode, Model};
use ink_graph::{DynGraph, VertexId};
use ink_tensor::Matrix;
use rayon::prelude::*;

/// Anything that exposes per-vertex in-neighborhoods (the full graph or a
/// sampled view of it).
pub trait Neighborhood: Sync {
    /// Vertex count.
    fn num_vertices(&self) -> usize;
    /// Vertices whose messages `u` aggregates.
    fn in_neighbors(&self, u: VertexId) -> &[VertexId];
}

impl Neighborhood for DynGraph {
    fn num_vertices(&self) -> usize {
        DynGraph::num_vertices(self)
    }

    fn in_neighbors(&self, u: VertexId) -> &[VertexId] {
        DynGraph::in_neighbors(self, u)
    }
}

impl Neighborhood for ink_graph::Csr {
    fn num_vertices(&self) -> usize {
        ink_graph::Csr::num_vertices(self)
    }

    fn in_neighbors(&self, u: VertexId) -> &[VertexId] {
        self.neighbors(u)
    }
}

/// The cached intermediate state of one full inference: the paper's two
/// checkpoints per layer (messages `m_l` and aggregated neighborhoods `α_l`)
/// plus the final output `h`.
pub struct FullState {
    /// `m[l]` — messages entering layer `l`'s aggregation (`n × msg_dim(l)`).
    pub m: Vec<Matrix>,
    /// `alpha[l]` — aggregated neighborhoods of layer `l` (`n × msg_dim(l)`).
    pub alpha: Vec<Matrix>,
    /// Final output embeddings (`n × out_dim`).
    pub h: Matrix,
    /// Per-layer GraphNorm statistics captured when the layer ran in exact
    /// mode (for freezing into the cached approximation).
    pub norm_stats: Vec<Option<NormStats>>,
}

impl FullState {
    /// Bytes held by the cached state (the paper's §III-E memory overhead).
    pub fn cache_bytes(&self) -> usize {
        self.m.iter().map(Matrix::nbytes).sum::<usize>()
            + self.alpha.iter().map(Matrix::nbytes).sum::<usize>()
            + self.h.nbytes()
    }
}

/// Computes messages for every vertex: `m_l = message(h_l)`, times the
/// source-side degree weight for degree-scaled layers (LightGCN-style).
pub fn batch_message<N: Neighborhood>(model: &Model, l: usize, h: &Matrix, view: &N) -> Matrix {
    let conv = &model.layer(l).conv;
    let scaled = conv.degree_scaled();
    if conv.message_is_identity() && !scaled {
        return h.clone();
    }
    let n = h.rows();
    let mut m = Matrix::zeros(n, conv.msg_dim());
    m.as_mut_slice()
        .par_chunks_mut(conv.msg_dim())
        .enumerate()
        .for_each(|(u, out)| {
            conv.message_into(h.row(u), out);
            if scaled {
                let s = conv.degree_scale(view.in_neighbors(u as VertexId).len());
                ink_tensor::ops::scale(out, s);
            }
        });
    m
}

/// Aggregates every vertex's in-neighborhood: `α_l[u] = A(m_l[v] : v∈N(u))`.
pub fn batch_aggregate<N: Neighborhood>(model: &Model, l: usize, view: &N, m: &Matrix) -> Matrix {
    let conv = &model.layer(l).conv;
    let agg = conv.aggregator();
    let dim = conv.msg_dim();
    let n = view.num_vertices();
    let mut alpha = Matrix::zeros(n, dim);
    alpha
        .as_mut_slice()
        .par_chunks_mut(dim)
        .enumerate()
        .for_each(|(u, out)| {
            agg.aggregate_into(
                view.in_neighbors(u as VertexId).iter().map(|&v| m.row(v as usize)),
                out,
            );
        });
    alpha
}

/// Captured per-layer GraphNorm statistics: `(mean, var)`.
pub type NormStats = (Vec<f32>, Vec<f32>);

/// One layer's update phase: `h_{l+1} = act(norm(T(α, m)))`, handling exact
/// GraphNorm (whole-vertex-set statistics) when present. Returns the captured
/// statistics for exact norms.
fn batch_update<N: Neighborhood>(
    model: &Model,
    l: usize,
    alpha: &Matrix,
    m: &Matrix,
    view: &N,
) -> (Matrix, Option<NormStats>) {
    let layer = model.layer(l);
    let out_dim = layer.conv.out_dim();
    let scaled = layer.conv.degree_scaled();
    let n = alpha.rows();
    let mut h = Matrix::zeros(n, out_dim);
    h.as_mut_slice()
        .par_chunks_mut(out_dim)
        .enumerate()
        .for_each(|(u, out)| {
            if scaled {
                let s = layer.conv.update_scale(view.in_neighbors(u as VertexId).len());
                let mut a = alpha.row(u).to_vec();
                ink_tensor::ops::scale(&mut a, s);
                layer.conv.update_into(&a, m.row(u), out);
            } else {
                layer.conv.update_into(alpha.row(u), m.row(u), out);
            }
        });

    let mut captured = None;
    match &layer.norm {
        Some(GraphNormMode::Exact(norm)) => {
            captured = Some(norm.apply_exact(&mut h));
        }
        Some(cached @ GraphNormMode::Cached { .. }) => {
            h.as_mut_slice()
                .par_chunks_mut(out_dim)
                .for_each(|row| cached.apply_cached(row));
        }
        None => {}
    }
    layer.act.apply(h.as_mut_slice());
    (h, captured)
}

/// Classic full-graph inference over `view`, caching all intermediates.
///
/// When a `meter` is given, the embedding traffic of every phase is recorded
/// (analytically per layer, to keep the counters off the hot path).
pub fn full_inference<N: Neighborhood>(
    model: &Model,
    view: &N,
    features: &Matrix,
    meter: Option<&CostMeter>,
) -> FullState {
    assert_eq!(features.cols(), model.in_dim(), "feature dim must match model input");
    assert_eq!(features.rows(), view.num_vertices(), "one feature row per vertex");
    let n = view.num_vertices();
    let k = model.num_layers();
    let mut m_all = Vec::with_capacity(k);
    let mut alpha_all = Vec::with_capacity(k);
    let mut norm_stats = Vec::with_capacity(k);
    let mut h = features.clone();

    for l in 0..k {
        let conv = &model.layer(l).conv;
        let m = batch_message(model, l, &h, view);
        let alpha = batch_aggregate(model, l, view, &m);
        let (h_next, stats) = batch_update(model, l, &alpha, &m, view);
        if let Some(meter) = meter {
            let entries: usize = (0..n).map(|u| view.in_neighbors(u as VertexId).len()).sum();
            // message: read h, write m; aggregate: gather msgs, write α;
            // update: read α (+ self msg), write h.
            meter.read(n * conv.in_dim() + entries * conv.msg_dim() + n * conv.msg_dim());
            if conv.self_dependent() {
                meter.read(n * conv.msg_dim());
            }
            meter.write(n * conv.msg_dim() + n * conv.msg_dim() + n * conv.out_dim());
            meter.visit_nodes(n);
        }
        m_all.push(m);
        alpha_all.push(alpha);
        norm_stats.push(stats);
        h = h_next;
    }

    FullState { m: m_all, alpha: alpha_all, h, norm_stats }
}

/// Full inference that discards intermediates — used when only the output
/// matters (baseline comparisons, accuracy studies).
pub fn infer_embeddings<N: Neighborhood>(
    model: &Model,
    view: &N,
    features: &Matrix,
    meter: Option<&CostMeter>,
) -> Matrix {
    full_inference(model, view, features, meter).h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Aggregator;
    use ink_tensor::init::seeded_rng;

    fn toy_graph() -> DynGraph {
        // 0 – 1 – 2 triangle plus a pendant 3.
        DynGraph::undirected_from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    fn toy_features(n: usize, d: usize) -> Matrix {
        Matrix::from_fn(n, d, |r, c| (r * d + c) as f32 * 0.1 - 0.5)
    }

    #[test]
    fn state_shapes_match_model() {
        let mut rng = seeded_rng(1);
        let model = Model::gcn(&mut rng, &[6, 4, 3], Aggregator::Max);
        let g = toy_graph();
        let st = full_inference(&model, &g, &toy_features(4, 6), None);
        assert_eq!(st.m.len(), 2);
        assert_eq!(st.m[0].shape(), (4, 4));
        assert_eq!(st.alpha[0].shape(), (4, 4));
        assert_eq!(st.m[1].shape(), (4, 3));
        assert_eq!(st.h.shape(), (4, 3));
    }

    #[test]
    fn isolated_vertex_gets_zero_alpha() {
        let mut rng = seeded_rng(2);
        let model = Model::gcn(&mut rng, &[3, 2], Aggregator::Max);
        let g = DynGraph::new(2, false); // no edges at all
        let st = full_inference(&model, &g, &toy_features(2, 3), None);
        assert_eq!(st.alpha[0].row(0), &[0.0, 0.0]);
    }

    #[test]
    fn sum_aggregation_hand_checked() {
        // Identity GCN-ish layer: W = I, b = 0 → h1[u] = Σ_{v∈N(u)} x[v].
        let lin = ink_tensor::Linear::identity(2);
        let conv = crate::GcnConv::from_linear(lin, Aggregator::Sum);
        let model = Model::new(vec![crate::LayerDef {
            conv: Box::new(conv),
            norm: None,
            act: ink_tensor::Activation::Identity,
        }]);
        let g = toy_graph();
        let x = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 2.0]);
        let st = full_inference(&model, &g, &x, None);
        // N(0) = {1, 2} → [1, 2]; N(3) = {2} → [1, 1]
        assert_eq!(st.h.row(0), &[1.0, 2.0]);
        assert_eq!(st.h.row(3), &[1.0, 1.0]);
    }

    #[test]
    fn csr_view_matches_dyn_graph() {
        let mut rng = seeded_rng(3);
        let model = Model::sage(&mut rng, &[5, 4, 3], Aggregator::Mean);
        let g = toy_graph();
        let x = toy_features(4, 5);
        let a = full_inference(&model, &g, &x, None);
        let csr = ink_graph::Csr::from_graph(&g);
        let b = full_inference(&model, &csr, &x, None);
        assert_eq!(a.h, b.h);
    }

    #[test]
    fn meter_counts_scale_with_layers() {
        let mut rng = seeded_rng(4);
        let model = Model::gcn(&mut rng, &[3, 3, 3], Aggregator::Mean);
        let g = toy_graph();
        let x = toy_features(4, 3);
        let meter = CostMeter::new();
        full_inference(&model, &g, &x, Some(&meter));
        assert!(meter.total_traffic() > 0);
        assert_eq!(meter.nodes_visited(), 8, "4 nodes × 2 layers");
    }

    #[test]
    fn exact_graphnorm_stats_are_captured() {
        let mut rng = seeded_rng(5);
        let model = Model::gcn(&mut rng, &[3, 4, 2], Aggregator::Mean).with_exact_graphnorm();
        let g = toy_graph();
        let st = full_inference(&model, &g, &toy_features(4, 3), None);
        assert!(st.norm_stats[0].is_some());
        assert!(st.norm_stats[1].is_none(), "last layer is unnormalised");
        let (mean, var) = st.norm_stats[0].as_ref().unwrap();
        assert_eq!(mean.len(), 4);
        assert_eq!(var.len(), 4);
    }

    #[test]
    fn frozen_stats_reproduce_exact_inference_on_same_graph() {
        let mut rng = seeded_rng(6);
        let g = toy_graph();
        let x = toy_features(4, 3);
        let exact = Model::gcn(&mut rng, &[3, 4, 2], Aggregator::Mean).with_exact_graphnorm();
        let st = full_inference(&exact, &g, &x, None);
        let frozen = exact.freeze_graphnorm_stats(&st.norm_stats);
        let st2 = full_inference(&frozen, &g, &x, None);
        assert!(st.h.allclose(&st2.h, 1e-5), "same graph → same statistics → same output");
    }
}
