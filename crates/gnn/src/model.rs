//! Multi-layer GNN models.
//!
//! A [`Model`] is an ordered stack of [`LayerDef`]s — convolution, optional
//! GraphNorm, activation — plus constructors for the paper's three benchmark
//! models (2-layer GCN, 2-layer GraphSAGE, 5-layer GIN). The incremental
//! engine consumes models through [`Model::next_hidden_into`], which
//! evaluates exactly the per-node pipeline `act(norm(T(α_u, m_u)))` the
//! paper's expressiveness condition allows.

use crate::{Aggregator, Conv, GcnConv, GinConv, GraphNorm, GraphNormMode, LightGcnConv, SageConv};
use ink_tensor::Activation;
use rand::rngs::StdRng;

/// One model layer: convolution + optional normalisation + activation.
pub struct LayerDef {
    /// The convolution (combination + aggregation).
    pub conv: Box<dyn Conv>,
    /// Optional GraphNorm after the convolution.
    pub norm: Option<GraphNormMode>,
    /// Activation applied last.
    pub act: Activation,
}

/// A stack of GNN layers.
pub struct Model {
    layers: Vec<LayerDef>,
}

impl Model {
    /// Builds a model from explicit layers, validating the dimension chain.
    pub fn new(layers: Vec<LayerDef>) -> Self {
        assert!(!layers.is_empty(), "a model needs at least one layer");
        for w in layers.windows(2) {
            assert_eq!(
                w[0].conv.out_dim(),
                w[1].conv.in_dim(),
                "layer output dim must match next layer input dim"
            );
        }
        for l in &layers {
            if let Some(norm) = &l.norm {
                assert_eq!(norm.norm().dim(), l.conv.out_dim(), "norm dim must match layer output");
            }
        }
        Self { layers }
    }

    /// The paper's GCN benchmark: one [`GcnConv`] per dim window, ReLU
    /// between layers, identity after the last.
    pub fn gcn(rng: &mut StdRng, dims: &[usize], agg: Aggregator) -> Self {
        assert!(dims.len() >= 2);
        let k = dims.len() - 1;
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(l, w)| LayerDef {
                conv: Box::new(GcnConv::new(rng, w[0], w[1], agg)) as Box<dyn Conv>,
                norm: None,
                act: if l + 1 == k { Activation::Identity } else { Activation::Relu },
            })
            .collect();
        Self::new(layers)
    }

    /// The paper's GraphSAGE benchmark.
    pub fn sage(rng: &mut StdRng, dims: &[usize], agg: Aggregator) -> Self {
        assert!(dims.len() >= 2);
        let k = dims.len() - 1;
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(l, w)| LayerDef {
                conv: Box::new(SageConv::new(rng, w[0], w[1], agg)) as Box<dyn Conv>,
                norm: None,
                act: if l + 1 == k { Activation::Identity } else { Activation::Relu },
            })
            .collect();
        Self::new(layers)
    }

    /// The paper's 5-layer GIN benchmark (constant hidden width).
    pub fn gin(
        rng: &mut StdRng,
        feat_dim: usize,
        hidden: usize,
        num_layers: usize,
        eps: f32,
        agg: Aggregator,
    ) -> Self {
        assert!(num_layers >= 1);
        let layers = (0..num_layers)
            .map(|l| {
                let in_dim = if l == 0 { feat_dim } else { hidden };
                LayerDef {
                    conv: Box::new(GinConv::new(rng, in_dim, hidden, eps, agg)) as Box<dyn Conv>,
                    norm: None,
                    act: if l + 1 == num_layers { Activation::Identity } else { Activation::Relu },
                }
            })
            .collect();
        Self::new(layers)
    }

    /// A parameter-free LightGCN propagation stack: `layers` rounds of
    /// symmetrically degree-normalised sum over `dim`-channel embeddings
    /// (the topology-only weighted sum of the paper's §II).
    pub fn lightgcn(dim: usize, layers: usize) -> Self {
        assert!(layers >= 1);
        Self::new(
            (0..layers)
                .map(|_| LayerDef {
                    conv: Box::new(LightGcnConv::new(dim)) as Box<dyn Conv>,
                    norm: None,
                    act: Activation::Identity,
                })
                .collect(),
        )
    }

    /// Attaches an exact GraphNorm (unit γ/β) after every layer except the
    /// last — the Fig. 9 configuration.
    pub fn with_exact_graphnorm(mut self) -> Self {
        let k = self.layers.len();
        for (l, layer) in self.layers.iter_mut().enumerate() {
            if l + 1 < k {
                layer.norm = Some(GraphNormMode::Exact(GraphNorm::unit(layer.conv.out_dim())));
            }
        }
        self
    }

    /// Replaces every exact GraphNorm with the cached-statistics form.
    /// `stats[l]` must be `Some((mean, var))` for each normalised layer —
    /// the values captured by a previous full inference.
    pub fn freeze_graphnorm_stats(mut self, stats: &[Option<(Vec<f32>, Vec<f32>)>]) -> Self {
        assert_eq!(stats.len(), self.layers.len());
        for (layer, stat) in self.layers.iter_mut().zip(stats) {
            if let Some(GraphNormMode::Exact(norm)) = layer.norm.take() {
                let (mean, var) = stat
                    .clone()
                    .expect("captured statistics required for every GraphNorm layer");
                layer.norm = Some(GraphNormMode::Cached { norm, mean, var });
            }
        }
        self
    }

    /// Number of layers `k`.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The layer definitions.
    pub fn layers(&self) -> &[LayerDef] {
        &self.layers
    }

    /// Layer `l`.
    pub fn layer(&self, l: usize) -> &LayerDef {
        &self.layers[l]
    }

    /// Input feature dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].conv.in_dim()
    }

    /// Output embedding dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().unwrap().conv.out_dim()
    }

    /// Message dimensionality entering layer `l`'s aggregation.
    pub fn msg_dim(&self, l: usize) -> usize {
        self.layers[l].conv.msg_dim()
    }

    /// True when every GraphNorm (if any) is in cached form — the condition
    /// for the incremental engine to run.
    pub fn supports_incremental(&self) -> bool {
        self.layers.iter().all(|l| l.norm.as_ref().is_none_or(GraphNormMode::is_cached))
    }

    /// Evaluates `h_{l+1,u} = act(norm(T(α_{l,u}, m_{l,u})))` for one node;
    /// `degree` is the node's in-degree, consumed only by degree-scaled
    /// layers (LightGCN-style target-side normalisation). Requires cached
    /// GraphNorm statistics (see [`Model::supports_incremental`]); full-graph
    /// inference handles the exact form itself.
    pub fn next_hidden_into(
        &self,
        l: usize,
        alpha: &[f32],
        self_msg: &[f32],
        degree: usize,
        out: &mut [f32],
    ) {
        let layer = &self.layers[l];
        if layer.conv.degree_scaled() {
            let mut scaled = alpha.to_vec();
            ink_tensor::ops::scale(&mut scaled, layer.conv.update_scale(degree));
            layer.conv.update_into(&scaled, self_msg, out);
        } else {
            layer.conv.update_into(alpha, self_msg, out);
        }
        if let Some(norm) = &layer.norm {
            norm.apply_cached(out);
        }
        layer.act.apply(out);
    }

    /// Allocating wrapper around [`Model::next_hidden_into`].
    pub fn next_hidden(&self, l: usize, alpha: &[f32], self_msg: &[f32], degree: usize) -> Vec<f32> {
        let mut out = vec![0.0; self.layers[l].conv.out_dim()];
        self.next_hidden_into(l, alpha, self_msg, degree, &mut out);
        out
    }

    /// Total parameter count across layers.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.conv.param_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ink_tensor::init::seeded_rng;

    #[test]
    fn gcn_constructor_shapes() {
        let mut rng = seeded_rng(1);
        let m = Model::gcn(&mut rng, &[10, 8, 4], Aggregator::Max);
        assert_eq!(m.num_layers(), 2);
        assert_eq!((m.in_dim(), m.out_dim()), (10, 4));
        assert_eq!(m.msg_dim(0), 8, "GCN transforms before aggregating");
        assert_eq!(m.layer(0).act, Activation::Relu);
        assert_eq!(m.layer(1).act, Activation::Identity);
    }

    #[test]
    fn sage_msg_dim_is_input_dim() {
        let mut rng = seeded_rng(2);
        let m = Model::sage(&mut rng, &[10, 8, 4], Aggregator::Mean);
        assert_eq!(m.msg_dim(0), 10);
        assert_eq!(m.msg_dim(1), 8);
    }

    #[test]
    fn gin_depth_and_dims() {
        let mut rng = seeded_rng(3);
        let m = Model::gin(&mut rng, 16, 8, 5, 0.0, Aggregator::Sum);
        assert_eq!(m.num_layers(), 5);
        assert_eq!((m.in_dim(), m.out_dim()), (16, 8));
    }

    #[test]
    #[should_panic(expected = "must match next layer")]
    fn dim_chain_is_validated() {
        let mut rng = seeded_rng(4);
        let l1 = LayerDef {
            conv: Box::new(GcnConv::new(&mut rng, 4, 3, Aggregator::Max)),
            norm: None,
            act: Activation::Relu,
        };
        let l2 = LayerDef {
            conv: Box::new(GcnConv::new(&mut rng, 5, 2, Aggregator::Max)),
            norm: None,
            act: Activation::Identity,
        };
        let _ = Model::new(vec![l1, l2]);
    }

    #[test]
    fn exact_graphnorm_blocks_incremental_until_frozen() {
        let mut rng = seeded_rng(5);
        let m = Model::gcn(&mut rng, &[6, 4, 2], Aggregator::Mean).with_exact_graphnorm();
        assert!(!m.supports_incremental());
        let dims = m.layer(0).conv.out_dim();
        let stats = vec![Some((vec![0.0; dims], vec![1.0; dims])), None];
        let frozen = m.freeze_graphnorm_stats(&stats);
        assert!(frozen.supports_incremental());
    }

    #[test]
    fn next_hidden_applies_activation() {
        let mut rng = seeded_rng(6);
        let m = Model::gcn(&mut rng, &[4, 3, 3], Aggregator::Max);
        // Layer 0 uses ReLU: a strongly negative alpha must clamp to zero.
        let h = m.next_hidden(0, &[-100.0, -100.0, -100.0], &[0.0; 3], 2);
        assert!(h.iter().all(|&x| x >= 0.0));
    }
}
