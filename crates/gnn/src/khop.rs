//! The *k-hop* baseline: recompute only the theoretical affected area.
//!
//! Following DyGNN's core idea (and the paper's baseline of the same name),
//! this method takes only the newest graph snapshot — no cached intermediate
//! state — computes the k-hop neighborhood of the changed edges, and
//! recomputes embeddings for it from scratch. Because layer `l` outputs on a
//! set need layer `l−1` inputs on that set *plus its in-neighbors*, the
//! method must fetch an input cone that can reach `2k` hops from the changes
//! — the redundancy InkStream's cached `m⁻`/`α⁻` eliminates.

use crate::cost::CostMeter;
use crate::Model;
use ink_graph::bfs::theoretical_affected_area;
use ink_graph::{DeltaBatch, DynGraph, FxHashMap, VertexId};
use ink_tensor::Matrix;

/// Result of one k-hop update.
pub struct KhopOutput {
    /// New output embeddings for every node in the affected area.
    pub updated_h: FxHashMap<VertexId, Vec<f32>>,
    /// The theoretical affected area that was recomputed.
    pub affected: Vec<VertexId>,
    /// Sizes of the per-layer input cones `|S_0| ≥ … ≥ |S_k|`.
    pub cone_sizes: Vec<usize>,
}

/// Recomputes the affected area of `delta` on the (already-updated) graph
/// `g`, from raw `features`. The model must not contain exact GraphNorm
/// (whole-graph statistics contradict partial recomputation).
pub fn khop_update(
    model: &Model,
    g: &DynGraph,
    features: &Matrix,
    delta: &DeltaBatch,
    meter: Option<&CostMeter>,
) -> KhopOutput {
    let k = model.num_layers();
    let affected = theoretical_affected_area(g, delta, k);

    // Input cones: sets[k] = affected, sets[l] = sets[l+1] ∪ N_in(sets[l+1]).
    let mut sets: Vec<Vec<VertexId>> = vec![Vec::new(); k + 1];
    sets[k] = affected.clone();
    for l in (0..k).rev() {
        let mut expanded: Vec<VertexId> = sets[l + 1].clone();
        for &u in &sets[l + 1] {
            expanded.extend_from_slice(g.in_neighbors(u));
        }
        expanded.sort_unstable();
        expanded.dedup();
        sets[l] = expanded;
    }
    let cone_sizes: Vec<usize> = sets.iter().map(Vec::len).collect();

    // h_0 on S_0: raw feature fetch.
    let mut h: FxHashMap<VertexId, Vec<f32>> = FxHashMap::default();
    for &u in &sets[0] {
        h.insert(u, features.row(u as usize).to_vec());
    }
    if let Some(m) = meter {
        m.read(sets[0].len() * features.cols());
        m.visit_nodes(sets[0].len());
    }

    for l in 0..k {
        let conv = &model.layer(l).conv;
        let dim = conv.msg_dim();
        let scaled = conv.degree_scaled();
        // Messages on S_l (with the source-side degree weight when scaled).
        let mut msgs: FxHashMap<VertexId, Vec<f32>> = FxHashMap::default();
        for &u in &sets[l] {
            let mut out = vec![0.0; dim];
            conv.message_into(&h[&u], &mut out);
            if scaled {
                ink_tensor::ops::scale(&mut out, conv.degree_scale(g.in_degree(u)));
            }
            msgs.insert(u, out);
        }
        // Aggregate + update on S_{l+1}.
        let mut h_next: FxHashMap<VertexId, Vec<f32>> = FxHashMap::default();
        let mut gathered = 0usize;
        for &u in &sets[l + 1] {
            let mut alpha = vec![0.0; dim];
            conv.aggregator()
                .aggregate_into(g.in_neighbors(u).iter().map(|v| msgs[v].as_slice()), &mut alpha);
            gathered += g.in_degree(u);
            let mut out = vec![0.0; conv.out_dim()];
            model.next_hidden_into(l, &alpha, &msgs[&u], g.in_degree(u), &mut out);
            h_next.insert(u, out);
        }
        if let Some(m) = meter {
            // message reads/writes on S_l; gather on S_{l+1}; update output.
            m.read(sets[l].len() * conv.in_dim() + gathered * dim + sets[l + 1].len() * dim);
            m.write(sets[l].len() * dim + sets[l + 1].len() * (dim + conv.out_dim()));
            m.visit_nodes(sets[l + 1].len());
        }
        h = h_next;
    }

    KhopOutput { updated_h: h, affected, cone_sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::full_inference;
    use crate::{Aggregator, Model};
    use ink_graph::EdgeChange;
    use ink_tensor::init::seeded_rng;

    fn line_graph(n: usize) -> DynGraph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i as VertexId, i as VertexId + 1)).collect();
        DynGraph::undirected_from_edges(n, &edges)
    }

    fn feats(n: usize, d: usize) -> Matrix {
        Matrix::from_fn(n, d, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.3 - 1.0)
    }

    /// The k-hop baseline must agree exactly with full recomputation on the
    /// affected area — it is the same arithmetic on a subgraph whose input
    /// cone is complete.
    #[test]
    fn matches_full_inference_on_affected_area() {
        for agg in [Aggregator::Max, Aggregator::Mean, Aggregator::Sum] {
            let mut rng = seeded_rng(7);
            let model = Model::gcn(&mut rng, &[4, 5, 3], agg);
            let mut g = line_graph(12);
            let x = feats(12, 4);
            let delta = DeltaBatch::new(vec![EdgeChange::insert(2, 9)]);
            delta.apply(&mut g);
            let reference = full_inference(&model, &g, &x, None);
            let out = khop_update(&model, &g, &x, &delta, None);
            assert!(!out.updated_h.is_empty());
            for (&u, h) in &out.updated_h {
                assert_eq!(
                    h.as_slice(),
                    reference.h.row(u as usize),
                    "{agg:?} vertex {u} must match full recompute bitwise"
                );
            }
        }
    }

    #[test]
    fn cone_sizes_shrink_toward_output() {
        let mut rng = seeded_rng(8);
        let model = Model::gcn(&mut rng, &[3, 3, 3], Aggregator::Mean);
        let mut g = line_graph(30);
        let delta = DeltaBatch::new(vec![EdgeChange::remove(10, 11)]);
        delta.apply(&mut g);
        let out = khop_update(&model, &g, &feats(30, 3), &delta, None);
        for w in out.cone_sizes.windows(2) {
            assert!(w[0] >= w[1], "input cones must not grow: {:?}", out.cone_sizes);
        }
    }

    #[test]
    fn affected_area_matches_bfs() {
        let mut rng = seeded_rng(9);
        let model = Model::gcn(&mut rng, &[3, 3, 3], Aggregator::Max);
        let mut g = line_graph(20);
        let delta = DeltaBatch::new(vec![EdgeChange::insert(0, 10)]);
        delta.apply(&mut g);
        let out = khop_update(&model, &g, &feats(20, 3), &delta, None);
        assert_eq!(out.affected, theoretical_affected_area(&g, &delta, 2));
        assert_eq!(out.updated_h.len(), out.affected.len());
    }

    #[test]
    fn meter_records_cone_traffic() {
        let mut rng = seeded_rng(10);
        let model = Model::gcn(&mut rng, &[3, 3, 3], Aggregator::Max);
        let mut g = line_graph(20);
        let delta = DeltaBatch::new(vec![EdgeChange::insert(0, 10)]);
        delta.apply(&mut g);
        let meter = CostMeter::new();
        khop_update(&model, &g, &feats(20, 3), &delta, Some(&meter));
        assert!(meter.reads() > 0);
        assert!(meter.nodes_visited() > 0);
    }

    /// Self-dependent models propagate to the node itself; the k-hop area
    /// still covers everything because it is a superset.
    #[test]
    fn sage_matches_full_inference() {
        let mut rng = seeded_rng(11);
        let model = Model::sage(&mut rng, &[4, 4, 4], Aggregator::Max);
        let mut g = line_graph(15);
        let x = feats(15, 4);
        let delta = DeltaBatch::new(vec![EdgeChange::insert(3, 12), EdgeChange::remove(7, 8)]);
        delta.apply(&mut g);
        let reference = full_inference(&model, &g, &x, None);
        let out = khop_update(&model, &g, &x, &delta, None);
        for (&u, h) in &out.updated_h {
            assert_eq!(h.as_slice(), reference.h.row(u as usize), "vertex {u}");
        }
    }
}
