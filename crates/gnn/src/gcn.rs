//! GCN convolution (Kipf & Welling), in the transform-first form PyG uses:
//! `m_u = W·h_u`, `h'_u = A(m_v : v ∈ N(u)) + b`.
//!
//! Transform-first keeps layer-0 aggregation in the hidden dimension instead
//! of the (much longer) feature dimension — the same reason PyG's `GCNConv`
//! multiplies by `W` before propagating. GCN is *not* self-dependent: the
//! update reads only the aggregated neighborhood, which is why the paper sees
//! its propagation tree prune best.

use crate::{Aggregator, Conv};
use ink_tensor::gemm::{self, GemmScratch};
use ink_tensor::Linear;
use rand::rngs::StdRng;

/// A GCN layer with a configurable aggregator (the paper's InkStream-m uses
/// max, InkStream-a uses mean).
#[derive(Clone, Debug)]
pub struct GcnConv {
    lin: Linear,
    agg: Aggregator,
}

impl GcnConv {
    /// Glorot-initialised layer.
    pub fn new(rng: &mut StdRng, in_dim: usize, out_dim: usize, agg: Aggregator) -> Self {
        Self { lin: Linear::new(rng, in_dim, out_dim), agg }
    }

    /// Layer from explicit parameters.
    pub fn from_linear(lin: Linear, agg: Aggregator) -> Self {
        Self { lin, agg }
    }
}

impl Conv for GcnConv {
    fn in_dim(&self) -> usize {
        self.lin.in_dim()
    }

    fn msg_dim(&self) -> usize {
        self.lin.out_dim()
    }

    fn out_dim(&self) -> usize {
        self.lin.out_dim()
    }

    fn aggregator(&self) -> Aggregator {
        self.agg
    }

    fn message_into(&self, h: &[f32], out: &mut [f32]) {
        self.lin.weight().vecmul(h, out);
    }

    /// One GEMM over the whole batch (`W` has no bias in the message, so
    /// this is the raw kernel, not [`Linear::forward_batch_into`]). Each row
    /// is bitwise-identical to the per-node `vecmul`.
    fn message_batch_into(
        &self,
        rows: usize,
        h: &[f32],
        out: &mut [f32],
        scratch: &mut GemmScratch,
    ) -> u64 {
        let (k, m) = (self.lin.in_dim(), self.lin.out_dim());
        gemm::gemm_into(rows, k, m, h, self.lin.weight().as_slice(), out, scratch, true);
        gemm::gemm_flops(rows, k, m)
    }

    fn update_into(&self, alpha: &[f32], _self_msg: &[f32], out: &mut [f32]) {
        out.copy_from_slice(alpha);
        ink_tensor::ops::add_assign(out, self.lin.bias());
    }

    fn self_dependent(&self) -> bool {
        false
    }

    fn param_count(&self) -> usize {
        self.lin.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ink_tensor::init::seeded_rng;
    use ink_tensor::Matrix;

    #[test]
    fn message_is_weight_product_without_bias() {
        let lin = Linear::from_parts(Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 2.0]), vec![5.0, 5.0]);
        let conv = GcnConv::from_linear(lin, Aggregator::Max);
        assert_eq!(conv.message(&[3.0, 4.0]), vec![3.0, 8.0], "bias must not leak into messages");
    }

    #[test]
    fn update_adds_bias_to_alpha() {
        let lin = Linear::from_parts(Matrix::zeros(2, 2), vec![1.0, -1.0]);
        let conv = GcnConv::from_linear(lin, Aggregator::Mean);
        assert_eq!(conv.update(&[10.0, 20.0], &[99.0, 99.0]), vec![11.0, 19.0]);
    }

    #[test]
    fn gcn_ignores_self_message() {
        let mut rng = seeded_rng(1);
        let conv = GcnConv::new(&mut rng, 3, 2, Aggregator::Sum);
        assert!(!conv.self_dependent());
        let a = conv.update(&[1.0, 2.0], &[0.0, 0.0, 0.0]);
        let b = conv.update(&[1.0, 2.0], &[7.0, 8.0, 9.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn batched_message_is_bitwise_equal_to_per_node() {
        let mut rng = seeded_rng(7);
        let conv = GcnConv::new(&mut rng, 5, 3, Aggregator::Sum);
        let h = ink_tensor::init::uniform(&mut rng, 11, 5, -2.0, 2.0);
        let mut batched = vec![0.0; 11 * 3];
        let mut scratch = GemmScratch::new();
        let flops = conv.message_batch_into(11, h.as_slice(), &mut batched, &mut scratch);
        assert_eq!(flops, 2 * 11 * 5 * 3);
        for r in 0..11 {
            assert_eq!(conv.message(h.row(r)).as_slice(), &batched[r * 3..(r + 1) * 3], "row {r}");
        }
    }

    #[test]
    fn dims_follow_linear() {
        let mut rng = seeded_rng(2);
        let conv = GcnConv::new(&mut rng, 5, 3, Aggregator::Max);
        assert_eq!((conv.in_dim(), conv.msg_dim(), conv.out_dim()), (5, 3, 3));
        assert_eq!(conv.param_count(), 5 * 3 + 3);
        assert!(!conv.message_is_identity());
    }
}
