//! LightGCN-style propagation (He et al.):
//! `h_{l+1,u} = Σ_{v∈N(u)} h_{l,v} / √(d_v · d_u)`.
//!
//! The paper's expressiveness discussion (§II) singles this out as the
//! weighted-sum case InkStream supports, because the weights use *only graph
//! topology*: the `1/√d_v` half rides on the source's message, the `1/√d_u`
//! half on the target's aggregate, and a degree change shows up to the
//! engine as "this vertex's message changed" — exactly the effect-propagation
//! machinery that already exists.
//!
//! The layer is parameter-free (LightGCN removes the transform and the
//! non-linearity); stack `k` of them to propagate embeddings `k` hops.

use crate::{Aggregator, Conv};

/// One parameter-free, symmetrically degree-normalised propagation layer.
#[derive(Clone, Copy, Debug)]
pub struct LightGcnConv {
    dim: usize,
}

impl LightGcnConv {
    /// A propagation layer over `dim`-channel embeddings.
    pub fn new(dim: usize) -> Self {
        Self { dim }
    }
}

impl Conv for LightGcnConv {
    fn in_dim(&self) -> usize {
        self.dim
    }

    fn msg_dim(&self) -> usize {
        self.dim
    }

    fn out_dim(&self) -> usize {
        self.dim
    }

    fn aggregator(&self) -> Aggregator {
        Aggregator::Sum
    }

    fn message_into(&self, h: &[f32], out: &mut [f32]) {
        out.copy_from_slice(h);
    }

    fn message_is_identity(&self) -> bool {
        true
    }

    fn update_into(&self, alpha: &[f32], _self_msg: &[f32], out: &mut [f32]) {
        // The degree scales are applied by the engine (update_scale below);
        // the combination itself is the identity.
        out.copy_from_slice(alpha);
    }

    fn self_dependent(&self) -> bool {
        false
    }

    fn param_count(&self) -> usize {
        0
    }

    fn degree_scaled(&self) -> bool {
        true
    }

    fn degree_scale(&self, degree: usize) -> f32 {
        if degree == 0 {
            0.0
        } else {
            1.0 / (degree as f32).sqrt()
        }
    }

    fn update_scale(&self, degree: usize) -> f32 {
        if degree == 0 {
            0.0
        } else {
            1.0 / (degree as f32).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_inverse_sqrt_degree() {
        let c = LightGcnConv::new(4);
        assert_eq!(c.degree_scale(4), 0.5);
        assert_eq!(c.update_scale(16), 0.25);
        assert_eq!(c.degree_scale(0), 0.0, "isolated vertices contribute nothing");
        assert_eq!(c.update_scale(0), 0.0);
    }

    #[test]
    fn layer_is_parameter_free_identity() {
        let c = LightGcnConv::new(3);
        assert_eq!(c.param_count(), 0);
        assert!(c.degree_scaled());
        assert!(c.message_is_identity());
        assert!(!c.self_dependent());
        let mut out = vec![0.0; 3];
        c.update_into(&[1.0, -2.0, 3.0], &[9.0, 9.0, 9.0], &mut out);
        assert_eq!(out, vec![1.0, -2.0, 3.0]);
    }

    #[test]
    fn default_convs_are_not_degree_scaled() {
        use ink_tensor::init::seeded_rng;
        let mut rng = seeded_rng(1);
        let gcn = crate::GcnConv::new(&mut rng, 3, 2, Aggregator::Max);
        assert!(!gcn.degree_scaled());
        assert_eq!(gcn.degree_scale(5), 1.0);
        assert_eq!(gcn.update_scale(5), 1.0);
    }
}
