//! Embedding-traffic cost model.
//!
//! The paper's Table V reports RMC — *reduction in memory cost* — between
//! InkStream and the k-hop baseline. Absolute DRAM traffic is not observable
//! from safe Rust, so every engine in this repo counts the quantity the paper
//! models: `f32` values of embedding data read and written (weights are
//! shared and cached, and are excluded on all sides). Counters are relaxed
//! atomics so rayon-parallel loops can share one meter.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared traffic counters.
#[derive(Debug, Default)]
pub struct CostMeter {
    reads: AtomicU64,
    writes: AtomicU64,
    nodes_visited: AtomicU64,
}

impl CostMeter {
    /// A zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` embedding values read.
    #[inline]
    pub fn read(&self, n: usize) {
        self.reads.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Records `n` embedding values written.
    #[inline]
    pub fn write(&self, n: usize) {
        self.writes.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Records one node visit (a node whose embedding the engine touched).
    #[inline]
    pub fn visit_node(&self) {
        self.nodes_visited.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` node visits.
    #[inline]
    pub fn visit_nodes(&self, n: usize) {
        self.nodes_visited.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Total `f32` values read.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Total `f32` values written.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Total values moved (reads + writes) — the RMC numerator/denominator.
    pub fn total_traffic(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Total node visits — the RNVV numerator/denominator.
    pub fn nodes_visited(&self) -> u64 {
        self.nodes_visited.load(Ordering::Relaxed)
    }

    /// Resets all counters.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.nodes_visited.store(0, Ordering::Relaxed);
    }

    /// Snapshot of `(reads, writes, nodes_visited)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (self.reads(), self.writes(), self.nodes_visited())
    }

    /// Adds another meter's current totals into this one — lets a harness
    /// keep one cumulative meter while measuring scenarios with fresh ones.
    pub fn absorb(&self, other: &CostMeter) {
        let (r, w, v) = other.snapshot();
        self.reads.fetch_add(r, Ordering::Relaxed);
        self.writes.fetch_add(w, Ordering::Relaxed);
        self.nodes_visited.fetch_add(v, Ordering::Relaxed);
    }

    /// Publishes the meter's current totals into `registry` as gauges named
    /// `<prefix>_reads`, `<prefix>_writes`, `<prefix>_nodes_visited` and
    /// `<prefix>_total_traffic`.
    ///
    /// Gauges rather than counters because meters are resettable — a scrape
    /// sees whatever epoch of traffic the owner is currently accounting.
    /// `prefix` must be a valid Prometheus metric-name stem (e.g.
    /// `ink_gnn_khop_pm`); the registry panics on invalid names.
    pub fn export(&self, registry: &ink_obs::MetricsRegistry, prefix: &str) {
        let set = |suffix: &str, help: &str, v: u64| {
            registry.gauge(&format!("{prefix}_{suffix}"), help).set_u64(v);
        };
        set("reads", "Embedding f32 values read", self.reads());
        set("writes", "Embedding f32 values written", self.writes());
        set("nodes_visited", "Nodes whose embedding the engine touched", self.nodes_visited());
        set("total_traffic", "Embedding f32 values moved (reads + writes)", self.total_traffic());
    }
}

/// An execution strategy the adaptive dispatcher can pick for one update
/// round. Every arm produces bitwise-identical results (the engine's
/// worker/shard and batched paths are equivalence-tested), so switching arms
/// mid-stream is purely a performance decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DispatchArm {
    /// One worker, one shard, scalar kernels — no fan-out, no packing. The
    /// cheapest machinery; optimal for tiny deltas (|ΔG| ≈ 1) where worker
    /// fan-out and panel packing cost more than the work itself.
    Sequential,
    /// One worker, one shard, but with the batched (gather → panel-fold /
    /// GEMM → scatter) apply and transform paths enabled.
    Batched,
    /// Configured worker/shard fan-out plus the batched paths.
    Parallel,
}

impl DispatchArm {
    /// All arms, in machinery-cost order (cheapest first). `choose` breaks
    /// prediction ties toward the earlier arm.
    pub const ALL: [DispatchArm; 3] =
        [DispatchArm::Sequential, DispatchArm::Batched, DispatchArm::Parallel];

    /// Stable lowercase name (metric labels, bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            DispatchArm::Sequential => "sequential",
            DispatchArm::Batched => "batched",
            DispatchArm::Parallel => "parallel",
        }
    }

    fn index(self) -> usize {
        match self {
            DispatchArm::Sequential => 0,
            DispatchArm::Batched => 1,
            DispatchArm::Parallel => 2,
        }
    }
}

/// Exponential forgetting factor for the per-arm fits: each new observation
/// decays the old evidence by this much, giving an effective window of ~10
/// rounds so the model tracks cache-warmth and load changes.
const FIT_DECAY: f64 = 0.9;

/// After this many exploited decisions the dispatcher re-probes one arm
/// round-robin, so a stale fit cannot lock in a wrong choice forever.
const REPROBE_EVERY: u64 = 64;

/// Decayed least-squares fit of `round_nanos ≈ a + b · items` for one arm.
#[derive(Clone, Copy, Debug, Default)]
struct ArmFit {
    w: f64,
    sx: f64,
    sy: f64,
    sxx: f64,
    sxy: f64,
    samples: u64,
}

impl ArmFit {
    fn observe(&mut self, x: f64, y: f64) {
        self.w = self.w * FIT_DECAY + 1.0;
        self.sx = self.sx * FIT_DECAY + x;
        self.sy = self.sy * FIT_DECAY + y;
        self.sxx = self.sxx * FIT_DECAY + x * x;
        self.sxy = self.sxy * FIT_DECAY + x * y;
        self.samples += 1;
    }

    fn predict(&self, x: f64) -> Option<f64> {
        if self.samples == 0 || self.w <= 0.0 {
            return None;
        }
        let mean_x = self.sx / self.w;
        let mean_y = self.sy / self.w;
        let denom = self.w * self.sxx - self.sx * self.sx;
        // Guard against a degenerate design (all observations at ~one size):
        // fall back to proportional extrapolation through the mean.
        let spread_ok = denom > 1e-9 * self.w * self.sxx.max(1.0);
        let pred = if spread_ok {
            let b = (self.w * self.sxy - self.sx * self.sy) / denom;
            let a = mean_y - b * mean_x;
            a + b * x
        } else if mean_x > 0.0 {
            mean_y * x / mean_x
        } else {
            mean_y
        };
        Some(pred.max(0.0))
    }
}

/// Calibrated per-round cost model behind the engine's adaptive dispatcher.
///
/// The model keeps one decayed linear fit of round latency vs. round size
/// per [`DispatchArm`], fed with the same per-round wall-clock measurements
/// the session layer exports as the `ink_pipeline_phase_*` histograms.
/// [`CostModel::choose`] picks the arm with the lowest predicted cost for the
/// incoming round, after (a) short-circuiting tiny rounds straight to
/// [`DispatchArm::Sequential`] — they should never pay fan-out overhead —
/// and (b) probing each arm a configurable number of times so every fit has
/// evidence before the model starts exploiting it.
#[derive(Debug, Default)]
pub struct CostModel {
    fits: [ArmFit; 3],
    decisions: u64,
}

impl CostModel {
    /// A model with no evidence; the first eligible rounds probe each arm.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that a round of `items` work units ran on `arm` in `nanos`.
    pub fn observe(&mut self, arm: DispatchArm, items: usize, nanos: u64) {
        self.fits[arm.index()].observe(items as f64, nanos as f64);
    }

    /// Observations recorded for `arm` (before decay; monotonic).
    pub fn samples(&self, arm: DispatchArm) -> u64 {
        self.fits[arm.index()].samples
    }

    /// Predicted round latency in nanoseconds for `items` work units on
    /// `arm`, or `None` before any observation.
    pub fn predict(&self, arm: DispatchArm, items: usize) -> Option<f64> {
        self.fits[arm.index()].predict(items as f64)
    }

    /// Picks the arm for a round of `items` work units.
    ///
    /// Rounds below `min_work` go to [`DispatchArm::Sequential`] outright —
    /// the short-circuit that stops |ΔG|=1 updates from paying worker
    /// fan-out. Larger rounds probe arms with fewer than `probes`
    /// observations (round-robin across arms), re-probe round-robin
    /// every `REPROBE_EVERY`-th decision, and otherwise exploit the
    /// lowest predicted cost, breaking ties toward the cheaper machinery.
    pub fn choose(&mut self, items: usize, min_work: usize, probes: u64) -> DispatchArm {
        if items < min_work {
            return DispatchArm::Sequential;
        }
        // Probe round-robin (S, B, P, S, B, P, …) rather than in per-arm
        // blocks: consecutive rounds share transient conditions (first-round
        // pool growth, cache warmth from an adjacent engine in a bench
        // harness), and block probing would hand all of one arm's evidence
        // to the same transient. Pick the least-sampled arm, ties toward
        // the cheaper machinery.
        if let Some(arm) = DispatchArm::ALL
            .into_iter()
            .filter(|&a| self.samples(a) < probes)
            .min_by_key(|&a| self.samples(a))
        {
            return arm;
        }
        self.decisions += 1;
        if probes > 0 && self.decisions.is_multiple_of(REPROBE_EVERY) {
            return DispatchArm::ALL[(self.decisions / REPROBE_EVERY) as usize % 3];
        }
        let mut best = DispatchArm::Sequential;
        let mut best_cost = f64::INFINITY;
        for arm in DispatchArm::ALL {
            let cost = self.predict(arm, items).unwrap_or(f64::INFINITY);
            if cost < best_cost {
                best = arm;
                best_cost = cost;
            }
        }
        best
    }

    /// Publishes per-arm sample counts and predicted costs at `items` as
    /// gauges named `<prefix>_<arm>_samples` / `<prefix>_<arm>_pred_ns`.
    pub fn export(&self, registry: &ink_obs::MetricsRegistry, prefix: &str, items: usize) {
        for arm in DispatchArm::ALL {
            registry
                .gauge(
                    &format!("{prefix}_{}_samples", arm.name()),
                    "Dispatcher cost-model observations for this arm",
                )
                .set_u64(self.samples(arm));
            registry
                .gauge(
                    &format!("{prefix}_{}_pred_ns", arm.name()),
                    "Predicted round latency (ns) at the last observed round size",
                )
                .set_u64(self.predict(arm, items).unwrap_or(0.0) as u64);
        }
    }
}

/// Percentage reduction of `ours` relative to `baseline`
/// (`100 · (1 − ours/baseline)`), clamped below at 0.
pub fn reduction_pct(baseline: u64, ours: u64) -> f64 {
    if baseline == 0 {
        return 0.0;
    }
    (100.0 * (1.0 - ours as f64 / baseline as f64)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = CostMeter::new();
        m.read(10);
        m.read(5);
        m.write(3);
        m.visit_node();
        m.visit_nodes(2);
        assert_eq!(m.snapshot(), (15, 3, 3));
        assert_eq!(m.total_traffic(), 18);
    }

    #[test]
    fn reset_zeroes() {
        let m = CostMeter::new();
        m.read(7);
        m.reset();
        assert_eq!(m.snapshot(), (0, 0, 0));
    }

    #[test]
    fn meter_is_shareable_across_threads() {
        let m = std::sync::Arc::new(CostMeter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.read(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.reads(), 4000);
    }

    #[test]
    fn absorb_accumulates_other_meters() {
        let total = CostMeter::new();
        for _ in 0..3 {
            let scenario = CostMeter::new();
            scenario.read(10);
            scenario.write(4);
            scenario.visit_nodes(2);
            total.absorb(&scenario);
        }
        assert_eq!(total.snapshot(), (30, 12, 6));
    }

    #[test]
    fn export_publishes_gauges() {
        let m = CostMeter::new();
        m.read(100);
        m.write(40);
        m.visit_nodes(7);
        let registry = ink_obs::MetricsRegistry::new();
        m.export(&registry, "ink_gnn_test");
        let text = registry.render_prometheus();
        assert!(text.contains("ink_gnn_test_reads 100"), "{text}");
        assert!(text.contains("ink_gnn_test_writes 40"), "{text}");
        assert!(text.contains("ink_gnn_test_nodes_visited 7"), "{text}");
        assert!(text.contains("ink_gnn_test_total_traffic 140"), "{text}");
        // Re-export after more traffic updates the same gauges in place.
        m.read(1);
        m.export(&registry, "ink_gnn_test");
        assert!(registry.render_prometheus().contains("ink_gnn_test_reads 101"));
    }

    #[test]
    fn dispatcher_short_circuits_tiny_rounds_to_sequential() {
        let mut m = CostModel::new();
        // Even with evidence that another arm is faster, tiny rounds never
        // pay fan-out.
        for _ in 0..8 {
            m.observe(DispatchArm::Parallel, 1000, 10);
            m.observe(DispatchArm::Sequential, 1000, 1_000_000);
            m.observe(DispatchArm::Batched, 1000, 1_000_000);
        }
        assert_eq!(m.choose(2, 64, 2), DispatchArm::Sequential);
        assert_eq!(m.choose(63, 64, 2), DispatchArm::Sequential);
        assert_eq!(m.choose(64, 64, 2), DispatchArm::Parallel, "at-threshold rounds exploit");
    }

    #[test]
    fn dispatcher_probes_every_arm_before_exploiting() {
        let mut m = CostModel::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..6 {
            let arm = m.choose(1000, 64, 2);
            seen.insert(arm);
            m.observe(arm, 1000, 1_000);
        }
        assert_eq!(seen.len(), 3, "all three arms must be probed: {seen:?}");
    }

    #[test]
    fn dispatcher_learns_the_cheaper_arm() {
        let mut m = CostModel::new();
        // Sequential: 100 ns/item; Batched: 40 ns/item; Parallel: high fixed
        // cost + 10 ns/item. At 100 items batched wins; at 100k parallel wins.
        for items in [100usize, 200, 400] {
            m.observe(DispatchArm::Sequential, items, (items * 100) as u64);
            m.observe(DispatchArm::Batched, items, (items * 40) as u64);
            m.observe(DispatchArm::Parallel, items, 500_000 + (items * 10) as u64);
        }
        assert_eq!(m.choose(100, 64, 2), DispatchArm::Batched);
        assert_eq!(m.choose(100_000, 64, 2), DispatchArm::Parallel);
    }

    #[test]
    fn fit_predicts_linear_cost() {
        let mut m = CostModel::new();
        m.observe(DispatchArm::Sequential, 10, 1_100); // 100 + 100·x
        m.observe(DispatchArm::Sequential, 20, 2_100);
        let p = m.predict(DispatchArm::Sequential, 40).unwrap();
        assert!((p - 4_100.0).abs() < 1.0, "expected ~4100, got {p}");
        // Degenerate design (one size observed) extrapolates proportionally.
        let mut d = CostModel::new();
        d.observe(DispatchArm::Batched, 10, 1_000);
        let p = d.predict(DispatchArm::Batched, 20).unwrap();
        assert!((p - 2_000.0).abs() < 1.0, "expected ~2000, got {p}");
        assert!(m.predict(DispatchArm::Parallel, 5).is_none(), "no evidence yet");
    }

    #[test]
    fn dispatcher_exports_gauges() {
        let mut m = CostModel::new();
        m.observe(DispatchArm::Sequential, 10, 1_000);
        let registry = ink_obs::MetricsRegistry::new();
        m.export(&registry, "ink_dispatch_test", 10);
        let text = registry.render_prometheus();
        assert!(text.contains("ink_dispatch_test_sequential_samples 1"), "{text}");
        assert!(text.contains("ink_dispatch_test_parallel_samples 0"), "{text}");
        assert!(text.contains("ink_dispatch_test_sequential_pred_ns 1000"), "{text}");
    }

    #[test]
    fn reduction_percentage() {
        assert_eq!(reduction_pct(100, 30), 70.0);
        assert_eq!(reduction_pct(100, 100), 0.0);
        assert_eq!(reduction_pct(100, 150), 0.0, "clamped at zero");
        assert_eq!(reduction_pct(0, 5), 0.0, "empty baseline");
    }
}
