//! Embedding-traffic cost model.
//!
//! The paper's Table V reports RMC — *reduction in memory cost* — between
//! InkStream and the k-hop baseline. Absolute DRAM traffic is not observable
//! from safe Rust, so every engine in this repo counts the quantity the paper
//! models: `f32` values of embedding data read and written (weights are
//! shared and cached, and are excluded on all sides). Counters are relaxed
//! atomics so rayon-parallel loops can share one meter.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared traffic counters.
#[derive(Debug, Default)]
pub struct CostMeter {
    reads: AtomicU64,
    writes: AtomicU64,
    nodes_visited: AtomicU64,
}

impl CostMeter {
    /// A zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` embedding values read.
    #[inline]
    pub fn read(&self, n: usize) {
        self.reads.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Records `n` embedding values written.
    #[inline]
    pub fn write(&self, n: usize) {
        self.writes.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Records one node visit (a node whose embedding the engine touched).
    #[inline]
    pub fn visit_node(&self) {
        self.nodes_visited.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` node visits.
    #[inline]
    pub fn visit_nodes(&self, n: usize) {
        self.nodes_visited.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Total `f32` values read.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Total `f32` values written.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Total values moved (reads + writes) — the RMC numerator/denominator.
    pub fn total_traffic(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Total node visits — the RNVV numerator/denominator.
    pub fn nodes_visited(&self) -> u64 {
        self.nodes_visited.load(Ordering::Relaxed)
    }

    /// Resets all counters.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.nodes_visited.store(0, Ordering::Relaxed);
    }

    /// Snapshot of `(reads, writes, nodes_visited)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (self.reads(), self.writes(), self.nodes_visited())
    }

    /// Adds another meter's current totals into this one — lets a harness
    /// keep one cumulative meter while measuring scenarios with fresh ones.
    pub fn absorb(&self, other: &CostMeter) {
        let (r, w, v) = other.snapshot();
        self.reads.fetch_add(r, Ordering::Relaxed);
        self.writes.fetch_add(w, Ordering::Relaxed);
        self.nodes_visited.fetch_add(v, Ordering::Relaxed);
    }

    /// Publishes the meter's current totals into `registry` as gauges named
    /// `<prefix>_reads`, `<prefix>_writes`, `<prefix>_nodes_visited` and
    /// `<prefix>_total_traffic`.
    ///
    /// Gauges rather than counters because meters are resettable — a scrape
    /// sees whatever epoch of traffic the owner is currently accounting.
    /// `prefix` must be a valid Prometheus metric-name stem (e.g.
    /// `ink_gnn_khop_pm`); the registry panics on invalid names.
    pub fn export(&self, registry: &ink_obs::MetricsRegistry, prefix: &str) {
        let set = |suffix: &str, help: &str, v: u64| {
            registry.gauge(&format!("{prefix}_{suffix}"), help).set_u64(v);
        };
        set("reads", "Embedding f32 values read", self.reads());
        set("writes", "Embedding f32 values written", self.writes());
        set("nodes_visited", "Nodes whose embedding the engine touched", self.nodes_visited());
        set("total_traffic", "Embedding f32 values moved (reads + writes)", self.total_traffic());
    }
}

/// Percentage reduction of `ours` relative to `baseline`
/// (`100 · (1 − ours/baseline)`), clamped below at 0.
pub fn reduction_pct(baseline: u64, ours: u64) -> f64 {
    if baseline == 0 {
        return 0.0;
    }
    (100.0 * (1.0 - ours as f64 / baseline as f64)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = CostMeter::new();
        m.read(10);
        m.read(5);
        m.write(3);
        m.visit_node();
        m.visit_nodes(2);
        assert_eq!(m.snapshot(), (15, 3, 3));
        assert_eq!(m.total_traffic(), 18);
    }

    #[test]
    fn reset_zeroes() {
        let m = CostMeter::new();
        m.read(7);
        m.reset();
        assert_eq!(m.snapshot(), (0, 0, 0));
    }

    #[test]
    fn meter_is_shareable_across_threads() {
        let m = std::sync::Arc::new(CostMeter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.read(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.reads(), 4000);
    }

    #[test]
    fn absorb_accumulates_other_meters() {
        let total = CostMeter::new();
        for _ in 0..3 {
            let scenario = CostMeter::new();
            scenario.read(10);
            scenario.write(4);
            scenario.visit_nodes(2);
            total.absorb(&scenario);
        }
        assert_eq!(total.snapshot(), (30, 12, 6));
    }

    #[test]
    fn export_publishes_gauges() {
        let m = CostMeter::new();
        m.read(100);
        m.write(40);
        m.visit_nodes(7);
        let registry = ink_obs::MetricsRegistry::new();
        m.export(&registry, "ink_gnn_test");
        let text = registry.render_prometheus();
        assert!(text.contains("ink_gnn_test_reads 100"), "{text}");
        assert!(text.contains("ink_gnn_test_writes 40"), "{text}");
        assert!(text.contains("ink_gnn_test_nodes_visited 7"), "{text}");
        assert!(text.contains("ink_gnn_test_total_traffic 140"), "{text}");
        // Re-export after more traffic updates the same gauges in place.
        m.read(1);
        m.export(&registry, "ink_gnn_test");
        assert!(registry.render_prometheus().contains("ink_gnn_test_reads 101"));
    }

    #[test]
    fn reduction_percentage() {
        assert_eq!(reduction_pct(100, 30), 70.0);
        assert_eq!(reduction_pct(100, 100), 0.0);
        assert_eq!(reduction_pct(100, 150), 0.0, "clamped at zero");
        assert_eq!(reduction_pct(0, 5), 0.0, "empty baseline");
    }
}
