//! GraphNorm (Cai et al.) and the paper's cached-statistics approximation.
//!
//! GraphNorm standardises each channel across the *whole vertex set* —
//! exactly the non-local dependency that breaks incremental updates: any
//! vertex change perturbs μ and σ² and would force every vertex to rescale.
//! The paper's fix (§II-E): freeze the statistics captured at training time
//! and reuse them between retraining phases, turning the layer into a purely
//! element-wise affine map. [`GraphNormMode`] carries both variants; the
//! incremental engine accepts only the cached form, while full inference can
//! run either (and capture fresh statistics for later caching).

use ink_tensor::Matrix;

/// Learnable GraphNorm parameters (scale γ, shift β).
#[derive(Clone, Debug, PartialEq)]
pub struct GraphNorm {
    /// Per-channel scale.
    pub gamma: Vec<f32>,
    /// Per-channel shift.
    pub beta: Vec<f32>,
    /// Numerical-stability epsilon added to the variance.
    pub eps: f32,
}

impl GraphNorm {
    /// γ = 1, β = 0 — the freshly-initialised layer.
    pub fn unit(dim: usize) -> Self {
        Self { gamma: vec![1.0; dim], beta: vec![0.0; dim], eps: 1e-5 }
    }

    /// Channel count.
    pub fn dim(&self) -> usize {
        self.gamma.len()
    }

    /// Normalises one row in place with the given statistics:
    /// `x ← γ·(x − μ)/√(σ² + ε) + β`.
    pub fn apply_with_stats(&self, x: &mut [f32], mean: &[f32], var: &[f32]) {
        debug_assert_eq!(x.len(), self.gamma.len());
        for i in 0..x.len() {
            x[i] = self.gamma[i] * (x[i] - mean[i]) / (var[i] + self.eps).sqrt() + self.beta[i];
        }
    }

    /// Computes the exact vertex-set statistics of `h` and normalises every
    /// row. Returns the `(mean, var)` it used, for caching.
    pub fn apply_exact(&self, h: &mut Matrix) -> (Vec<f32>, Vec<f32>) {
        let mean = ink_tensor::reduce::col_mean(h);
        let var = ink_tensor::reduce::col_var(h, &mean);
        for r in 0..h.rows() {
            let row = h.row_mut(r);
            self.apply_with_stats_row(row, &mean, &var);
        }
        (mean, var)
    }

    #[inline]
    fn apply_with_stats_row(&self, row: &mut [f32], mean: &[f32], var: &[f32]) {
        self.apply_with_stats(row, mean, var);
    }
}

/// How a model layer's GraphNorm evaluates its statistics.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphNormMode {
    /// Recompute μ/σ² across the vertex set on every inference (exact; only
    /// full-graph inference supports it).
    Exact(GraphNorm),
    /// Use frozen training-time statistics (the paper's approximation —
    /// element-wise, so incremental updates go through unchanged).
    Cached {
        /// The layer parameters.
        norm: GraphNorm,
        /// Frozen per-channel mean.
        mean: Vec<f32>,
        /// Frozen per-channel variance.
        var: Vec<f32>,
    },
}

impl GraphNormMode {
    /// The underlying layer parameters.
    pub fn norm(&self) -> &GraphNorm {
        match self {
            GraphNormMode::Exact(n) => n,
            GraphNormMode::Cached { norm, .. } => norm,
        }
    }

    /// True for the cached (incremental-update-compatible) form.
    pub fn is_cached(&self) -> bool {
        matches!(self, GraphNormMode::Cached { .. })
    }

    /// Applies the cached statistics to one row. Panics on the exact form —
    /// callers must check [`GraphNormMode::is_cached`] (the incremental
    /// engine surfaces this as a configuration error instead).
    pub fn apply_cached(&self, x: &mut [f32]) {
        match self {
            GraphNormMode::Cached { norm, mean, var } => norm.apply_with_stats(x, mean, var),
            GraphNormMode::Exact(_) => {
                panic!("exact GraphNorm cannot be applied per-row; cache statistics first")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_norm_standardises() {
        let norm = GraphNorm::unit(1);
        let mut h = Matrix::from_vec(4, 1, vec![1.0, 3.0, 5.0, 7.0]);
        let (mean, var) = norm.apply_exact(&mut h);
        assert_eq!(mean, vec![4.0]);
        assert_eq!(var, vec![5.0]);
        let sum: f32 = h.as_slice().iter().sum();
        assert!(sum.abs() < 1e-5, "standardised columns sum to ~0");
    }

    #[test]
    fn gamma_beta_rescale() {
        let norm = GraphNorm { gamma: vec![2.0], beta: vec![10.0], eps: 0.0 };
        let mut x = vec![5.0];
        norm.apply_with_stats(&mut x, &[3.0], &[4.0]);
        // 2·(5−3)/2 + 10 = 12
        assert_eq!(x, vec![12.0]);
    }

    #[test]
    fn cached_mode_matches_exact_when_stats_agree() {
        let norm = GraphNorm::unit(2);
        let mut h = Matrix::from_vec(3, 2, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0]);
        let mut h2 = h.clone();
        let (mean, var) = norm.apply_exact(&mut h);
        let cached = GraphNormMode::Cached { norm, mean, var };
        for r in 0..3 {
            cached.apply_cached(h2.row_mut(r));
        }
        assert!(h.allclose(&h2, 1e-6));
    }

    #[test]
    #[should_panic(expected = "exact GraphNorm")]
    fn exact_mode_rejects_per_row_use() {
        let mode = GraphNormMode::Exact(GraphNorm::unit(2));
        let mut x = vec![1.0, 2.0];
        mode.apply_cached(&mut x);
    }

    #[test]
    fn zero_variance_is_stable() {
        let norm = GraphNorm::unit(1);
        let mut h = Matrix::full(3, 1, 7.0);
        norm.apply_exact(&mut h);
        assert!(h.as_slice().iter().all(|x| x.is_finite()));
    }
}
