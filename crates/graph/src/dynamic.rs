//! Mutable adjacency structure for streaming graphs.
//!
//! Message passing needs two views of every vertex `u`:
//!
//! * `in_neighbors(u)` — the vertices whose messages `u` aggregates
//!   (`N(u)` in the paper's `α_u = A(m_v : v ∈ N(u))`);
//! * `out_neighbors(u)` — the vertices a change at `u` propagates to.
//!
//! Neighbor lists are kept sorted so membership tests and edge removal are
//! `O(log d)` and iteration is cache-friendly. Undirected graphs (all six
//! benchmark datasets) mirror every edge so the two views coincide.

use crate::{EdgeOp, VertexId};

/// A sorted adjacency list.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct SortedAdj(Vec<VertexId>);

impl SortedAdj {
    #[inline]
    fn contains(&self, v: VertexId) -> bool {
        self.0.binary_search(&v).is_ok()
    }

    /// Returns false if already present.
    #[inline]
    fn insert(&mut self, v: VertexId) -> bool {
        match self.0.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.0.insert(pos, v);
                true
            }
        }
    }

    /// Returns false if absent.
    #[inline]
    fn remove(&mut self, v: VertexId) -> bool {
        match self.0.binary_search(&v) {
            Ok(pos) => {
                self.0.remove(pos);
                true
            }
            Err(_) => false,
        }
    }
}

/// A mutable directed or undirected graph with sorted neighbor lists.
///
/// ```
/// use ink_graph::DynGraph;
///
/// let mut g = DynGraph::new(3, false);
/// g.insert_edge(0, 1);
/// g.insert_edge(1, 2);
/// assert_eq!(g.in_neighbors(1), &[0, 2]); // undirected edges are mirrored
/// g.remove_edge(2, 1);
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DynGraph {
    directed: bool,
    out: Vec<SortedAdj>,
    inn: Vec<SortedAdj>,
    num_edges: usize,
}

impl DynGraph {
    /// An edgeless graph with `n` vertices.
    pub fn new(n: usize, directed: bool) -> Self {
        Self {
            directed,
            out: vec![SortedAdj::default(); n],
            inn: vec![SortedAdj::default(); n],
            num_edges: 0,
        }
    }

    /// Convenience: undirected graph from an edge list (duplicates and
    /// self-loops are skipped).
    pub fn undirected_from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut g = Self::new(n, false);
        for &(u, v) in edges {
            g.insert_edge(u, v);
        }
        g
    }

    /// Convenience: directed graph from an edge list.
    pub fn directed_from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut g = Self::new(n, true);
        for &(u, v) in edges {
            g.insert_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.len()
    }

    /// Number of edges. Undirected edges count once.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether the graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Adds an isolated vertex, returning its id.
    pub fn add_vertex(&mut self) -> VertexId {
        self.out.push(SortedAdj::default());
        self.inn.push(SortedAdj::default());
        (self.out.len() - 1) as VertexId
    }

    /// True when the edge `u → v` exists (either direction implies the other
    /// for undirected graphs).
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out[u as usize].contains(v)
    }

    /// Inserts `u → v` (and the mirror for undirected graphs). Returns false
    /// for self-loops and duplicates.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        if !self.out[u as usize].insert(v) {
            return false;
        }
        self.inn[v as usize].insert(u);
        if !self.directed {
            self.out[v as usize].insert(u);
            self.inn[u as usize].insert(v);
        }
        self.num_edges += 1;
        true
    }

    /// Removes `u → v`. Returns false if absent.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if !self.out[u as usize].remove(v) {
            return false;
        }
        self.inn[v as usize].remove(u);
        if !self.directed {
            self.out[v as usize].remove(u);
            self.inn[u as usize].remove(v);
        }
        self.num_edges -= 1;
        true
    }

    /// Applies one edge change. Returns false when it was a no-op.
    pub fn apply(&mut self, change: crate::EdgeChange) -> bool {
        match change.op {
            EdgeOp::Insert => self.insert_edge(change.src, change.dst),
            EdgeOp::Remove => self.remove_edge(change.src, change.dst),
        }
    }

    /// Vertices whose messages `u` aggregates — `N(u)`.
    #[inline]
    pub fn in_neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.inn[u as usize].0
    }

    /// Vertices a change at `u` propagates to.
    #[inline]
    pub fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.out[u as usize].0
    }

    /// In-degree of `u` (`|N(u)|`, the mean-aggregation denominator).
    #[inline]
    pub fn in_degree(&self, u: VertexId) -> usize {
        self.inn[u as usize].0.len()
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: VertexId) -> usize {
        self.out[u as usize].0.len()
    }

    /// Removes all edges incident to `u` (vertex deletion keeps the id slot to
    /// avoid renumbering the embedding tables; the vertex simply becomes
    /// isolated). Returns the removed edges as `(src, dst)` pairs.
    pub fn isolate_vertex(&mut self, u: VertexId) -> Vec<(VertexId, VertexId)> {
        let mut removed = Vec::new();
        for v in self.out[u as usize].0.clone() {
            if self.remove_edge(u, v) {
                removed.push((u, v));
            }
        }
        for v in self.inn[u as usize].0.clone() {
            if self.remove_edge(v, u) {
                removed.push((v, u));
            }
        }
        removed
    }

    /// All edges as `(src, dst)` pairs; for undirected graphs each edge is
    /// reported once with `src < dst`.
    pub fn edges(&self) -> Vec<(VertexId, VertexId)> {
        let mut out = Vec::with_capacity(self.num_edges);
        for (u, adj) in self.out.iter().enumerate() {
            let u = u as VertexId;
            for &v in &adj.0 {
                if self.directed || u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeltaBatch, EdgeChange};

    #[test]
    fn insert_and_query_undirected() {
        let mut g = DynGraph::new(4, false);
        assert!(g.insert_edge(0, 1));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0), "undirected edges are mirrored");
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.in_neighbors(0), &[1]);
        assert_eq!(g.out_neighbors(1), &[0]);
    }

    #[test]
    fn insert_and_query_directed() {
        let mut g = DynGraph::new(3, true);
        assert!(g.insert_edge(0, 1));
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.in_neighbors(1), &[0]);
        assert_eq!(g.in_neighbors(0), &[] as &[VertexId]);
    }

    #[test]
    fn duplicate_and_self_loop_rejected() {
        let mut g = DynGraph::new(3, false);
        assert!(g.insert_edge(0, 1));
        assert!(!g.insert_edge(0, 1));
        assert!(!g.insert_edge(1, 0), "mirror duplicate rejected");
        assert!(!g.insert_edge(2, 2));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn remove_undoes_insert() {
        let mut g = DynGraph::new(3, false);
        g.insert_edge(0, 1);
        assert!(g.remove_edge(1, 0), "either direction removes an undirected edge");
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.num_edges(), 0);
        assert!(!g.remove_edge(0, 1), "double remove is a no-op");
    }

    #[test]
    fn neighbor_lists_stay_sorted() {
        let mut g = DynGraph::new(6, false);
        for v in [5, 2, 4, 1, 3] {
            g.insert_edge(0, v);
        }
        assert_eq!(g.in_neighbors(0), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn add_vertex_extends_graph() {
        let mut g = DynGraph::new(2, false);
        let v = g.add_vertex();
        assert_eq!(v, 2);
        assert_eq!(g.num_vertices(), 3);
        assert!(g.insert_edge(0, v));
    }

    #[test]
    fn isolate_vertex_removes_all_incident_edges() {
        let mut g = DynGraph::new(4, false);
        g.insert_edge(0, 1);
        g.insert_edge(0, 2);
        g.insert_edge(1, 2);
        let removed = g.isolate_vertex(0);
        assert_eq!(removed.len(), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.out_degree(0), 0);
        assert!(g.has_edge(1, 2));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn edges_reports_each_undirected_edge_once() {
        let mut g = DynGraph::new(3, false);
        g.insert_edge(2, 0);
        g.insert_edge(1, 2);
        let mut e = g.edges();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn apply_delta_roundtrip() {
        let mut g = DynGraph::new(4, false);
        g.insert_edge(0, 1);
        let batch = DeltaBatch::new(vec![
            EdgeChange::remove(0, 1),
            EdgeChange::insert(2, 3),
        ]);
        batch.apply(&mut g);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
        batch.revert(&mut g);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(2, 3));
    }
}
