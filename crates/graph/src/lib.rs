#![warn(missing_docs)]
//! # ink-graph
//!
//! Dynamic graph substrate for the InkStream reproduction.
//!
//! The paper operates on discrete-time dynamic graphs: a large, mostly-stable
//! graph plus a small batch of edge insertions/removals (ΔG) between two
//! timestamps. This crate provides:
//!
//! * [`DynGraph`] — a mutable adjacency structure with O(log d) edge
//!   insert/remove and both in- and out-neighbor views (message passing
//!   aggregates *in*-neighbors; effect propagation follows *out*-edges).
//! * [`Csr`] — an immutable compressed-sparse-row snapshot for the full-graph
//!   baselines, where gather bandwidth dominates.
//! * [`DeltaBatch`] — a batch of edge changes with apply/revert and random
//!   scenario generation (evenly split insert/remove, as in the paper).
//! * [`bfs`] — k-hop neighborhoods: the *theoretical affected area* (forward
//!   cone) and the input cone the k-hop baseline must fetch (reverse).
//! * [`generators`] — Erdős–Rényi, Barabási–Albert, R-MAT and
//!   planted-partition generators used to synthesise dataset stand-ins.
//! * [`datasets`] — scaled stand-ins for the paper's six benchmark graphs.
//! * [`temporal`] — T-GCN-style random edge creation/deletion timelines.
//! * [`hash`] — an FxHash-style fast hasher used for event grouping.

pub mod bfs;
pub mod components;
pub mod csr;
pub mod datasets;
pub mod delta;
pub mod dynamic;
pub mod generators;
pub mod hash;
pub mod io;
pub mod stats;
pub mod temporal;

pub use csr::Csr;
pub use delta::{DeltaBatch, EdgeChange, EdgeOp};
pub use dynamic::DynGraph;
pub use hash::{FxHashMap, FxHashSet};

/// Vertex identifier. Graphs in this repo stay under 2^32 vertices.
pub type VertexId = u32;
