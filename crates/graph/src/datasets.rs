//! Scaled stand-ins for the paper's six benchmark datasets.
//!
//! The real datasets (Table II of the paper) range up to 111M vertices and
//! 1.62B edges; this repo synthesises laptop-scale graphs that preserve the
//! *relationships* the evaluation depends on — the small/medium/large
//! ordering, the sparse-citation vs dense-social density split, and the
//! feature-length asymmetry (Cora's features dwarf its hidden state;
//! products' features are shorter than a 256-wide hidden state). See
//! DESIGN.md §2 for the substitution rationale.

use crate::generators::{barabasi_albert, rmat};
use crate::generators::rmat::RmatParams;
use crate::DynGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which generator family synthesises the stand-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Preferential attachment with the given per-vertex attachment count —
    /// citation-style graphs with heavy-tailed degrees.
    BarabasiAlbert(usize),
    /// R-MAT with the Graph500 parameter mix — dense, clustered
    /// social/review/co-purchase graphs. The payload is the edge count.
    Rmat(usize),
}

/// Size class reported in the paper's Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// PubMed, Cora.
    Small,
    /// Yelp, Reddit, ogbn-products.
    Medium,
    /// ogbn-papers100M.
    Large,
}

/// A benchmark dataset stand-in.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Full name (mirrors the paper's Table II).
    pub name: &'static str,
    /// Two-letter code used in the paper's tables (PM, CA, YP, RD, PD, PP).
    pub code: &'static str,
    /// Vertex count of the stand-in.
    pub vertices: usize,
    /// Generator family and edge budget.
    pub family: Family,
    /// Input feature length (scaled for Cora; see module docs).
    pub feat_len: usize,
    /// Size class.
    pub scale: Scale,
    /// Generator seed — fixed so every experiment sees the same graphs.
    pub seed: u64,
}

impl DatasetSpec {
    /// The six stand-ins, in the paper's Table II order.
    pub fn all() -> [DatasetSpec; 6] {
        [
            DatasetSpec {
                name: "pubmed-sim",
                code: "PM",
                vertices: 20_000,
                family: Family::BarabasiAlbert(4),
                feat_len: 500,
                scale: Scale::Small,
                seed: 0xD5_01,
            },
            DatasetSpec {
                name: "cora-sim",
                code: "CA",
                vertices: 19_793,
                family: Family::BarabasiAlbert(6),
                feat_len: 871,
                scale: Scale::Small,
                seed: 0xD5_02,
            },
            DatasetSpec {
                name: "yelp-sim",
                code: "YP",
                vertices: 40_000,
                family: Family::Rmat(3_200_000),
                feat_len: 300,
                scale: Scale::Medium,
                seed: 0xD5_03,
            },
            DatasetSpec {
                name: "reddit-sim",
                code: "RD",
                vertices: 30_000,
                family: Family::Rmat(1_800_000),
                feat_len: 602,
                scale: Scale::Medium,
                seed: 0xD5_04,
            },
            DatasetSpec {
                name: "products-sim",
                code: "PD",
                vertices: 100_000,
                family: Family::Rmat(5_000_000),
                feat_len: 100,
                scale: Scale::Medium,
                seed: 0xD5_05,
            },
            DatasetSpec {
                name: "papers100m-sim",
                code: "PP",
                vertices: 240_000,
                family: Family::BarabasiAlbert(15),
                feat_len: 172,
                scale: Scale::Large,
                seed: 0xD5_06,
            },
        ]
    }

    /// Looks a stand-in up by name or code (case-insensitive).
    pub fn by_name(name: &str) -> Option<DatasetSpec> {
        Self::all()
            .into_iter()
            .find(|d| d.name.eq_ignore_ascii_case(name) || d.code.eq_ignore_ascii_case(name))
    }

    /// A copy with vertex and edge counts multiplied by `factor` (≥ `0.01`).
    /// Used by the bench binaries' `--scale` flag to trade fidelity for time.
    pub fn scaled(mut self, factor: f64) -> DatasetSpec {
        assert!(factor >= 0.01, "scale factor too small");
        self.vertices = ((self.vertices as f64 * factor) as usize).max(64);
        self.family = match self.family {
            Family::BarabasiAlbert(m) => Family::BarabasiAlbert(m),
            Family::Rmat(e) => Family::Rmat(((e as f64 * factor) as usize).max(256)),
        };
        self
    }

    /// Synthesises the graph (deterministic per spec).
    pub fn build(&self) -> DynGraph {
        let mut rng = StdRng::seed_from_u64(self.seed);
        match self.family {
            Family::BarabasiAlbert(m) => barabasi_albert(&mut rng, self.vertices, m),
            Family::Rmat(edges) => rmat(&mut rng, self.vertices, edges, RmatParams::default()),
        }
    }

    /// Approximate edge budget of the spec (exact for R-MAT).
    pub fn edge_budget(&self) -> usize {
        match self.family {
            Family::BarabasiAlbert(m) => self.vertices.saturating_sub(m + 1) * m + m * (m + 1) / 2,
            Family::Rmat(e) => e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_datasets_in_table_order() {
        let all = DatasetSpec::all();
        let codes: Vec<_> = all.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["PM", "CA", "YP", "RD", "PD", "PP"]);
    }

    #[test]
    fn lookup_by_name_and_code() {
        assert_eq!(DatasetSpec::by_name("cora-sim").unwrap().code, "CA");
        assert_eq!(DatasetSpec::by_name("rd").unwrap().name, "reddit-sim");
        assert!(DatasetSpec::by_name("nope").is_none());
    }

    #[test]
    fn build_small_scaled_dataset() {
        let spec = DatasetSpec::by_name("PM").unwrap().scaled(0.02);
        let g = spec.build();
        assert_eq!(g.num_vertices(), 400);
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn build_is_deterministic() {
        let spec = DatasetSpec::by_name("YP").unwrap().scaled(0.01);
        assert_eq!(spec.build(), spec.build());
    }

    #[test]
    fn density_ordering_is_preserved() {
        // Yelp stand-in must stay much denser than the citation stand-ins.
        let yp = DatasetSpec::by_name("YP").unwrap();
        let ca = DatasetSpec::by_name("CA").unwrap();
        let yp_deg = yp.edge_budget() as f64 / yp.vertices as f64;
        let ca_deg = ca.edge_budget() as f64 / ca.vertices as f64;
        assert!(yp_deg > 10.0 * ca_deg);
    }

    #[test]
    fn edge_budget_matches_build_for_ba() {
        let spec = DatasetSpec::by_name("PM").unwrap().scaled(0.02);
        assert_eq!(spec.build().num_edges(), spec.edge_budget());
    }
}
