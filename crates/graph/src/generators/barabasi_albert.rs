//! Barabási–Albert preferential attachment.
//!
//! Citation graphs (PubMed, Cora, ogbn-papers100M) have heavy-tailed degree
//! distributions; preferential attachment reproduces that tail, which is what
//! makes the affected area of a random edge change vary so widely on these
//! datasets.

use crate::{DynGraph, VertexId};
use rand::rngs::StdRng;
use rand::RngExt;

/// Undirected BA graph: starts from a small clique and attaches each new
/// vertex to `m` existing vertices chosen proportionally to degree.
pub fn barabasi_albert(rng: &mut StdRng, n: usize, m: usize) -> DynGraph {
    assert!(m >= 1, "attachment count must be positive");
    assert!(n > m, "need more vertices ({n}) than the attachment count ({m})");
    let mut g = DynGraph::new(n, false);
    // `targets` holds one entry per edge endpoint, so uniform sampling from it
    // is degree-proportional sampling.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m);

    // Seed clique over the first m+1 vertices.
    for u in 0..=(m as VertexId) {
        for v in 0..u {
            if g.insert_edge(u, v) {
                endpoints.push(u);
                endpoints.push(v);
            }
        }
    }

    for u in (m + 1)..n {
        let u = u as VertexId;
        let mut attached = 0;
        while attached < m {
            let v = endpoints[rng.random_range(0..endpoints.len())];
            if g.insert_edge(u, v) {
                attached += 1;
            }
        }
        // Record u's new edges only after all m are chosen, so a new vertex
        // does not attach to itself through its own fresh endpoints.
        for &v in g.in_neighbors(u) {
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn edge_count_formula() {
        let (n, m) = (200, 3);
        let g = barabasi_albert(&mut StdRng::seed_from_u64(1), n, m);
        // clique edges + m per subsequent vertex
        assert_eq!(g.num_edges(), m * (m + 1) / 2 + (n - m - 1) * m);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = barabasi_albert(&mut StdRng::seed_from_u64(2), 100, 2);
        let b = barabasi_albert(&mut StdRng::seed_from_u64(2), 100, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn graph_is_connected() {
        let g = barabasi_albert(&mut StdRng::seed_from_u64(3), 150, 2);
        let reach = crate::bfs::k_hop_out(&g, &[0], 150);
        assert_eq!(reach.len(), 150);
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = barabasi_albert(&mut StdRng::seed_from_u64(4), 2000, 2);
        let max_deg = (0..2000).map(|u| g.in_degree(u)).max().unwrap();
        let avg = 2.0 * g.num_edges() as f64 / 2000.0;
        assert!(
            max_deg as f64 > 8.0 * avg,
            "hub degree {max_deg} should dwarf the average {avg:.1}"
        );
    }

    #[test]
    fn min_degree_is_attachment_count() {
        let g = barabasi_albert(&mut StdRng::seed_from_u64(5), 300, 4);
        assert!((0..300).all(|u| g.in_degree(u) >= 4));
    }
}
