//! Watts–Strogatz small-world generator.
//!
//! Small-world rewiring produces graphs with high clustering *and* short
//! paths — the regime where a k-hop affected area saturates fastest. Used by
//! the stress suite to exercise the engine on a third topology family
//! (heavy-tailed BA, clustered R-MAT, small-world WS).

use crate::{DynGraph, VertexId};
use rand::rngs::StdRng;
use rand::RngExt;

/// Undirected Watts–Strogatz graph: a ring lattice where each vertex links
/// to its `k` nearest neighbors (`k` even), with each edge rewired to a
/// random endpoint with probability `beta`.
pub fn watts_strogatz(rng: &mut StdRng, n: usize, k: usize, beta: f64) -> DynGraph {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and ≥ 2");
    assert!(n > k, "need more vertices than lattice degree");
    assert!((0.0..=1.0).contains(&beta));
    let mut g = DynGraph::new(n, false);
    // Ring lattice.
    for u in 0..n {
        for j in 1..=(k / 2) {
            g.insert_edge(u as VertexId, ((u + j) % n) as VertexId);
        }
    }
    // Rewire.
    let n32 = n as VertexId;
    for u in 0..n {
        for j in 1..=(k / 2) {
            if rng.random_range(0.0..1.0) >= beta {
                continue;
            }
            let v = ((u + j) % n) as VertexId;
            let u = u as VertexId;
            // Pick a new endpoint that keeps the graph simple.
            let mut attempts = 0;
            loop {
                let w = rng.random_range(0..n32);
                attempts += 1;
                if attempts > 100 {
                    break; // dense corner case: keep the lattice edge
                }
                if w == u || g.has_edge(u, w) {
                    continue;
                }
                g.remove_edge(u, v);
                g.insert_edge(u, w);
                break;
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zero_beta_is_ring_lattice() {
        let g = watts_strogatz(&mut StdRng::seed_from_u64(1), 20, 4, 0.0);
        assert_eq!(g.num_edges(), 20 * 2);
        for u in 0..20u32 {
            assert_eq!(g.in_degree(u), 4, "lattice degree");
            assert!(g.has_edge(u, (u + 1) % 20));
            assert!(g.has_edge(u, (u + 2) % 20));
        }
    }

    #[test]
    fn edge_count_is_preserved_by_rewiring() {
        let g = watts_strogatz(&mut StdRng::seed_from_u64(2), 100, 6, 0.3);
        assert_eq!(g.num_edges(), 100 * 3);
    }

    #[test]
    fn rewiring_shortens_paths() {
        // With β = 0 the 3-hop ball around a vertex is exactly 1 + 3·k nodes;
        // rewiring must reach further.
        let lattice = watts_strogatz(&mut StdRng::seed_from_u64(3), 200, 4, 0.0);
        let small_world = watts_strogatz(&mut StdRng::seed_from_u64(3), 200, 4, 0.5);
        let ball_l = crate::bfs::k_hop_out(&lattice, &[0], 3).len();
        let ball_s = crate::bfs::k_hop_out(&small_world, &[0], 3).len();
        assert_eq!(ball_l, 13);
        assert!(ball_s > ball_l, "small world ball {ball_s} vs lattice {ball_l}");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = watts_strogatz(&mut StdRng::seed_from_u64(4), 50, 4, 0.2);
        let b = watts_strogatz(&mut StdRng::seed_from_u64(4), 50, 4, 0.2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn odd_k_rejected() {
        let _ = watts_strogatz(&mut StdRng::seed_from_u64(5), 10, 3, 0.1);
    }
}
