//! Synthetic graph generators.
//!
//! The paper's datasets are proprietary-scale downloads; the stand-ins are
//! synthesised with the generator family each dataset resembles (DESIGN.md §2):
//! citation graphs → preferential attachment ([`barabasi_albert()`]), dense
//! social/review graphs → [`rmat()`], control experiments → [`erdos_renyi()`],
//! and the node-classification task for the GraphNorm study →
//! [`planted`] partitions.

pub mod barabasi_albert;
pub mod erdos_renyi;
pub mod planted;
pub mod rmat;
pub mod watts_strogatz;

pub use barabasi_albert::barabasi_albert;
pub use erdos_renyi::erdos_renyi;
pub use planted::{planted_partition, PlantedGraph};
pub use rmat::rmat;
pub use watts_strogatz::watts_strogatz;
