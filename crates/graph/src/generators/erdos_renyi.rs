//! G(n, m) Erdős–Rényi generator.

use crate::{DynGraph, VertexId};
use rand::rngs::StdRng;
use rand::RngExt;

/// Undirected G(n, m): exactly `m` distinct edges sampled uniformly from all
/// vertex pairs. Panics if `m` exceeds the number of possible edges.
pub fn erdos_renyi(rng: &mut StdRng, n: usize, m: usize) -> DynGraph {
    let max_edges = n * n.saturating_sub(1) / 2;
    assert!(m <= max_edges, "G({n}, {m}) requested but only {max_edges} pairs exist");
    let mut g = DynGraph::new(n, false);
    let n32 = n as VertexId;
    while g.num_edges() < m {
        let u = rng.random_range(0..n32);
        let v = rng.random_range(0..n32);
        g.insert_edge(u, v);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exact_edge_count() {
        let g = erdos_renyi(&mut StdRng::seed_from_u64(1), 100, 250);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 250);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = erdos_renyi(&mut StdRng::seed_from_u64(2), 50, 100);
        let b = erdos_renyi(&mut StdRng::seed_from_u64(2), 50, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn no_self_loops() {
        let g = erdos_renyi(&mut StdRng::seed_from_u64(3), 30, 60);
        for (u, v) in g.edges() {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn complete_graph_possible() {
        let g = erdos_renyi(&mut StdRng::seed_from_u64(4), 6, 15);
        assert_eq!(g.num_edges(), 15);
    }

    #[test]
    #[should_panic(expected = "pairs exist")]
    fn over_dense_request_panics() {
        let _ = erdos_renyi(&mut StdRng::seed_from_u64(5), 4, 7);
    }
}
