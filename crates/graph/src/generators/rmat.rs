//! R-MAT (recursive matrix) generator.
//!
//! Dense community-structured graphs (Yelp, Reddit, ogbn-products) are
//! synthesised with R-MAT, whose recursive quadrant probabilities produce the
//! skew and clustering that make those datasets' k-hop balls explode — the
//! effect behind the paper's Yelp/GIN discussion (a 5-hop ball covering >70%
//! of the graph).

use crate::{DynGraph, VertexId};
use rand::rngs::StdRng;
use rand::RngExt;

/// Quadrant probabilities; the classic Graph500 mix is `(0.57, 0.19, 0.19)`
/// with `d = 1 − a − b − c`.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        Self { a: 0.57, b: 0.19, c: 0.19 }
    }
}

/// Undirected R-MAT graph with `n` rounded up to a power of two internally;
/// vertices are emitted modulo `n` so the returned graph has exactly `n`
/// vertices and `m` distinct edges.
pub fn rmat(rng: &mut StdRng, n: usize, m: usize, params: RmatParams) -> DynGraph {
    assert!(n >= 2);
    let scale = (n as f64).log2().ceil() as u32;
    let mut g = DynGraph::new(n, false);
    let mut stall = 0usize;
    while g.num_edges() < m {
        let (mut u, mut v) = (0u64, 0u64);
        for _ in 0..scale {
            let r: f64 = rng.random_range(0.0..1.0);
            let (du, dv) = if r < params.a {
                (0, 0)
            } else if r < params.a + params.b {
                (0, 1)
            } else if r < params.a + params.b + params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        let u = (u % n as u64) as VertexId;
        let v = (v % n as u64) as VertexId;
        if g.insert_edge(u, v) {
            stall = 0;
        } else {
            stall += 1;
            assert!(stall < 10_000_000, "R-MAT stalled: {m} edges infeasible for n={n}");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exact_edge_count() {
        let g = rmat(&mut StdRng::seed_from_u64(1), 1000, 5000, RmatParams::default());
        assert_eq!(g.num_vertices(), 1000);
        assert_eq!(g.num_edges(), 5000);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = rmat(&mut StdRng::seed_from_u64(2), 256, 1000, RmatParams::default());
        let b = rmat(&mut StdRng::seed_from_u64(2), 256, 1000, RmatParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn skewed_params_produce_hubs() {
        let g = rmat(&mut StdRng::seed_from_u64(3), 4096, 20_000, RmatParams::default());
        let max_deg = (0..4096).map(|u| g.in_degree(u)).max().unwrap();
        let avg = 2.0 * 20_000.0 / 4096.0;
        assert!(max_deg as f64 > 5.0 * avg, "max {max_deg} vs avg {avg:.1}");
    }

    #[test]
    fn non_power_of_two_vertex_count() {
        let g = rmat(&mut StdRng::seed_from_u64(4), 300, 900, RmatParams::default());
        assert_eq!(g.num_vertices(), 300);
        for (u, v) in g.edges() {
            assert!(u < 300 && v < 300);
        }
    }
}
