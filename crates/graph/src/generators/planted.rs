//! Planted-partition (stochastic block model) generator.
//!
//! The GraphNorm accuracy study (Fig. 9) needs a node-classification task
//! where a GNN genuinely helps: `classes` communities with dense intra-class
//! and sparse inter-class connectivity, plus ground-truth labels.

use crate::{DynGraph, VertexId};
use rand::rngs::StdRng;
use rand::RngExt;

/// A planted-partition graph with its ground-truth community labels.
#[derive(Clone, Debug)]
pub struct PlantedGraph {
    /// The generated undirected graph.
    pub graph: DynGraph,
    /// Ground-truth community of each vertex.
    pub labels: Vec<usize>,
}

/// Generates `n` vertices split evenly into `classes` communities; each vertex
/// receives on average `deg_in` intra-community and `deg_out` inter-community
/// edges.
pub fn planted_partition(
    rng: &mut StdRng,
    n: usize,
    classes: usize,
    deg_in: f64,
    deg_out: f64,
) -> PlantedGraph {
    assert!(classes >= 2 && n >= 2 * classes);
    let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
    let mut g = DynGraph::new(n, false);
    let m_in = (n as f64 * deg_in / 2.0) as usize;
    let m_out = (n as f64 * deg_out / 2.0) as usize;
    let n32 = n as VertexId;

    let mut placed_in = 0;
    while placed_in < m_in {
        let u = rng.random_range(0..n32);
        let v = rng.random_range(0..n32);
        if labels[u as usize] == labels[v as usize] && g.insert_edge(u, v) {
            placed_in += 1;
        }
    }
    let mut placed_out = 0;
    while placed_out < m_out {
        let u = rng.random_range(0..n32);
        let v = rng.random_range(0..n32);
        if labels[u as usize] != labels[v as usize] && g.insert_edge(u, v) {
            placed_out += 1;
        }
    }
    PlantedGraph { graph: g, labels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn labels_are_balanced() {
        let p = planted_partition(&mut StdRng::seed_from_u64(1), 90, 3, 6.0, 1.0);
        for c in 0..3 {
            assert_eq!(p.labels.iter().filter(|&&l| l == c).count(), 30);
        }
    }

    #[test]
    fn edge_budget_matches() {
        let p = planted_partition(&mut StdRng::seed_from_u64(2), 200, 2, 4.0, 1.0);
        assert_eq!(p.graph.num_edges(), 400 + 100);
    }

    #[test]
    fn intra_edges_dominate() {
        let p = planted_partition(&mut StdRng::seed_from_u64(3), 300, 3, 8.0, 1.0);
        let (mut intra, mut inter) = (0, 0);
        for (u, v) in p.graph.edges() {
            if p.labels[u as usize] == p.labels[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 5 * inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = planted_partition(&mut StdRng::seed_from_u64(4), 60, 2, 5.0, 1.0);
        let b = planted_partition(&mut StdRng::seed_from_u64(4), 60, 2, 5.0, 1.0);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.labels, b.labels);
    }
}
