//! k-hop neighborhoods.
//!
//! * The **theoretical affected area** of a k-layer GNN after a batch of edge
//!   changes: the ball of radius `k−1` (following out-edges) around the
//!   destination endpoints of the changed edges — a node affected in layer 1
//!   can influence nodes at most `k−1` hops away through the remaining layers.
//! * The **input cone** the k-hop baseline must fetch: recomputing layer `l`
//!   embeddings of a set needs layer `l−1` embeddings of the set plus its
//!   in-neighbors, recursively down to raw features — up to `2k` hops total.

use crate::{DeltaBatch, DynGraph, VertexId};

/// Ball of radius `hops` around `seeds`, following out-edges. Returns a
/// sorted, deduplicated vertex list that always includes the seeds.
pub fn k_hop_out(g: &DynGraph, seeds: &[VertexId], hops: usize) -> Vec<VertexId> {
    k_hop(g, seeds, hops, false)
}

/// Ball of radius `hops` around `seeds`, following in-edges (the fetch cone).
pub fn k_hop_in(g: &DynGraph, seeds: &[VertexId], hops: usize) -> Vec<VertexId> {
    k_hop(g, seeds, hops, true)
}

fn k_hop(g: &DynGraph, seeds: &[VertexId], hops: usize, reverse: bool) -> Vec<VertexId> {
    let mut visited = vec![false; g.num_vertices()];
    let mut result: Vec<VertexId> = Vec::new();
    let mut frontier: Vec<VertexId> = Vec::new();
    for &s in seeds {
        if !visited[s as usize] {
            visited[s as usize] = true;
            frontier.push(s);
            result.push(s);
        }
    }
    for _ in 0..hops {
        if frontier.is_empty() {
            break;
        }
        let mut next = Vec::new();
        for &u in &frontier {
            let nbrs = if reverse { g.in_neighbors(u) } else { g.out_neighbors(u) };
            for &v in nbrs {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    next.push(v);
                    result.push(v);
                }
            }
        }
        frontier = next;
    }
    result.sort_unstable();
    result
}

/// The seeds of effect propagation for a delta: destination endpoints of the
/// directed changes. Undirected graphs mirror every change, so both endpoints
/// seed.
pub fn delta_seeds(g: &DynGraph, delta: &DeltaBatch) -> Vec<VertexId> {
    let mut seeds: Vec<VertexId> = Vec::with_capacity(delta.len() * 2);
    for c in delta.changes() {
        seeds.push(c.dst);
        if !g.is_directed() {
            seeds.push(c.src);
        }
    }
    seeds.sort_unstable();
    seeds.dedup();
    seeds
}

/// Theoretical affected area of a `layers`-layer GNN for `delta`: the ball of
/// radius `layers − 1` around the delta seeds, measured on the post-change
/// graph (the paper computes it on the newest snapshot).
pub fn theoretical_affected_area(
    g: &DynGraph,
    delta: &DeltaBatch,
    layers: usize,
) -> Vec<VertexId> {
    assert!(layers >= 1);
    k_hop_out(g, &delta_seeds(g, delta), layers - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeChange;

    /// A directed path 0 → 1 → 2 → 3 → 4.
    fn path(n: usize) -> DynGraph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i as VertexId, i as VertexId + 1)).collect();
        DynGraph::directed_from_edges(n, &edges)
    }

    #[test]
    fn zero_hops_returns_seeds() {
        let g = path(5);
        assert_eq!(k_hop_out(&g, &[2], 0), vec![2]);
    }

    #[test]
    fn forward_ball_follows_out_edges() {
        let g = path(5);
        assert_eq!(k_hop_out(&g, &[1], 2), vec![1, 2, 3]);
        assert_eq!(k_hop_out(&g, &[1], 10), vec![1, 2, 3, 4], "ball saturates");
    }

    #[test]
    fn reverse_ball_follows_in_edges() {
        let g = path(5);
        assert_eq!(k_hop_in(&g, &[3], 2), vec![1, 2, 3]);
    }

    #[test]
    fn duplicate_seeds_are_deduped() {
        let g = path(4);
        assert_eq!(k_hop_out(&g, &[0, 0, 1], 1), vec![0, 1, 2]);
    }

    #[test]
    fn undirected_ball_spreads_both_ways() {
        let edges: Vec<_> = (0..4).map(|i| (i as VertexId, i as VertexId + 1)).collect();
        let g = DynGraph::undirected_from_edges(5, &edges);
        assert_eq!(k_hop_out(&g, &[2], 1), vec![1, 2, 3]);
    }

    #[test]
    fn delta_seeds_directed_uses_destinations() {
        let g = path(5);
        let d = DeltaBatch::new(vec![EdgeChange::insert(0, 3), EdgeChange::remove(1, 2)]);
        assert_eq!(delta_seeds(&g, &d), vec![2, 3]);
    }

    #[test]
    fn delta_seeds_undirected_uses_both_endpoints() {
        let g = DynGraph::undirected_from_edges(4, &[(0, 1)]);
        let d = DeltaBatch::new(vec![EdgeChange::insert(2, 3)]);
        assert_eq!(delta_seeds(&g, &d), vec![2, 3]);
    }

    #[test]
    fn affected_area_grows_with_layers() {
        let g = path(6);
        let d = DeltaBatch::new(vec![EdgeChange::insert(0, 1)]);
        // layer 1: only the destination; each extra layer adds one hop.
        assert_eq!(theoretical_affected_area(&g, &d, 1), vec![1]);
        assert_eq!(theoretical_affected_area(&g, &d, 2), vec![1, 2]);
        assert_eq!(theoretical_affected_area(&g, &d, 3), vec![1, 2, 3]);
    }
}
