//! FxHash-style fast hashing.
//!
//! Event grouping hashes millions of small integer keys (vertex ids); SipHash
//! is the bottleneck there. This is the rustc/Firefox "Fx" multiply-rotate
//! hash, implemented locally (~30 lines) instead of pulling in `rustc-hash`
//! — see DESIGN.md §5.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher: one multiply-rotate per word of input.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the tail-padded input.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with the Fx hasher.
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u32(12345);
        b.write_u32(12345);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_keys_hash_differently() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u32(1);
        b.write_u32(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"123456789"); // 8-byte chunk + 1 tail byte
        b.write(b"123456780");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(7, "seven again");
        assert_eq!(m.len(), 1);
        assert_eq!(m[&7], "seven again");
    }

    #[test]
    fn set_dedups() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }
}
