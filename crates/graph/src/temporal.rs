//! T-GCN-style temporal edge timelines.
//!
//! The paper simulates graph dynamics by assigning random edge creation and
//! deletion times (following T-GCN) and diffing consecutive snapshots. This
//! module reproduces that: every edge of a base graph gets a creation time in
//! `[0, 1)` and, with probability `p_delete`, a deletion time after it.

use crate::{DeltaBatch, DynGraph, EdgeChange, VertexId};
use rand::rngs::StdRng;
use rand::RngExt;

/// One edge with its lifetime.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TemporalEdge {
    /// Source endpoint.
    pub src: VertexId,
    /// Destination endpoint.
    pub dst: VertexId,
    /// Creation time in `[0, 1)`.
    pub created: f64,
    /// Deletion time in `(created, 1]`, or `f64::INFINITY` if never deleted.
    pub deleted: f64,
}

impl TemporalEdge {
    /// True when the edge exists at time `t`.
    #[inline]
    pub fn alive_at(&self, t: f64) -> bool {
        self.created <= t && t < self.deleted
    }
}

/// A dynamic graph represented as an edge set with lifetimes.
#[derive(Clone, Debug)]
pub struct TemporalGraph {
    n: usize,
    directed: bool,
    edges: Vec<TemporalEdge>,
}

impl TemporalGraph {
    /// Assigns random creation times to every edge of `base`, and a deletion
    /// time to a `p_delete` fraction of them.
    pub fn from_graph(base: &DynGraph, rng: &mut StdRng, p_delete: f64) -> Self {
        let edges = base
            .edges()
            .into_iter()
            .map(|(src, dst)| {
                let created = rng.random_range(0.0..1.0);
                let deleted = if rng.random_range(0.0..1.0) < p_delete {
                    rng.random_range(created..1.0f64) + f64::MIN_POSITIVE
                } else {
                    f64::INFINITY
                };
                TemporalEdge { src, dst, created, deleted }
            })
            .collect();
        Self { n: base.num_vertices(), directed: base.is_directed(), edges }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// All temporal edges.
    pub fn edges(&self) -> &[TemporalEdge] {
        &self.edges
    }

    /// The graph as it exists at time `t`.
    pub fn snapshot_at(&self, t: f64) -> DynGraph {
        let mut g = DynGraph::new(self.n, self.directed);
        for e in &self.edges {
            if e.alive_at(t) {
                g.insert_edge(e.src, e.dst);
            }
        }
        g
    }

    /// The ΔG between the snapshots at `t0` and `t1 > t0`: insertions for
    /// edges that came alive, removals for edges that died.
    pub fn delta_between(&self, t0: f64, t1: f64) -> DeltaBatch {
        assert!(t0 <= t1);
        let mut changes = Vec::new();
        for e in &self.edges {
            match (e.alive_at(t0), e.alive_at(t1)) {
                (false, true) => changes.push(EdgeChange::insert(e.src, e.dst)),
                (true, false) => changes.push(EdgeChange::remove(e.src, e.dst)),
                _ => {}
            }
        }
        DeltaBatch::new(changes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn base() -> DynGraph {
        DynGraph::undirected_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
    }

    #[test]
    fn snapshot_at_one_contains_only_undeleted() {
        let tg = TemporalGraph::from_graph(&base(), &mut StdRng::seed_from_u64(1), 0.0);
        // p_delete = 0 → at t→1 every edge is alive.
        assert_eq!(tg.snapshot_at(0.999999).num_edges(), 6);
    }

    #[test]
    fn snapshot_grows_monotonically_without_deletions() {
        let tg = TemporalGraph::from_graph(&base(), &mut StdRng::seed_from_u64(2), 0.0);
        let e25 = tg.snapshot_at(0.25).num_edges();
        let e75 = tg.snapshot_at(0.75).num_edges();
        assert!(e25 <= e75);
    }

    #[test]
    fn delta_is_consistent_with_snapshots() {
        let tg = TemporalGraph::from_graph(&base(), &mut StdRng::seed_from_u64(3), 0.5);
        let (t0, t1) = (0.3, 0.8);
        let mut g0 = tg.snapshot_at(t0);
        let g1 = tg.snapshot_at(t1);
        tg.delta_between(t0, t1).apply(&mut g0);
        assert_eq!(g0, g1, "snapshot(t0) + ΔG must equal snapshot(t1)");
    }

    #[test]
    fn deletion_happens_after_creation() {
        let tg = TemporalGraph::from_graph(&base(), &mut StdRng::seed_from_u64(4), 1.0);
        for e in tg.edges() {
            assert!(e.deleted > e.created);
        }
    }

    #[test]
    fn alive_interval_is_half_open() {
        let e = TemporalEdge { src: 0, dst: 1, created: 0.2, deleted: 0.6 };
        assert!(!e.alive_at(0.1));
        assert!(e.alive_at(0.2));
        assert!(e.alive_at(0.5));
        assert!(!e.alive_at(0.6));
    }
}
