//! Edge-change batches (ΔG).
//!
//! Between two timestamps the paper modifies ΔG edges, evenly split between
//! insertion and removal, at random locations. `DeltaBatch::random_scenario`
//! reproduces that workload generator.

use crate::{DynGraph, VertexId};
use rand::rngs::StdRng;
use rand::RngExt;

/// Insert or remove.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeOp {
    /// The edge appears in the new timestamp.
    Insert,
    /// The edge disappears in the new timestamp.
    Remove,
}

/// One changed edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeChange {
    /// Source endpoint.
    pub src: VertexId,
    /// Destination endpoint.
    pub dst: VertexId,
    /// Insert or remove.
    pub op: EdgeOp,
}

impl EdgeChange {
    /// An insertion.
    pub fn insert(src: VertexId, dst: VertexId) -> Self {
        Self { src, dst, op: EdgeOp::Insert }
    }

    /// A removal.
    pub fn remove(src: VertexId, dst: VertexId) -> Self {
        Self { src, dst, op: EdgeOp::Remove }
    }

    /// The change that undoes this one.
    pub fn inverse(self) -> Self {
        Self {
            op: match self.op {
                EdgeOp::Insert => EdgeOp::Remove,
                EdgeOp::Remove => EdgeOp::Insert,
            },
            ..self
        }
    }
}

/// A batch of edge changes applied atomically between two timestamps.
///
/// ```
/// use ink_graph::{DeltaBatch, DynGraph, EdgeChange};
///
/// let mut g = DynGraph::undirected_from_edges(3, &[(0, 1)]);
/// let delta = DeltaBatch::new(vec![EdgeChange::remove(0, 1), EdgeChange::insert(1, 2)]);
/// delta.apply(&mut g);
/// assert!(g.has_edge(1, 2) && !g.has_edge(0, 1));
/// delta.inverse().apply(&mut g); // undoes the batch
/// assert!(g.has_edge(0, 1) && !g.has_edge(1, 2));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    changes: Vec<EdgeChange>,
}

impl DeltaBatch {
    /// Wraps an explicit change list.
    pub fn new(changes: Vec<EdgeChange>) -> Self {
        Self { changes }
    }

    /// The changes, in application order.
    pub fn changes(&self) -> &[EdgeChange] {
        &self.changes
    }

    /// Number of changed edges (ΔG in the paper).
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Applies every change to `g` in order.
    pub fn apply(&self, g: &mut DynGraph) {
        for &c in &self.changes {
            g.apply(c);
        }
    }

    /// Reverts every change (inverse ops in reverse order).
    pub fn revert(&self, g: &mut DynGraph) {
        for &c in self.changes.iter().rev() {
            g.apply(c.inverse());
        }
    }

    /// The batch that undoes this one (inverse ops in reverse order) — used
    /// by the bench harness to restore an engine to the base snapshot
    /// between scenarios without a fresh bootstrap.
    pub fn inverse(&self) -> DeltaBatch {
        DeltaBatch::new(self.changes.iter().rev().map(|c| c.inverse()).collect())
    }

    /// The endpoints touched by the batch (deduplicated, sorted).
    pub fn touched_vertices(&self) -> Vec<VertexId> {
        let mut v: Vec<VertexId> =
            self.changes.iter().flat_map(|c| [c.src, c.dst]).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Collapses the batch to its net effect: each edge keeps only its
    /// *last* change. Repeated inserts deduplicate, and an insert followed
    /// by a remove of the same edge cancels down to the remove (and vice
    /// versa) — under set semantics (`DynGraph::apply` treats redundant
    /// changes as no-ops) the edge's final presence is decided solely by the
    /// last op, so applying the coalesced batch yields the same adjacency as
    /// replaying the raw sequence, whatever the starting graph.
    ///
    /// `directed` controls edge identity: in an undirected graph `(u, v)`
    /// and `(v, u)` are the same edge and coalesce together. The surviving
    /// change keeps the position of the edge's *first* occurrence, so the
    /// result is deterministic; since every edge appears at most once
    /// afterwards, relative order no longer affects the outcome.
    ///
    /// ```
    /// use ink_graph::{DeltaBatch, EdgeChange};
    ///
    /// let raw = DeltaBatch::new(vec![
    ///     EdgeChange::insert(0, 1),
    ///     EdgeChange::insert(1, 0), // duplicate of (0,1) when undirected
    ///     EdgeChange::insert(2, 3),
    ///     EdgeChange::remove(0, 1), // cancels the inserts above
    /// ]);
    /// let net = raw.coalesce(false);
    /// assert_eq!(
    ///     net.changes(),
    ///     &[EdgeChange::remove(0, 1), EdgeChange::insert(2, 3)]
    /// );
    /// ```
    pub fn coalesce(&self, directed: bool) -> DeltaBatch {
        let mut slot: crate::FxHashMap<(VertexId, VertexId), usize> = crate::FxHashMap::default();
        let mut changes: Vec<EdgeChange> = Vec::new();
        for &c in &self.changes {
            let key = if directed || c.src < c.dst { (c.src, c.dst) } else { (c.dst, c.src) };
            match slot.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => changes[*e.get()] = c,
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(changes.len());
                    changes.push(c);
                }
            }
        }
        DeltaBatch { changes }
    }

    /// A random graph-changing scenario against the *current* state of `g`:
    /// `n_changes` edges, evenly split between removals of existing edges and
    /// insertions of currently-absent edges (the paper's default mix). The
    /// returned batch is consistent — no change in the batch collides with
    /// another (each edge appears at most once).
    pub fn random_scenario(g: &DynGraph, rng: &mut StdRng, n_changes: usize) -> Self {
        let n_remove = n_changes / 2;
        let n_insert = n_changes - n_remove;
        let mut changes = Vec::with_capacity(n_changes);
        let mut used: crate::FxHashSet<(VertexId, VertexId)> = crate::FxHashSet::default();
        let canon = |u: VertexId, v: VertexId, directed: bool| {
            if directed || u < v {
                (u, v)
            } else {
                (v, u)
            }
        };

        // Removals: sample distinct existing edges.
        if n_remove > 0 {
            let mut edges = g.edges();
            assert!(
                edges.len() >= n_remove,
                "graph has {} edges, cannot remove {n_remove}",
                edges.len()
            );
            // Partial Fisher–Yates: the first n_remove slots become the sample.
            for i in 0..n_remove {
                let j = rng.random_range(i..edges.len());
                edges.swap(i, j);
                let (u, v) = edges[i];
                used.insert(canon(u, v, g.is_directed()));
                changes.push(EdgeChange::remove(u, v));
            }
        }

        // Insertions: rejection-sample absent edges.
        let n = g.num_vertices() as VertexId;
        assert!(n >= 2, "need at least two vertices to insert edges");
        let mut inserted = 0;
        let mut attempts = 0usize;
        while inserted < n_insert {
            attempts += 1;
            assert!(
                attempts < 1000 * n_insert.max(16),
                "could not find {n_insert} absent edges (graph too dense?)"
            );
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            if u == v || g.has_edge(u, v) {
                continue;
            }
            if !used.insert(canon(u, v, g.is_directed())) {
                continue;
            }
            changes.push(EdgeChange::insert(u, v));
            inserted += 1;
        }
        Self { changes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ring(n: usize) -> DynGraph {
        let edges: Vec<(VertexId, VertexId)> =
            (0..n).map(|i| (i as VertexId, ((i + 1) % n) as VertexId)).collect();
        DynGraph::undirected_from_edges(n, &edges)
    }

    #[test]
    fn inverse_undoes_change() {
        let c = EdgeChange::insert(1, 2);
        assert_eq!(c.inverse(), EdgeChange::remove(1, 2));
        assert_eq!(c.inverse().inverse(), c);
    }

    #[test]
    fn random_scenario_has_requested_mix() {
        let g = ring(100);
        let mut rng = StdRng::seed_from_u64(5);
        let b = DeltaBatch::random_scenario(&g, &mut rng, 20);
        assert_eq!(b.len(), 20);
        let removes = b.changes().iter().filter(|c| c.op == EdgeOp::Remove).count();
        assert_eq!(removes, 10);
    }

    #[test]
    fn random_scenario_is_consistent_with_graph() {
        let mut g = ring(50);
        let mut rng = StdRng::seed_from_u64(6);
        let b = DeltaBatch::random_scenario(&g, &mut rng, 30);
        for c in b.changes() {
            match c.op {
                EdgeOp::Remove => assert!(g.has_edge(c.src, c.dst), "{c:?} must exist"),
                EdgeOp::Insert => assert!(!g.has_edge(c.src, c.dst), "{c:?} must be absent"),
            }
        }
        // Every change must be effective when applied.
        let before = g.num_edges();
        b.apply(&mut g);
        assert_eq!(g.num_edges(), before + 15 - 15);
        b.revert(&mut g);
        assert_eq!(g, ring(50));
    }

    #[test]
    fn random_scenario_no_duplicate_edges() {
        let g = ring(30);
        let mut rng = StdRng::seed_from_u64(7);
        let b = DeltaBatch::random_scenario(&g, &mut rng, 20);
        let mut seen = std::collections::HashSet::new();
        for c in b.changes() {
            let key = if c.src < c.dst { (c.src, c.dst) } else { (c.dst, c.src) };
            assert!(seen.insert(key), "edge {key:?} appears twice");
        }
    }

    #[test]
    fn odd_count_favors_insertions() {
        let g = ring(40);
        let mut rng = StdRng::seed_from_u64(8);
        let b = DeltaBatch::random_scenario(&g, &mut rng, 5);
        let inserts = b.changes().iter().filter(|c| c.op == EdgeOp::Insert).count();
        assert_eq!(inserts, 3);
    }

    #[test]
    fn inverse_batch_restores_graph() {
        let mut g = ring(20);
        let mut rng = StdRng::seed_from_u64(10);
        let b = DeltaBatch::random_scenario(&g, &mut rng, 8);
        b.apply(&mut g);
        b.inverse().apply(&mut g);
        assert_eq!(g, ring(20));
    }

    #[test]
    fn touched_vertices_dedups() {
        let b = DeltaBatch::new(vec![EdgeChange::insert(3, 1), EdgeChange::remove(1, 2)]);
        assert_eq!(b.touched_vertices(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "cannot remove")]
    fn removal_from_sparse_graph_panics() {
        let g = DynGraph::new(10, false);
        let mut rng = StdRng::seed_from_u64(9);
        let _ = DeltaBatch::random_scenario(&g, &mut rng, 4);
    }

    #[test]
    fn coalesce_dedups_repeated_inserts() {
        let raw = DeltaBatch::new(vec![
            EdgeChange::insert(0, 1),
            EdgeChange::insert(0, 1),
            EdgeChange::insert(0, 1),
        ]);
        assert_eq!(raw.coalesce(true).changes(), &[EdgeChange::insert(0, 1)]);
    }

    #[test]
    fn coalesce_keeps_last_op_per_edge() {
        let raw = DeltaBatch::new(vec![
            EdgeChange::insert(0, 1),
            EdgeChange::remove(0, 1),
            EdgeChange::insert(0, 1), // churn: insert → remove → insert
            EdgeChange::remove(2, 3),
        ]);
        let net = raw.coalesce(true);
        assert_eq!(net.changes(), &[EdgeChange::insert(0, 1), EdgeChange::remove(2, 3)]);
    }

    #[test]
    fn coalesce_respects_directedness() {
        let raw = DeltaBatch::new(vec![EdgeChange::insert(1, 0), EdgeChange::remove(0, 1)]);
        // Undirected: same edge, the remove wins.
        assert_eq!(raw.coalesce(false).changes(), &[EdgeChange::remove(0, 1)]);
        // Directed: two distinct edges, both survive.
        assert_eq!(raw.coalesce(true).len(), 2);
    }

    #[test]
    fn coalesced_churn_matches_raw_replay() {
        // insert → remove → insert on one edge, from both starting states.
        for start_present in [false, true] {
            let base = if start_present { ring(4) } else { DynGraph::new(4, false) };
            let raw = DeltaBatch::new(vec![
                EdgeChange::insert(0, 1),
                EdgeChange::remove(0, 1),
                EdgeChange::insert(0, 1),
            ]);
            let mut via_raw = base.clone();
            raw.apply(&mut via_raw);
            let mut via_net = base.clone();
            raw.coalesce(false).apply(&mut via_net);
            assert_eq!(via_raw, via_net, "start_present={start_present}");
        }
    }

    mod coalesce_properties {
        use super::*;
        use proptest::prelude::*;

        /// Decodes a flat random word stream into an edge-change sequence
        /// with deliberately heavy churn: a small vertex universe so the
        /// same edge is revisited (inserted, removed, re-inserted) often.
        fn decode(words: &[u64], n: VertexId) -> Vec<EdgeChange> {
            words
                .iter()
                .map(|w| {
                    let src = (w % n as u64) as VertexId;
                    let mut dst = ((w >> 16) % n as u64) as VertexId;
                    if dst == src {
                        dst = (dst + 1) % n;
                    }
                    if (w >> 32) & 1 == 0 {
                        EdgeChange::insert(src, dst)
                    } else {
                        EdgeChange::remove(src, dst)
                    }
                })
                .collect()
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

            #[test]
            fn coalesce_preserves_net_adjacency(
                words in proptest::collection::vec(0u64..u64::MAX, 0..120),
                n in 2u32..9,
                directed in proptest::bool::ANY,
                seed_edges in proptest::collection::vec(0u64..u64::MAX, 0..20),
            ) {
                let raw = DeltaBatch::new(decode(&words, n));
                let mut base = DynGraph::new(n as usize, directed);
                for c in decode(&seed_edges, n) {
                    base.apply(EdgeChange { op: EdgeOp::Insert, ..c });
                }

                let net = raw.coalesce(directed);
                let mut via_raw = base.clone();
                raw.apply(&mut via_raw);
                let mut via_net = base.clone();
                net.apply(&mut via_net);

                prop_assert_eq!(&via_raw, &via_net);
                // Each edge appears at most once after coalescing.
                let mut seen = std::collections::HashSet::new();
                for c in net.changes() {
                    let key = if directed || c.src < c.dst {
                        (c.src, c.dst)
                    } else {
                        (c.dst, c.src)
                    };
                    prop_assert!(seen.insert(key), "{:?} appears twice", key);
                }
                prop_assert!(net.len() <= raw.len());
            }
        }
    }
}
