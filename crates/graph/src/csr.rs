//! Immutable compressed-sparse-row snapshot.
//!
//! The full-graph baselines (the *PyG* and *Graphiler* stand-ins) iterate
//! every vertex's in-neighborhood once per layer; CSR gives them the flat,
//! gather-friendly layout such engines actually use.

use crate::{DynGraph, VertexId};

/// CSR over *in*-neighborhoods: `neighbors(u)` are the vertices whose
/// messages `u` aggregates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    row_ptr: Vec<usize>,
    col_idx: Vec<VertexId>,
}

impl Csr {
    /// Snapshot of `g`'s in-adjacency.
    pub fn from_graph(g: &DynGraph) -> Self {
        let n = g.num_vertices();
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::new();
        for u in 0..n {
            col_idx.extend_from_slice(g.in_neighbors(u as VertexId));
            row_ptr.push(col_idx.len());
        }
        Self { row_ptr, col_idx }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Total stored adjacency entries (2·|E| for undirected graphs).
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.col_idx.len()
    }

    /// In-neighbors of `u`.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.col_idx[self.row_ptr[u as usize]..self.row_ptr[u as usize + 1]]
    }

    /// In-degree of `u`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.row_ptr[u as usize + 1] - self.row_ptr[u as usize]
    }

    /// Bytes occupied by the index arrays (for the memory model).
    pub fn nbytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_matches_dyn_graph() {
        let mut g = DynGraph::new(4, false);
        g.insert_edge(0, 1);
        g.insert_edge(0, 2);
        g.insert_edge(2, 3);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_entries(), 6); // undirected → 2|E|
        for u in 0..4 {
            assert_eq!(csr.neighbors(u), g.in_neighbors(u), "vertex {u}");
            assert_eq!(csr.degree(u), g.in_degree(u));
        }
    }

    #[test]
    fn directed_snapshot_uses_in_edges() {
        let mut g = DynGraph::new(3, true);
        g.insert_edge(0, 2);
        g.insert_edge(1, 2);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.neighbors(2), &[0, 1]);
        assert_eq!(csr.neighbors(0), &[] as &[VertexId]);
    }

    #[test]
    fn empty_graph_snapshot() {
        let g = DynGraph::new(5, false);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.num_vertices(), 5);
        assert_eq!(csr.num_entries(), 0);
        assert_eq!(csr.degree(3), 0);
    }

    #[test]
    fn snapshot_is_stable_after_graph_mutation() {
        let mut g = DynGraph::new(3, false);
        g.insert_edge(0, 1);
        let csr = Csr::from_graph(&g);
        g.insert_edge(1, 2);
        assert_eq!(csr.neighbors(1), &[0], "CSR is an immutable snapshot");
    }
}
