//! Connected components and reachability utilities.
//!
//! The dataset stand-ins and the stress suite need to reason about
//! connectivity: a disconnected component is exactly the part of a graph an
//! edge change can never affect, so component structure bounds the
//! theoretical affected area from above.

use crate::{DynGraph, VertexId};

/// Per-vertex component labels (0-based, dense) plus the component count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// `label[v]` is the component id of vertex `v`.
    pub label: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// True when `u` and `v` are in the same component.
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        self.label[u as usize] == self.label[v as usize]
    }

    /// Size of each component, indexed by label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.label {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Size of the largest component.
    pub fn largest(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }
}

/// Computes weakly connected components (treating edges as undirected) with
/// an iterative BFS.
pub fn connected_components(g: &DynGraph) -> Components {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue: Vec<VertexId> = Vec::new();
    for start in 0..n {
        if label[start] != u32::MAX {
            continue;
        }
        label[start] = count;
        queue.push(start as VertexId);
        while let Some(u) = queue.pop() {
            for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = count;
                    queue.push(v);
                }
            }
        }
        count += 1;
    }
    Components { label, count: count as usize }
}

/// True when the whole graph is one (weak) component. Empty graphs count as
/// connected.
pub fn is_connected(g: &DynGraph) -> bool {
    g.num_vertices() == 0 || connected_components(g).count == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_separate_edges_are_two_components_plus_isolates() {
        let g = DynGraph::undirected_from_edges(6, &[(0, 1), (2, 3)]);
        let c = connected_components(&g);
        assert_eq!(c.count, 4); // {0,1}, {2,3}, {4}, {5}
        assert!(c.connected(0, 1));
        assert!(!c.connected(1, 2));
        let mut sizes = c.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 2, 2]);
        assert_eq!(c.largest(), 2);
    }

    #[test]
    fn ring_is_connected() {
        let edges: Vec<_> = (0..10).map(|i| (i, (i + 1) % 10)).collect();
        let g = DynGraph::undirected_from_edges(10, &edges);
        assert!(is_connected(&g));
    }

    #[test]
    fn directed_graphs_use_weak_connectivity() {
        let g = DynGraph::directed_from_edges(3, &[(0, 1), (2, 1)]);
        assert!(is_connected(&g), "weakly connected despite no directed path 0→2");
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&DynGraph::new(0, false)));
        assert!(!is_connected(&DynGraph::new(2, false)), "two isolates are two components");
    }

    #[test]
    fn component_bounds_affected_area() {
        // An edge change in one component cannot affect the other.
        let g = DynGraph::undirected_from_edges(8, &[(0, 1), (1, 2), (4, 5), (5, 6)]);
        let c = connected_components(&g);
        let ball = crate::bfs::k_hop_out(&g, &[1], 10);
        for &v in &ball {
            assert!(c.connected(1, v));
        }
    }
}
