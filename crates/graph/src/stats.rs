//! Graph statistics used by the experiment reports.

use crate::DynGraph;

/// Summary statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub vertices: usize,
    /// Edge count (undirected edges count once).
    pub edges: usize,
    /// Mean in-degree.
    pub avg_degree: f64,
    /// Maximum in-degree.
    pub max_degree: usize,
    /// Edge density `m / (n·(n−1)/2)` for undirected graphs.
    pub density: f64,
}

/// Computes [`GraphStats`] for `g`.
pub fn graph_stats(g: &DynGraph) -> GraphStats {
    let n = g.num_vertices();
    let mut max_degree = 0;
    let mut total = 0usize;
    for u in 0..n {
        let d = g.in_degree(u as u32);
        total += d;
        max_degree = max_degree.max(d);
    }
    let pairs = if g.is_directed() {
        n.saturating_mul(n.saturating_sub(1))
    } else {
        n.saturating_mul(n.saturating_sub(1)) / 2
    };
    GraphStats {
        vertices: n,
        edges: g.num_edges(),
        avg_degree: if n == 0 { 0.0 } else { total as f64 / n as f64 },
        max_degree,
        density: if pairs == 0 { 0.0 } else { g.num_edges() as f64 / pairs as f64 },
    }
}

/// In-degree histogram with logarithmic buckets `[1, 2, 4, 8, ...)`; bucket 0
/// counts isolated vertices.
pub fn degree_histogram(g: &DynGraph) -> Vec<usize> {
    let mut hist = vec![0usize; 2];
    for u in 0..g.num_vertices() {
        let d = g.in_degree(u as u32);
        let bucket = if d == 0 { 0 } else { (d.ilog2() as usize) + 1 };
        if bucket >= hist.len() {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

/// Quality measures of a vertex partitioning — how good an edge cut a
/// partitioner produced and how evenly it spread the vertices. Computed by
/// [`partition_quality`]; the partition bench artifact and the greedy/hash
/// partitioner comparisons report these.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionQuality {
    /// Number of partitions the assignment names (its maximum label + 1,
    /// but at least the requested count).
    pub parts: usize,
    /// Edges whose endpoints live in different partitions (undirected edges
    /// count once).
    pub cut_edges: usize,
    /// `cut_edges / edges` — 0.0 for a perfect cut, approaching 1.0 when
    /// almost every edge crosses.
    pub cut_fraction: f64,
    /// Mean number of partitions each vertex is *present* on (its owner
    /// plus every partition holding it as a boundary replica). 1.0 means no
    /// replication at all.
    pub replication_factor: f64,
    /// Vertices in the largest partition.
    pub max_part: usize,
    /// Vertices in the smallest partition.
    pub min_part: usize,
    /// `max_part / (n / parts)` — 1.0 is perfectly balanced; 2.0 means the
    /// biggest partition is twice the ideal size.
    pub balance: f64,
}

/// Computes [`PartitionQuality`] for `assignment` (one owning-partition
/// label per vertex) over `g`, for `parts` partitions. Replication follows
/// the boundary rule of the partitioned engine: a vertex is replicated onto
/// every *other* partition that owns a neighbor across a cut edge (for
/// directed graphs, onto the partitions owning its out-neighbors — the side
/// that must aggregate its messages).
///
/// # Panics
///
/// When `assignment` is not one label per vertex, `parts` is 0, or a label
/// is out of range.
pub fn partition_quality(g: &DynGraph, assignment: &[u32], parts: usize) -> PartitionQuality {
    let n = g.num_vertices();
    assert_eq!(assignment.len(), n, "one partition label per vertex");
    assert!(parts > 0, "need at least one partition");
    assert!(
        assignment.iter().all(|&p| (p as usize) < parts),
        "partition labels must be < parts"
    );
    let mut sizes = vec![0usize; parts];
    for &p in assignment {
        sizes[p as usize] += 1;
    }
    let mut cut_edges = 0usize;
    // Per-vertex set of *foreign* partitions holding a replica.
    let mut mirrors: crate::FxHashSet<(u32, u32)> = crate::FxHashSet::default();
    for (u, v) in g.edges() {
        let (pu, pv) = (assignment[u as usize], assignment[v as usize]);
        if pu != pv {
            cut_edges += 1;
            // The aggregating side needs the source's messages: for an
            // undirected edge both sides replicate, for a directed edge
            // only the source replicates onto the target's partition.
            mirrors.insert((u, pv));
            if !g.is_directed() {
                mirrors.insert((v, pu));
            }
        }
    }
    let edges = g.num_edges();
    let (max_part, min_part) = sizes
        .iter()
        .fold((0usize, usize::MAX), |(mx, mn), &s| (mx.max(s), mn.min(s)));
    PartitionQuality {
        parts,
        cut_edges,
        cut_fraction: if edges == 0 { 0.0 } else { cut_edges as f64 / edges as f64 },
        replication_factor: if n == 0 {
            1.0
        } else {
            (n + mirrors.len()) as f64 / n as f64
        },
        max_part,
        min_part,
        balance: if n == 0 { 1.0 } else { max_part as f64 / (n as f64 / parts as f64) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_triangle() {
        let g = DynGraph::undirected_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let s = graph_stats(&g);
        assert_eq!(s.vertices, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.avg_degree, 2.0);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.density, 1.0);
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = graph_stats(&DynGraph::new(0, false));
        assert_eq!(s.vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.density, 0.0);
    }

    #[test]
    fn histogram_buckets() {
        // degrees: 0, 1, 2, 3 → buckets 0, 1, 2, 2
        let g = DynGraph::directed_from_edges(
            5,
            &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)],
        );
        let h = degree_histogram(&g);
        assert_eq!(h[0], 2); // vertices 0 and 4 have in-degree 0
        assert_eq!(h[1], 1); // vertex 1: degree 1
        assert_eq!(h[2], 2); // vertices 2 (deg 2) and 3 (deg 3)
    }

    #[test]
    fn histogram_counts_all_vertices() {
        let g = DynGraph::undirected_from_edges(10, &[(0, 1), (2, 3)]);
        assert_eq!(degree_histogram(&g).iter().sum::<usize>(), 10);
    }

    #[test]
    fn quality_single_partition_is_perfect() {
        let g = DynGraph::undirected_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let q = partition_quality(&g, &[0, 0, 0, 0], 1);
        assert_eq!(q.cut_edges, 0);
        assert_eq!(q.cut_fraction, 0.0);
        assert_eq!(q.replication_factor, 1.0);
        assert_eq!((q.max_part, q.min_part), (4, 4));
        assert_eq!(q.balance, 1.0);
    }

    #[test]
    fn quality_undirected_cut_and_replication() {
        // 0-1 inside part 0, 2-3 inside part 1, cut edge 1-2.
        let g = DynGraph::undirected_from_edges(4, &[(0, 1), (2, 3), (1, 2)]);
        let q = partition_quality(&g, &[0, 0, 1, 1], 2);
        assert_eq!(q.cut_edges, 1);
        assert_eq!(q.cut_fraction, 1.0 / 3.0);
        // Vertices 1 and 2 each gain one mirror → (4 + 2) / 4.
        assert_eq!(q.replication_factor, 1.5);
        assert_eq!((q.max_part, q.min_part), (2, 2));
        assert_eq!(q.balance, 1.0);
    }

    #[test]
    fn quality_directed_replicates_source_only() {
        // Directed cut edge 0→2: only the source (0) mirrors onto part 1.
        let g = DynGraph::directed_from_edges(4, &[(0, 1), (0, 2), (2, 3)]);
        let q = partition_quality(&g, &[0, 0, 1, 1], 2);
        assert_eq!(q.cut_edges, 1);
        assert_eq!(q.replication_factor, 5.0 / 4.0);
    }

    #[test]
    fn quality_reports_imbalance() {
        let g = DynGraph::undirected_from_edges(6, &[(0, 1)]);
        let q = partition_quality(&g, &[0, 0, 0, 0, 0, 1], 2);
        assert_eq!((q.max_part, q.min_part), (5, 1));
        assert_eq!(q.balance, 5.0 / 3.0);
    }

    #[test]
    fn quality_counts_mirror_once_per_foreign_part() {
        // Vertex 0 has two cut edges into part 1 — it mirrors there once.
        let g = DynGraph::undirected_from_edges(3, &[(0, 1), (0, 2)]);
        let q = partition_quality(&g, &[0, 1, 1], 2);
        assert_eq!(q.cut_edges, 2);
        // 0 mirrors on part 1 (once); 1 and 2 each mirror on part 0.
        assert_eq!(q.replication_factor, 2.0);
    }
}
