//! Graph statistics used by the experiment reports.

use crate::DynGraph;

/// Summary statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub vertices: usize,
    /// Edge count (undirected edges count once).
    pub edges: usize,
    /// Mean in-degree.
    pub avg_degree: f64,
    /// Maximum in-degree.
    pub max_degree: usize,
    /// Edge density `m / (n·(n−1)/2)` for undirected graphs.
    pub density: f64,
}

/// Computes [`GraphStats`] for `g`.
pub fn graph_stats(g: &DynGraph) -> GraphStats {
    let n = g.num_vertices();
    let mut max_degree = 0;
    let mut total = 0usize;
    for u in 0..n {
        let d = g.in_degree(u as u32);
        total += d;
        max_degree = max_degree.max(d);
    }
    let pairs = if g.is_directed() {
        n.saturating_mul(n.saturating_sub(1))
    } else {
        n.saturating_mul(n.saturating_sub(1)) / 2
    };
    GraphStats {
        vertices: n,
        edges: g.num_edges(),
        avg_degree: if n == 0 { 0.0 } else { total as f64 / n as f64 },
        max_degree,
        density: if pairs == 0 { 0.0 } else { g.num_edges() as f64 / pairs as f64 },
    }
}

/// In-degree histogram with logarithmic buckets `[1, 2, 4, 8, ...)`; bucket 0
/// counts isolated vertices.
pub fn degree_histogram(g: &DynGraph) -> Vec<usize> {
    let mut hist = vec![0usize; 2];
    for u in 0..g.num_vertices() {
        let d = g.in_degree(u as u32);
        let bucket = if d == 0 { 0 } else { (d.ilog2() as usize) + 1 };
        if bucket >= hist.len() {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_triangle() {
        let g = DynGraph::undirected_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let s = graph_stats(&g);
        assert_eq!(s.vertices, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.avg_degree, 2.0);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.density, 1.0);
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = graph_stats(&DynGraph::new(0, false));
        assert_eq!(s.vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.density, 0.0);
    }

    #[test]
    fn histogram_buckets() {
        // degrees: 0, 1, 2, 3 → buckets 0, 1, 2, 2
        let g = DynGraph::directed_from_edges(
            5,
            &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)],
        );
        let h = degree_histogram(&g);
        assert_eq!(h[0], 2); // vertices 0 and 4 have in-degree 0
        assert_eq!(h[1], 1); // vertex 1: degree 1
        assert_eq!(h[2], 2); // vertices 2 (deg 2) and 3 (deg 3)
    }

    #[test]
    fn histogram_counts_all_vertices() {
        let g = DynGraph::undirected_from_edges(10, &[(0, 1), (2, 3)]);
        assert_eq!(degree_histogram(&g).iter().sum::<usize>(), 10);
    }
}
