//! Binary edge-list serialisation.
//!
//! Synthesising the larger stand-ins takes tens of seconds; the bench
//! harness caches them on disk between runs. Format: magic, version,
//! directed flag, vertex count, edge count, then little-endian `u32` pairs —
//! all through buffered I/O (per the perf-book guidance on unbuffered
//! syscalls).

use crate::{DynGraph, VertexId};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"IKG1";

/// Writes `g` to an arbitrary writer.
pub fn write_graph(g: &DynGraph, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[u8::from(g.is_directed())])?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    let edges = g.edges();
    w.write_all(&(edges.len() as u64).to_le_bytes())?;
    for (u, v) in edges {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a graph previously written by [`write_graph`].
pub fn read_graph(r: &mut impl Read) -> io::Result<DynGraph> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let directed = flag[0] != 0;
    let n = read_u64(r)? as usize;
    let m = read_u64(r)? as usize;
    let mut g = DynGraph::new(n, directed);
    let mut buf = [0u8; 8];
    for _ in 0..m {
        r.read_exact(&mut buf)?;
        let u = VertexId::from_le_bytes(buf[..4].try_into().unwrap());
        let v = VertexId::from_le_bytes(buf[4..].try_into().unwrap());
        if u as usize >= n || v as usize >= n {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "vertex id out of range"));
        }
        g.insert_edge(u, v);
    }
    Ok(g)
}

/// Writes `g` to `path`.
pub fn save_graph(g: &DynGraph, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    write_graph(g, &mut w)?;
    w.flush()
}

/// Reads a graph previously written by [`save_graph`].
pub fn load_graph(path: &Path) -> io::Result<DynGraph> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    read_graph(&mut r)
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ink-graph-io-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_undirected() {
        let g = DynGraph::undirected_from_edges(5, &[(0, 1), (2, 3), (1, 4)]);
        let path = tmp("u");
        save_graph(&g, &path).unwrap();
        let loaded = load_graph(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, g);
    }

    #[test]
    fn roundtrip_directed() {
        let g = DynGraph::directed_from_edges(4, &[(0, 1), (1, 0), (3, 2)]);
        let path = tmp("d");
        save_graph(&g, &path).unwrap();
        let loaded = load_graph(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, g);
        assert!(loaded.is_directed());
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("bad");
        std::fs::write(&path, b"not a graph").unwrap();
        let err = load_graph(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn missing_file_errors() {
        assert!(load_graph(Path::new("/nonexistent/x.ikg")).is_err());
    }
}
