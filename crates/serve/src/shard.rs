//! Sharded ingest: per-shard bounded queues with a global admission ticket.
//!
//! The readiness-based server admits updates from one event-loop thread and
//! drains them from one writer thread, so the queue's job is not raw lock
//! throughput — it is *ordering* and *admission control* at high fan-in:
//!
//! * Every admitted item gets a **global ticket** from one atomic counter,
//!   then lands in the shard chosen by the canonical form of its first edge
//!   (`(min, max)` for undirected graphs), so a hot edge always queues
//!   behind its own earlier updates.
//! * The writer drains by repeatedly popping the globally smallest front
//!   ticket across shards. The drained set is therefore always a *ticket
//!   prefix* of everything admitted, and concatenating in ticket order
//!   reconstructs exactly the arrival order a single FIFO queue would have
//!   seen — this is the invariant that keeps the served embeddings bitwise
//!   identical to a single-threaded replay of the same stream (the
//!   loopback tests assert it at every epoch).
//! * Flush barriers live in a ticket-stamped control lane that is never
//!   subject to capacity, and a barrier releases only once every shard's
//!   front ticket is beyond it.
//!
//! Admission is non-blocking ([`ShardPush::Full`] instead of parking) so
//! the event loop can stall just the submitting connection rather than the
//! whole I/O thread; the writer parks on a condvar and is woken by the next
//! push — no timed polling on the idle path.
//!
//! ```
//! use ink_serve::shard::{Drained, ShardPush, ShardedIngest};
//! use ink_serve::Backpressure;
//! use ink_graph::EdgeChange;
//! use std::time::Duration;
//!
//! // Four shards, two pending batches each, shedding load when full.
//! let q = ShardedIngest::new(4, 2, Backpressure::Reject { retry_after_ms: 5 });
//! assert!(matches!(
//!     q.try_push_updates(&[EdgeChange::insert(0, 1)], false),
//!     ShardPush::Accepted { .. }
//! ));
//! assert!(matches!(
//!     q.try_push_updates(&[EdgeChange::insert(2, 3)], false),
//!     ShardPush::Accepted { .. }
//! ));
//! q.push_flush(7); // flush id 7, always admitted
//!
//! let d: Drained = q.drain(16, Duration::ZERO);
//! assert_eq!(d.changes.len(), 2); // global-FIFO order across shards
//! assert_eq!(d.flushes, vec![7]); // releasable once the drain is published
//! ```

use crate::queue::Backpressure;
use ink_graph::EdgeChange;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// The verdict on one non-blocking push.
#[derive(Debug, PartialEq, Eq)]
pub enum ShardPush {
    /// Admitted with this global ticket.
    Accepted {
        /// Position in the global admission order.
        ticket: u64,
    },
    /// Admitted after evicting older batches from the same shard
    /// ([`Backpressure::DropOldest`]).
    AcceptedDropped {
        /// Update batches evicted to make room.
        dropped: u64,
    },
    /// Turned away ([`Backpressure::Reject`]); retry after the hint.
    Rejected {
        /// Backoff hint in milliseconds.
        retry_after_ms: u32,
    },
    /// The target shard is at capacity under [`Backpressure::Block`]: the
    /// caller should stall this producer and retry after the writer's next
    /// drain (the server parks the connection, not the event loop).
    Full,
    /// The queue is closed (server shutting down).
    Closed,
}

/// One writer-side drain: a ticket-prefix of everything admitted.
#[derive(Debug, Default)]
pub struct Drained {
    /// Edge changes concatenated in global admission order.
    pub changes: Vec<EdgeChange>,
    /// Update batches drained (pre-concatenation).
    pub batches: usize,
    /// Flush ids whose barriers are now behind every queued update; ack
    /// them after publishing the epoch that contains `changes`.
    pub flushes: Vec<u64>,
    /// Admission timestamps of the drained batches (same order as the
    /// concatenation) — the writer records admission-to-apply latency from
    /// these once the containing epoch publishes.
    pub admitted: Vec<Instant>,
    /// True once the queue is closed *and* fully drained — the writer's
    /// exit condition.
    pub finished: bool,
}

#[derive(Debug, Default)]
struct Shard {
    /// `(ticket, admitted-at, changes)` in admission order; front ticket is
    /// the shard minimum because tickets are drawn under the shard lock.
    items: VecDeque<(u64, Instant, Vec<EdgeChange>)>,
    max_depth: usize,
}

#[derive(Debug, Default)]
struct Signal {
    /// Bumped on every push/close so waiters can detect missed wakeups.
    seq: u64,
}

/// A sharded MPSC ingest queue with global-ticket ordering.
///
/// See the [module docs](self) for the ordering invariant and a usage
/// example.
#[derive(Debug)]
pub struct ShardedIngest {
    shards: Vec<Mutex<Shard>>,
    /// `(ticket, flush_id)` in ticket order — the control lane.
    barriers: Mutex<VecDeque<(u64, u64)>>,
    /// Next global ticket. Drawn while holding the target shard (or
    /// barrier) lock, so tickets are monotonic within each lane.
    ticket: AtomicU64,
    signal: Mutex<Signal>,
    ready: Condvar,
    per_shard_capacity: usize,
    mode: Backpressure,
    closed: AtomicBool,
    /// Global pending-batch count (sum of shard depths), for O(1) stats.
    depth: AtomicU64,
    /// Global high-water mark of `depth`.
    max_depth: AtomicU64,
}

impl ShardedIngest {
    /// A queue of `shards` independent lanes admitting at most
    /// `per_shard_capacity` pending update batches each.
    ///
    /// # Panics
    ///
    /// If `shards` or `per_shard_capacity` is 0.
    pub fn new(shards: usize, per_shard_capacity: usize, mode: Backpressure) -> Self {
        assert!(shards >= 1, "ShardedIngest: need at least one shard");
        assert!(per_shard_capacity >= 1, "ShardedIngest: per-shard capacity must be at least 1");
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            barriers: Mutex::new(VecDeque::new()),
            ticket: AtomicU64::new(0),
            signal: Mutex::new(Signal::default()),
            ready: Condvar::new(),
            per_shard_capacity,
            mode,
            closed: AtomicBool::new(false),
            depth: AtomicU64::new(0),
            max_depth: AtomicU64::new(0),
        }
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a batch routes to: a canonical-edge hash of its first
    /// change (`(min, max)` when undirected), so one edge's update stream
    /// always serialises through one lane.
    pub fn shard_of(&self, changes: &[EdgeChange], directed: bool) -> usize {
        let Some(c) = changes.first() else { return 0 };
        let (a, b) = if directed || c.src <= c.dst { (c.src, c.dst) } else { (c.dst, c.src) };
        // SplitMix64 finalizer over the packed edge — cheap and well mixed.
        let mut h = ((a as u64) << 32) | b as u64;
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (h ^ (h >> 31)) as usize % self.shards.len()
    }

    /// Submits one update batch without ever blocking. See [`ShardPush`]
    /// for the verdicts; [`ShardPush::Full`] (Block mode, shard at
    /// capacity) means "stall this producer and retry after the next
    /// drain". Takes a slice so a stalling caller keeps ownership for the
    /// retry; the batch is copied only on admission.
    pub fn try_push_updates(&self, changes: &[EdgeChange], directed: bool) -> ShardPush {
        if self.closed.load(Ordering::SeqCst) {
            return ShardPush::Closed;
        }
        let idx = self.shard_of(changes, directed);
        let mut dropped = 0u64;
        {
            let mut shard = self.shards[idx].lock().expect("shard lock poisoned");
            if shard.items.len() >= self.per_shard_capacity {
                match self.mode {
                    Backpressure::Block => return ShardPush::Full,
                    Backpressure::Reject { retry_after_ms } => {
                        return ShardPush::Rejected { retry_after_ms }
                    }
                    Backpressure::DropOldest => {
                        while shard.items.len() >= self.per_shard_capacity {
                            shard.items.pop_front();
                            dropped += 1;
                        }
                    }
                }
            }
            let ticket = self.ticket.fetch_add(1, Ordering::SeqCst);
            shard.items.push_back((ticket, Instant::now(), changes.to_vec()));
            let len = shard.items.len();
            shard.max_depth = shard.max_depth.max(len);
            let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1 - dropped;
            self.depth.fetch_sub(dropped, Ordering::Relaxed);
            self.max_depth.fetch_max(depth, Ordering::Relaxed);
            if dropped == 0 {
                self.notify();
                return ShardPush::Accepted { ticket };
            }
        }
        self.notify();
        ShardPush::AcceptedDropped { dropped }
    }

    /// Submits a flush barrier (always admitted — barriers are control
    /// messages outside the capacity accounting). Returns `false` when the
    /// queue is closed. The barrier's `flush_id` comes back from
    /// [`ShardedIngest::drain`] once every update admitted before it has
    /// been drained.
    pub fn push_flush(&self, flush_id: u64) -> bool {
        if self.closed.load(Ordering::SeqCst) {
            return false;
        }
        {
            let mut barriers = self.barriers.lock().expect("barrier lock poisoned");
            let ticket = self.ticket.fetch_add(1, Ordering::SeqCst);
            barriers.push_back((ticket, flush_id));
        }
        self.notify();
        true
    }

    /// Drains up to `max_batches` update batches as a global ticket-prefix,
    /// waiting up to `timeout` for the first item. The returned
    /// [`Drained::changes`] are in exact global admission order;
    /// [`Drained::flushes`] are the barriers now behind every queued update.
    pub fn drain(&self, max_batches: usize, timeout: Duration) -> Drained {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let seq = self.signal.lock().expect("signal lock poisoned").seq;
            let drained = self.try_drain(max_batches);
            if !drained.changes.is_empty() || !drained.flushes.is_empty() || drained.finished {
                return drained;
            }
            // Nothing yet: park until the next push/close bumps the signal
            // (no timed polling — the idle writer costs zero CPU), but honour
            // the caller's timeout so shutdown paths stay bounded.
            let now = std::time::Instant::now();
            if now >= deadline {
                return drained;
            }
            let guard = self.signal.lock().expect("signal lock poisoned");
            let (_guard, timeout_result) = self
                .ready
                .wait_timeout_while(guard, deadline - now, |s| {
                    s.seq == seq && !self.closed.load(Ordering::SeqCst)
                })
                .expect("signal lock poisoned");
            if timeout_result.timed_out() {
                return self.try_drain(max_batches);
            }
        }
    }

    /// Like [`ShardedIngest::drain`] but with no deadline: parks until a
    /// push, flush, or [`ShardedIngest::close`] produces something to
    /// return. Purely signal-driven — the idle writer costs zero CPU and
    /// there is no residual poll interval on the apply wake path.
    pub fn drain_wait(&self, max_batches: usize) -> Drained {
        loop {
            let seq = self.signal.lock().expect("signal lock poisoned").seq;
            let drained = self.try_drain(max_batches);
            if !drained.changes.is_empty() || !drained.flushes.is_empty() || drained.finished {
                return drained;
            }
            let guard = self.signal.lock().expect("signal lock poisoned");
            drop(
                self.ready
                    .wait_while(guard, |s| {
                        s.seq == seq && !self.closed.load(Ordering::SeqCst)
                    })
                    .expect("signal lock poisoned"),
            );
        }
    }

    /// One non-waiting drain pass.
    fn try_drain(&self, max_batches: usize) -> Drained {
        let mut guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned"))
            .collect();
        let mut items: Vec<(u64, Instant, Vec<EdgeChange>)> = Vec::new();
        while items.len() < max_batches.max(1) {
            // Pop the globally smallest front ticket so the drained set is
            // always a ticket-prefix of everything admitted.
            let next = guards
                .iter()
                .enumerate()
                .filter_map(|(i, g)| g.items.front().map(|(t, _, _)| (*t, i)))
                .min();
            let Some((_, idx)) = next else { break };
            items.push(guards[idx].items.pop_front().expect("front checked"));
        }
        // The smallest undrained ticket bounds which barriers may release.
        let remaining_min = guards
            .iter()
            .filter_map(|g| g.items.front().map(|(t, _, _)| *t))
            .min()
            .unwrap_or(u64::MAX);
        drop(guards);
        if !items.is_empty() {
            self.depth.fetch_sub(items.len() as u64, Ordering::Relaxed);
        }

        let mut flushes = Vec::new();
        {
            let mut barriers = self.barriers.lock().expect("barrier lock poisoned");
            while barriers.front().is_some_and(|(t, _)| *t < remaining_min) {
                let (_, flush_id) = barriers.pop_front().expect("front checked");
                flushes.push(flush_id);
            }
        }

        let batches = items.len();
        let mut changes = Vec::with_capacity(items.iter().map(|(_, _, c)| c.len()).sum());
        let mut admitted = Vec::with_capacity(batches);
        for (_, at, c) in items {
            admitted.push(at);
            changes.extend(c);
        }
        let finished = self.closed.load(Ordering::SeqCst)
            && remaining_min == u64::MAX
            && changes.is_empty()
            && self.barriers.lock().expect("barrier lock poisoned").is_empty();
        Drained { changes, batches, flushes, admitted, finished }
    }

    /// Pending update batches across all shards.
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Deepest the queue (summed across shards) ever got.
    pub fn max_depth(&self) -> u64 {
        self.max_depth.load(Ordering::Relaxed)
    }

    /// Per-shard pending depths — the bench artifact's shard-balance view.
    pub fn per_shard_depths(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().expect("shard lock poisoned").items.len()).collect()
    }

    /// Per-shard high-water marks.
    pub fn per_shard_max_depths(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().expect("shard lock poisoned").max_depth).collect()
    }

    /// Closes the queue: further pushes return [`ShardPush::Closed`] /
    /// `false`; queued items stay drainable so the writer can finish.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.notify();
    }

    /// True once [`ShardedIngest::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    fn notify(&self) {
        let mut signal = self.signal.lock().expect("signal lock poisoned");
        signal.seq = signal.seq.wrapping_add(1);
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn upd(a: u32, b: u32) -> Vec<EdgeChange> {
        vec![EdgeChange::insert(a, b)]
    }

    #[test]
    fn drain_restores_global_admission_order() {
        let q = ShardedIngest::new(4, 64, Backpressure::Block);
        // Admission order across many shards...
        for i in 0..32u32 {
            assert!(matches!(
                q.try_push_updates(&upd(i, i + 1), false),
                ShardPush::Accepted { .. }
            ));
        }
        // ...comes back as one FIFO stream.
        let d = q.drain(64, Duration::ZERO);
        assert_eq!(d.batches, 32);
        let srcs: Vec<u32> = d.changes.iter().map(|c| c.src).collect();
        assert_eq!(srcs, (0..32).collect::<Vec<_>>());
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn same_canonical_edge_always_routes_to_one_shard() {
        let q = ShardedIngest::new(8, 8, Backpressure::Block);
        // Undirected: (a, b) and (b, a) are one canonical edge.
        assert_eq!(q.shard_of(&upd(3, 9), false), q.shard_of(&upd(9, 3), false));
        // Directed: they are distinct keys (may or may not collide).
        let s = q.shard_of(&upd(3, 9), true);
        assert!(s < 8);
    }

    #[test]
    fn capped_drain_takes_a_ticket_prefix() {
        let q = ShardedIngest::new(4, 64, Backpressure::Block);
        for i in 0..10u32 {
            q.try_push_updates(&upd(i, i + 1), false);
        }
        let first = q.drain(4, Duration::ZERO);
        let second = q.drain(64, Duration::ZERO);
        let srcs: Vec<u32> =
            first.changes.iter().chain(second.changes.iter()).map(|c| c.src).collect();
        assert_eq!(srcs, (0..10).collect::<Vec<_>>(), "prefix property: no reordering across drains");
    }

    #[test]
    fn barriers_release_only_behind_every_queued_update() {
        let q = ShardedIngest::new(4, 64, Backpressure::Block);
        q.try_push_updates(&upd(0, 1), false);
        assert!(q.push_flush(77));
        q.try_push_updates(&upd(2, 3), false);
        // A capped drain that leaves the post-barrier update queued still
        // releases the barrier (everything *before* it has drained)...
        let d = q.drain(1, Duration::ZERO);
        assert_eq!(d.batches, 1);
        assert_eq!(d.flushes, vec![77]);
        // ...and the rest follows.
        let d = q.drain(16, Duration::ZERO);
        assert_eq!(d.batches, 1);
        assert!(d.flushes.is_empty());
    }

    #[test]
    fn barrier_does_not_release_while_an_older_update_is_queued() {
        let q = ShardedIngest::new(2, 64, Backpressure::Block);
        q.try_push_updates(&upd(0, 1), false);
        q.try_push_updates(&upd(2, 3), false);
        assert!(q.push_flush(5));
        let d = q.drain(1, Duration::ZERO);
        assert!(d.flushes.is_empty(), "an update admitted before the barrier is still queued");
        let d = q.drain(1, Duration::ZERO);
        assert_eq!(d.flushes, vec![5]);
    }

    #[test]
    fn block_mode_reports_full_instead_of_parking() {
        let q = ShardedIngest::new(1, 1, Backpressure::Block);
        assert!(matches!(q.try_push_updates(&upd(0, 1), false), ShardPush::Accepted { .. }));
        assert_eq!(q.try_push_updates(&upd(0, 1), false), ShardPush::Full);
        q.drain(16, Duration::ZERO);
        assert!(matches!(q.try_push_updates(&upd(0, 1), false), ShardPush::Accepted { .. }));
    }

    #[test]
    fn reject_mode_sheds_with_the_hint() {
        let q = ShardedIngest::new(1, 1, Backpressure::Reject { retry_after_ms: 9 });
        q.try_push_updates(&upd(0, 1), false);
        assert_eq!(
            q.try_push_updates(&upd(0, 1), false),
            ShardPush::Rejected { retry_after_ms: 9 }
        );
    }

    #[test]
    fn drop_oldest_evicts_within_the_shard() {
        let q = ShardedIngest::new(1, 2, Backpressure::DropOldest);
        q.try_push_updates(&upd(0, 1), false);
        q.try_push_updates(&upd(1, 2), false);
        assert_eq!(q.try_push_updates(&upd(2, 3), false), ShardPush::AcceptedDropped { dropped: 1 });
        let d = q.drain(16, Duration::ZERO);
        let srcs: Vec<u32> = d.changes.iter().map(|c| c.src).collect();
        assert_eq!(srcs, vec![1, 2], "oldest evicted, newest admitted");
        assert_eq!(q.depth(), 0, "depth survives eviction accounting");
    }

    #[test]
    fn close_unblocks_the_writer_and_refuses_new_work() {
        let q = Arc::new(ShardedIngest::new(2, 4, Backpressure::Block));
        let q2 = q.clone();
        let writer = std::thread::spawn(move || q2.drain(16, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        let d = writer.join().unwrap();
        assert!(d.finished, "closed + empty = finished");
        assert_eq!(q.try_push_updates(&upd(0, 1), false), ShardPush::Closed);
        assert!(!q.push_flush(1));
    }

    #[test]
    fn drain_wakes_on_push_without_polling() {
        let q = Arc::new(ShardedIngest::new(2, 4, Backpressure::Block));
        let q2 = q.clone();
        let writer = std::thread::spawn(move || q2.drain(16, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(20));
        let t = std::time::Instant::now();
        q.try_push_updates(&upd(0, 1), false);
        let d = writer.join().unwrap();
        assert_eq!(d.batches, 1);
        assert!(t.elapsed() < Duration::from_secs(1), "woken by the push, not a timeout");
    }

    #[test]
    fn drain_wait_parks_until_signal_and_stamps_admission() {
        let q = Arc::new(ShardedIngest::new(2, 4, Backpressure::Block));
        let q2 = q.clone();
        let writer = std::thread::spawn(move || q2.drain_wait(16));
        std::thread::sleep(Duration::from_millis(20));
        let before = Instant::now();
        q.try_push_updates(&upd(0, 1), false);
        let d = writer.join().unwrap();
        assert_eq!(d.batches, 1);
        assert_eq!(d.admitted.len(), 1, "one admission stamp per drained batch");
        assert!(d.admitted[0] >= before, "stamped at admission, not at drain");
        // Close releases a parked drain_wait with finished=true.
        let q2 = q.clone();
        let writer = std::thread::spawn(move || q2.drain_wait(16));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(writer.join().unwrap().finished);
    }

    #[test]
    fn depth_stats_track_highwater_and_per_shard_views() {
        let q = ShardedIngest::new(2, 64, Backpressure::Block);
        for i in 0..6u32 {
            q.try_push_updates(&upd(i, i + 1), false);
        }
        assert_eq!(q.depth(), 6);
        assert_eq!(q.max_depth(), 6);
        assert_eq!(q.per_shard_depths().iter().sum::<usize>(), 6);
        q.drain(16, Duration::ZERO);
        assert_eq!(q.depth(), 0);
        assert_eq!(q.max_depth(), 6, "high-water mark persists");
        assert_eq!(q.per_shard_max_depths().iter().sum::<usize>(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        ShardedIngest::new(0, 1, Backpressure::Block);
    }
}
