//! Server-side counters and query-latency tracking, built on `ink-obs`.
//!
//! [`ServerMetrics`] registers its instruments into the *session's* metrics
//! registry, so one `Metrics` scrape covers the whole stack — pipeline,
//! drift auditor, and serving layer — in a single Prometheus document.
//! Query latencies go into a lock-free log-bucket
//! [`Histogram`] (replacing the old mutex-guarded ring),
//! so the per-request record path is atomics-only.
//! [`ServerMetrics::serve_stats`] folds everything into the core
//! [`ServeStats`] struct so the `stats` request and the bench artifacts keep
//! their schema.

use ink_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use inkstream::ServeStats;
use std::sync::Arc;
use std::time::Duration;

/// Shared request counters (one instance per server), backed by registry
/// instruments.
#[derive(Debug)]
pub struct ServerMetrics {
    /// Updates admitted to the queue.
    pub updates_enqueued: Arc<Counter>,
    /// Updates rejected by admission control.
    pub updates_rejected: Arc<Counter>,
    /// Updates evicted by drop-oldest admission control.
    pub updates_dropped: Arc<Counter>,
    /// Edge changes received across admitted updates.
    pub events_received: Arc<Counter>,
    /// Edge changes applied after coalescing.
    pub events_applied: Arc<Counter>,
    /// Queries answered (embedding + top-k).
    pub queries: Arc<Counter>,
    /// Flush barriers honoured.
    pub flushes: Arc<Counter>,
    /// Transient `accept()` failures the listener retried past.
    pub accept_errors: Arc<Counter>,
    /// v2 `Batch` container frames decoded.
    pub batches: Arc<Counter>,
    /// Requests carried inside `Batch` containers.
    pub batched_requests: Arc<Counter>,
    /// Connection stalls from Block backpressure (a full shard paused one
    /// connection's frame processing until the next drain).
    pub stalls: Arc<Counter>,
    /// Epochs whose backend apply reported an error (drift-audit breach
    /// under a `Fail` policy, or a poisoned partition worker pool). The
    /// server keeps serving the last good snapshot either way.
    pub apply_errors: Arc<Counter>,
    /// Live client connections.
    pub connections: Arc<Gauge>,
    /// Per-query service latency in nanoseconds.
    query_latency: Arc<Histogram>,
    /// Admission-to-apply wait per drained update batch in nanoseconds —
    /// time from shard admission until the epoch containing the batch was
    /// published (queueing + pipeline wait).
    pub admission_wait: Arc<Histogram>,
    /// Apply-only service time per non-empty epoch in nanoseconds — engine
    /// ingest plus snapshot publish, excluding any queueing.
    pub apply_latency: Arc<Histogram>,
    /// Last published snapshot epoch (gauge mirror of the writer's counter,
    /// for scrapes).
    epochs: Arc<Gauge>,
    /// Ingest queue depth at the last refresh.
    queue_depth: Arc<Gauge>,
    /// Deepest the ingest queue ever got, at the last refresh.
    queue_depth_max: Arc<Gauge>,
    /// Poisoned-lock recoveries on the queue's read-only stats paths, at the
    /// last refresh.
    lock_poisoned: Arc<Gauge>,
}

impl ServerMetrics {
    /// Registers the serving-layer instruments into `registry` (idempotent —
    /// re-registering returns the same atomics).
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            updates_enqueued: registry
                .counter("ink_serve_updates_enqueued_total", "Updates admitted to the queue"),
            updates_rejected: registry
                .counter("ink_serve_updates_rejected_total", "Updates rejected by admission control"),
            updates_dropped: registry.counter(
                "ink_serve_updates_dropped_total",
                "Updates evicted by drop-oldest admission control",
            ),
            events_received: registry.counter(
                "ink_serve_events_received_total",
                "Edge changes received across admitted updates (pre-coalescing)",
            ),
            events_applied: registry.counter(
                "ink_serve_events_applied_total",
                "Edge changes applied after coalescing",
            ),
            queries: registry
                .counter("ink_serve_queries_total", "Queries answered (embedding + top-k)"),
            flushes: registry.counter("ink_serve_flushes_total", "Flush barriers honoured"),
            accept_errors: registry.counter(
                "ink_serve_accept_errors_total",
                "Transient accept() failures the listener retried past",
            ),
            batches: registry
                .counter("ink_serve_batch_frames_total", "v2 Batch container frames decoded"),
            batched_requests: registry.counter(
                "ink_serve_batched_requests_total",
                "Requests carried inside v2 Batch containers",
            ),
            stalls: registry.counter(
                "ink_serve_conn_stalls_total",
                "Connection stalls from Block backpressure (full shard paused one connection)",
            ),
            apply_errors: registry.counter(
                "ink_serve_apply_errors_total",
                "Epochs whose backend apply reported an error (audit breach or poisoned pool)",
            ),
            connections: registry.gauge("ink_serve_connections", "Live client connections"),
            query_latency: registry.histogram(
                "ink_serve_query_latency_ns",
                "Per-query service latency in nanoseconds",
            ),
            admission_wait: registry.histogram(
                "ink_serve_admission_wait_ns",
                "Admission-to-apply wait per drained update batch in nanoseconds",
            ),
            apply_latency: registry.histogram(
                "ink_serve_apply_ns",
                "Apply-only service time per non-empty epoch in nanoseconds",
            ),
            epochs: registry.gauge("ink_serve_epochs", "Last published snapshot epoch"),
            queue_depth: registry.gauge("ink_serve_queue_depth", "Ingest queue depth"),
            queue_depth_max: registry
                .gauge("ink_serve_queue_depth_max", "Deepest the ingest queue ever got"),
            lock_poisoned: registry.gauge(
                "ink_serve_lock_poisoned",
                "Poisoned-lock recoveries on the queue's read-only stats paths",
            ),
        }
    }

    /// Records one query's service time (lock-free, allocation-free).
    pub fn record_query(&self, elapsed: Duration) {
        self.queries.inc();
        self.query_latency.record(elapsed.as_nanos() as u64);
    }

    /// Refreshes the scrape-visible gauges that live with the queue and the
    /// writer rather than with a request handler.
    pub fn set_queue_gauges(
        &self,
        epochs: u64,
        queue_depth: u64,
        max_queue_depth: u64,
        lock_poisoned: u64,
    ) {
        self.epochs.set_u64(epochs);
        self.queue_depth.set_u64(queue_depth);
        self.queue_depth_max.set_u64(max_queue_depth);
        self.lock_poisoned.set_u64(lock_poisoned);
    }

    /// Folds the counters into a [`ServeStats`]; the queue/epoch fields come
    /// from the caller (they live with the queue and the writer). Latency
    /// percentiles are histogram estimates (within one log bucket, ≤ 12.5 %
    /// relative); the max is exact.
    pub fn serve_stats(
        &self,
        epochs: u64,
        queue_depth: u64,
        max_queue_depth: u64,
        lock_poisoned: u64,
    ) -> ServeStats {
        self.set_queue_gauges(epochs, queue_depth, max_queue_depth, lock_poisoned);
        let q = |p: f64| Duration::from_nanos(self.query_latency.quantile(p));
        ServeStats {
            updates_enqueued: self.updates_enqueued.get(),
            updates_rejected: self.updates_rejected.get(),
            updates_dropped: self.updates_dropped.get(),
            events_received: self.events_received.get(),
            events_applied: self.events_applied.get(),
            queries: self.queries.get(),
            flushes: self.flushes.get(),
            accept_errors: self.accept_errors.get(),
            epochs,
            queue_depth,
            max_queue_depth,
            lock_poisoned,
            query_latency: (
                q(0.50),
                q(0.90),
                q(0.99),
                Duration::from_nanos(self.query_latency.max()),
            ),
            admission_wait: quantiles(&self.admission_wait),
            apply_latency: quantiles(&self.apply_latency),
        }
    }
}

/// (p50, p90, p99, max) out of a latency histogram; the max is exact.
fn quantiles(h: &Histogram) -> (Duration, Duration, Duration, Duration) {
    (
        Duration::from_nanos(h.quantile(0.50)),
        Duration::from_nanos(h.quantile(0.90)),
        Duration::from_nanos(h.quantile(0.99)),
        Duration::from_nanos(h.max()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_fold_counters_and_percentiles() {
        let registry = MetricsRegistry::new();
        let m = ServerMetrics::register(&registry);
        m.updates_enqueued.add(5);
        m.events_received.add(50);
        m.events_applied.add(40);
        for i in 1..=100u64 {
            m.record_query(Duration::from_micros(i));
        }
        m.admission_wait.record(Duration::from_micros(200).as_nanos() as u64);
        m.apply_latency.record(Duration::from_micros(30).as_nanos() as u64);
        let s = m.serve_stats(7, 2, 9, 1);
        assert_eq!(s.updates_enqueued, 5);
        assert_eq!(s.admission_wait.3, Duration::from_micros(200), "max is exact");
        assert_eq!(s.apply_latency.3, Duration::from_micros(30), "max is exact");
        assert_eq!(s.queries, 100);
        assert_eq!(s.epochs, 7);
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.max_queue_depth, 9);
        assert_eq!(s.lock_poisoned, 1);
        assert_eq!(s.query_latency.3, Duration::from_micros(100), "max is exact");
        assert!(s.query_latency.0 <= s.query_latency.2);
        // Histogram estimates never undershoot the exact percentile and stay
        // within one log bucket (≤ 12.5 % relative).
        let p50 = s.query_latency.0.as_nanos() as f64;
        assert!((50_000.0..=57_000.0).contains(&p50), "p50 estimate {p50} out of bucket");
        // The same numbers are scrapeable.
        let text = registry.render_prometheus();
        assert!(text.contains("ink_serve_updates_enqueued_total 5"));
        assert!(text.contains("ink_serve_query_latency_ns_count 100"));
        assert!(text.contains("ink_serve_epochs 7"));
    }

    #[test]
    fn latency_histogram_is_bounded_and_lock_free() {
        // The old mutex-guarded ring capped retention at 4096 samples; the
        // histogram keeps *all* samples at fixed memory instead.
        let registry = MetricsRegistry::new();
        let m = ServerMetrics::register(&registry);
        let before = m.query_latency.bytes();
        for _ in 0..10_000 {
            m.record_query(Duration::from_micros(1));
        }
        assert_eq!(m.queries.get(), 10_000);
        assert_eq!(m.query_latency.count(), 10_000);
        assert_eq!(m.query_latency.bytes(), before, "record path must not allocate");
    }
}
