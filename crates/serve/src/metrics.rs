//! Server-side counters and query-latency tracking.
//!
//! Handlers bump lock-free atomics on every request; query latencies go
//! into a small mutex-guarded ring (same windowing idea as the session's
//! batch-latency ring). [`ServerMetrics::serve_stats`] folds everything into
//! the core [`ServeStats`] struct so the `stats` request and the bench
//! artifacts share one schema.

use inkstream::ServeStats;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Shared request counters (one instance per server).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Updates admitted to the queue.
    pub updates_enqueued: AtomicU64,
    /// Updates rejected by admission control.
    pub updates_rejected: AtomicU64,
    /// Updates evicted by drop-oldest admission control.
    pub updates_dropped: AtomicU64,
    /// Edge changes received across admitted updates.
    pub events_received: AtomicU64,
    /// Edge changes applied after coalescing.
    pub events_applied: AtomicU64,
    /// Queries answered (embedding + top-k).
    pub queries: AtomicU64,
    /// Flush barriers honoured.
    pub flushes: AtomicU64,
    /// Transient `accept()` failures the listener retried past.
    pub accept_errors: AtomicU64,
    query_latencies: Mutex<VecDeque<Duration>>,
}

/// Retained query-latency samples.
const LATENCY_WINDOW: usize = 4096;

impl ServerMetrics {
    /// Records one query's service time.
    pub fn record_query(&self, elapsed: Duration) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.query_latencies.lock().expect("metrics lock poisoned");
        if ring.len() == LATENCY_WINDOW {
            ring.pop_front();
        }
        ring.push_back(elapsed);
    }

    /// Folds the counters into a [`ServeStats`]; the queue/epoch fields come
    /// from the caller (they live with the queue and the writer).
    pub fn serve_stats(&self, epochs: u64, queue_depth: u64, max_queue_depth: u64) -> ServeStats {
        let mut sorted: Vec<Duration> =
            self.query_latencies.lock().expect("metrics lock poisoned").iter().copied().collect();
        sorted.sort_unstable();
        let pct = |p: f64| -> Duration {
            if sorted.is_empty() {
                return Duration::ZERO;
            }
            let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
            sorted[idx]
        };
        ServeStats {
            updates_enqueued: self.updates_enqueued.load(Ordering::Relaxed),
            updates_rejected: self.updates_rejected.load(Ordering::Relaxed),
            updates_dropped: self.updates_dropped.load(Ordering::Relaxed),
            events_received: self.events_received.load(Ordering::Relaxed),
            events_applied: self.events_applied.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            epochs,
            queue_depth,
            max_queue_depth,
            query_latency: (pct(0.50), pct(0.90), pct(0.99), sorted.last().copied().unwrap_or_default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_fold_counters_and_percentiles() {
        let m = ServerMetrics::default();
        m.updates_enqueued.store(5, Ordering::Relaxed);
        m.events_received.store(50, Ordering::Relaxed);
        m.events_applied.store(40, Ordering::Relaxed);
        for i in 1..=100u64 {
            m.record_query(Duration::from_micros(i));
        }
        let s = m.serve_stats(7, 2, 9);
        assert_eq!(s.updates_enqueued, 5);
        assert_eq!(s.queries, 100);
        assert_eq!(s.epochs, 7);
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.max_queue_depth, 9);
        assert_eq!(s.query_latency.3, Duration::from_micros(100));
        assert!(s.query_latency.0 <= s.query_latency.2);
    }

    #[test]
    fn latency_ring_is_bounded() {
        let m = ServerMetrics::default();
        for _ in 0..(LATENCY_WINDOW + 100) {
            m.record_query(Duration::from_micros(1));
        }
        assert_eq!(m.query_latencies.lock().unwrap().len(), LATENCY_WINDOW);
        assert_eq!(m.queries.load(Ordering::Relaxed), (LATENCY_WINDOW + 100) as u64);
    }
}
