//! Per-connection state for the readiness-based event loop.
//!
//! Each [`Conn`] owns a non-blocking socket plus two buffers:
//!
//! * an **inbound** byte buffer that accumulates reads until whole frames
//!   can be peeled off (a frame arriving one byte at a time never desyncs
//!   the stream — parsing only consumes complete frames), and
//! * an **outbound** segment queue that preserves strict request order for
//!   pipelined clients. Contiguous response bytes coalesce into one
//!   segment (one `write` flushes many responses); a pending flush barrier
//!   is an explicit [`Segment::Flush`] placeholder that blocks the writer
//!   side of the queue until the ingest writer reports the barrier's epoch,
//!   at which point it is replaced in place by the encoded `Flushed` frame.
//!
//! Backpressure is per-connection, never per-thread: a connection whose
//! update hits a full shard under `Block` mode parks its half-processed
//! frame in [`Conn::pending`] and stops reading; a connection whose peer
//! reads slower than it queries stops being read once
//! [`OUT_HIGH_WATER`] bytes are buffered. The event loop keeps serving
//! every other connection either way.

use crate::protocol::Request;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Stop reading from a connection once this many response bytes are queued
/// for it — per-connection flow control against slow readers.
pub(crate) const OUT_HIGH_WATER: usize = 8 << 20;

/// Cap on bytes read per readiness event, so one firehose connection cannot
/// starve the rest of the loop (level-triggered polling re-fires for the
/// remainder).
const READ_QUANTUM: usize = 256 << 10;

/// One entry in the ordered outbound queue.
#[derive(Debug)]
pub(crate) enum Segment {
    /// Encoded frames plus the count of bytes already written to the socket.
    Bytes(Vec<u8>, usize),
    /// A flush barrier still in flight, keyed by server-assigned flush id.
    /// Everything behind it waits; [`Conn::complete_flush`] turns it into
    /// bytes.
    Flush(u64),
}

/// A frame whose requests are partially processed — the stall point for
/// `Block` backpressure. `reqs[next..]` still need answers; for a batch
/// frame, `body`/`count` hold the slots already encoded.
#[derive(Debug)]
pub(crate) struct PendingFrame {
    /// The decoded requests of the frame (one element for a plain frame).
    pub reqs: Vec<Request>,
    /// Index of the first unprocessed request.
    pub next: usize,
    /// Batch only: the length-prefixed response slots encoded so far.
    pub body: Vec<u8>,
    /// Batch only: slots encoded into `body`.
    pub count: u32,
    /// Whether this frame was a `Batch` container.
    pub is_batch: bool,
}

/// What a read pass observed.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum ReadOutcome {
    /// Socket drained (or quantum reached); connection healthy.
    Open,
    /// Peer half-closed; serve out the queued responses, then drop.
    Eof,
    /// Hard I/O error; drop the connection now.
    Dead,
}

/// One client connection owned by the event loop.
#[derive(Debug)]
pub(crate) struct Conn {
    /// The non-blocking socket.
    pub stream: TcpStream,
    /// The poll token this connection is registered under.
    pub token: usize,
    /// Stalled half-processed frame, if any (Block backpressure).
    pub pending: Option<PendingFrame>,
    /// Peer sent EOF; no more reads.
    pub peer_eof: bool,
    /// Connection is unusable; the loop reaps it.
    pub dead: bool,
    /// Interest bits currently registered with the poll `(read, write)`,
    /// so the loop only issues `reregister` on change.
    pub registered: (bool, bool),
    read_buf: Vec<u8>,
    read_pos: usize,
    out: VecDeque<Segment>,
    /// Unwritten outbound bytes across all `Bytes` segments.
    out_bytes: usize,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, token: usize) -> Self {
        Self {
            stream,
            token,
            pending: None,
            peer_eof: false,
            dead: false,
            registered: (false, false),
            read_buf: Vec::new(),
            read_pos: 0,
            out: VecDeque::new(),
            out_bytes: 0,
        }
    }

    /// Reads whatever the socket has (up to the fairness quantum) into the
    /// inbound buffer.
    pub(crate) fn fill_read_buf(&mut self) -> ReadOutcome {
        let mut tmp = [0u8; 16 << 10];
        let mut taken = 0usize;
        loop {
            match self.stream.read(&mut tmp) {
                Ok(0) => {
                    self.peer_eof = true;
                    return ReadOutcome::Eof;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&tmp[..n]);
                    taken += n;
                    if taken >= READ_QUANTUM {
                        return ReadOutcome::Open;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadOutcome::Open,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return ReadOutcome::Dead;
                }
            }
        }
    }

    /// Peels the next complete frame payload off the inbound buffer.
    /// `Ok(None)` means "need more bytes"; `Err` means the peer sent a
    /// hostile length and must be dropped.
    pub(crate) fn next_frame(&mut self, max_frame: usize) -> Result<Option<Vec<u8>>, ()> {
        let avail = &self.read_buf[self.read_pos..];
        if avail.len() < 4 {
            self.compact();
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes checked")) as usize;
        if len > max_frame {
            return Err(());
        }
        if avail.len() < 4 + len {
            self.compact();
            return Ok(None);
        }
        let payload = avail[4..4 + len].to_vec();
        self.read_pos += 4 + len;
        Ok(Some(payload))
    }

    /// Drops consumed bytes from the front of the inbound buffer.
    fn compact(&mut self) {
        if self.read_pos > 0 {
            self.read_buf.drain(..self.read_pos);
            self.read_pos = 0;
        }
    }

    /// Appends response bytes produced by `build` to the outbound queue,
    /// coalescing into the trailing segment when possible.
    pub(crate) fn push_bytes(
        &mut self,
        build: impl FnOnce(&mut Vec<u8>) -> io::Result<()>,
    ) -> io::Result<()> {
        if let Some(Segment::Bytes(buf, _)) = self.out.back_mut() {
            let before = buf.len();
            build(buf)?;
            self.out_bytes += buf.len() - before;
            return Ok(());
        }
        let mut buf = Vec::new();
        build(&mut buf)?;
        self.out_bytes += buf.len();
        self.out.push_back(Segment::Bytes(buf, 0));
        Ok(())
    }

    /// Queues a flush-barrier placeholder; responses to later pipelined
    /// requests will queue behind it.
    pub(crate) fn push_flush_marker(&mut self, flush_id: u64) {
        self.out.push_back(Segment::Flush(flush_id));
    }

    /// Replaces the placeholder for `flush_id` with the bytes `build`
    /// produces. Returns false when no such barrier is queued (the
    /// connection raced shutdown).
    pub(crate) fn complete_flush(
        &mut self,
        flush_id: u64,
        build: impl FnOnce(&mut Vec<u8>) -> io::Result<()>,
    ) -> io::Result<bool> {
        let Some(slot) =
            self.out.iter_mut().find(|s| matches!(s, Segment::Flush(id) if *id == flush_id))
        else {
            return Ok(false);
        };
        let mut buf = Vec::new();
        build(&mut buf)?;
        self.out_bytes += buf.len();
        *slot = Segment::Bytes(buf, 0);
        Ok(true)
    }

    /// Writes queued segments until the socket would block or a pending
    /// flush barrier heads the queue.
    pub(crate) fn write_ready(&mut self) {
        while let Some(front) = self.out.front_mut() {
            let (buf, off) = match front {
                Segment::Flush(_) => return, // barrier still in flight
                Segment::Bytes(buf, off) => (buf, off),
            };
            while *off < buf.len() {
                match self.stream.write(&buf[*off..]) {
                    Ok(0) => {
                        self.dead = true;
                        return;
                    }
                    Ok(n) => {
                        *off += n;
                        self.out_bytes -= n;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.dead = true;
                        return;
                    }
                }
            }
            self.out.pop_front();
        }
    }

    /// The loop should poll this connection for readability: healthy, not
    /// stalled on admission, and not buffering past the high-water mark.
    pub(crate) fn wants_read(&self) -> bool {
        !self.dead && !self.peer_eof && self.pending.is_none() && self.out_bytes < OUT_HIGH_WATER
    }

    /// The loop should poll this connection for writability: bytes are
    /// queued ahead of any flush barrier.
    pub(crate) fn wants_write(&self) -> bool {
        !self.dead && matches!(self.out.front(), Some(Segment::Bytes(..)))
    }

    /// Nothing queued at all — safe to drop once the peer is gone.
    pub(crate) fn is_drained(&self) -> bool {
        self.out.is_empty()
    }

    /// Flush ids of barriers still queued on this connection (for waiter
    /// cleanup when the connection dies first).
    pub(crate) fn queued_flush_ids(&self) -> Vec<u64> {
        self.out
            .iter()
            .filter_map(|s| match s {
                Segment::Flush(id) => Some(*id),
                Segment::Bytes(..) => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Conn, TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        (Conn::new(server_side, 7), peer)
    }

    #[test]
    fn frames_assemble_from_dribbled_bytes() {
        use std::io::Write as _;
        let (mut conn, mut peer) = pair();
        let payload = b"hello frame".to_vec();
        let mut wire = (payload.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&payload);
        // Send one byte at a time; the frame must come out exactly once.
        for chunk in wire.chunks(1) {
            peer.write_all(chunk).unwrap();
            peer.flush().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(1));
            conn.fill_read_buf();
        }
        assert_eq!(conn.next_frame(1 << 20).unwrap(), Some(payload));
        assert_eq!(conn.next_frame(1 << 20).unwrap(), None, "no second frame");
    }

    #[test]
    fn hostile_length_is_rejected() {
        use std::io::Write as _;
        let (mut conn, mut peer) = pair();
        peer.write_all(&u32::MAX.to_le_bytes()).unwrap();
        peer.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        conn.fill_read_buf();
        assert!(conn.next_frame(1 << 20).is_err());
    }

    #[test]
    fn out_queue_preserves_order_across_flush_barriers() {
        let (mut conn, _peer) = pair();
        conn.push_bytes(|b| {
            b.extend_from_slice(b"aa");
            Ok(())
        })
        .unwrap();
        conn.push_flush_marker(42);
        conn.push_bytes(|b| {
            b.extend_from_slice(b"bb");
            Ok(())
        })
        .unwrap();
        assert_eq!(conn.queued_flush_ids(), vec![42]);
        // The barrier heads everything queued after it; the first segment
        // drains, then writing stops at the barrier.
        conn.write_ready();
        assert!(!conn.wants_write(), "blocked on the in-flight flush");
        assert!(!conn.is_drained());
        // Completion splices bytes in place and unblocks the tail.
        assert!(conn
            .complete_flush(42, |b| {
                b.extend_from_slice(b"FF");
                Ok(())
            })
            .unwrap());
        assert!(conn.wants_write());
        conn.write_ready();
        assert!(conn.is_drained());
    }

    #[test]
    fn consecutive_responses_coalesce_into_one_segment() {
        let (mut conn, _peer) = pair();
        for _ in 0..10 {
            conn.push_bytes(|b| {
                b.extend_from_slice(&[0u8; 8]);
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(conn.out.len(), 1, "ten responses, one write segment");
        assert_eq!(conn.out_bytes, 80);
    }

    #[test]
    fn high_water_pauses_reading() {
        let (mut conn, _peer) = pair();
        assert!(conn.wants_read());
        conn.push_bytes(|b| {
            b.resize(OUT_HIGH_WATER + 1, 0);
            Ok(())
        })
        .unwrap();
        assert!(!conn.wants_read(), "slow reader: stop accepting new requests");
        assert!(conn.wants_write());
    }
}
