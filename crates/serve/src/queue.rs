//! The bounded ingest queue with pluggable admission control.
//!
//! Connection handlers push update batches and flush barriers; the single
//! writer thread drains them in FIFO order. Capacity counts *update* items
//! only — flush barriers are tiny control messages and are always admitted,
//! so a saturated queue can still be flushed and shut down.
//!
//! When an update arrives and the queue is full, the configured
//! [`Backpressure`] mode decides:
//!
//! * [`Backpressure::Block`] — the handler thread waits for space (and thus
//!   the TCP connection exerts end-to-end backpressure on its client),
//! * [`Backpressure::Reject`] — the push returns
//!   [`Admission::Rejected`] immediately and the client gets a
//!   `retry_after_ms` hint,
//! * [`Backpressure::DropOldest`] — the oldest queued *update* is evicted
//!   (freshest-data-wins, the streaming-telemetry policy) and the new one
//!   admitted.

use ink_graph::EdgeChange;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// What to do with an update that arrives while the queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backpressure {
    /// Make the submitting connection wait for space.
    Block,
    /// Turn the update away with a retry hint of this many milliseconds.
    Reject {
        /// Backoff hint returned to the client.
        retry_after_ms: u32,
    },
    /// Evict the oldest queued update to make room.
    DropOldest,
}

/// One queued unit of work.
#[derive(Debug)]
pub enum QueueItem {
    /// An admitted update batch.
    Updates(Vec<EdgeChange>),
    /// A flush barrier; the writer sends the post-apply epoch through the
    /// channel once everything queued before it has been published.
    Flush(crossbeam::channel::Sender<u64>),
}

/// The verdict on one push.
#[derive(Debug, PartialEq, Eq)]
pub enum Admission {
    /// Enqueued.
    Accepted,
    /// Turned away ([`Backpressure::Reject`]); retry after the hint.
    Rejected {
        /// Backoff hint in milliseconds.
        retry_after_ms: u32,
    },
    /// Enqueued after evicting this many older updates
    /// ([`Backpressure::DropOldest`]).
    AcceptedDropped {
        /// Updates evicted to make room (0 when the queue had space).
        dropped: u64,
    },
    /// The queue is closed (server shutting down).
    Closed,
}

#[derive(Debug, Default)]
struct Inner {
    items: VecDeque<QueueItem>,
    pending_updates: usize,
    max_depth: usize,
    closed: bool,
}

/// A bounded MPSC queue of [`QueueItem`]s with admission control.
#[derive(Debug)]
pub struct IngestQueue {
    inner: Mutex<Inner>,
    /// Signalled when space frees up (pop or eviction).
    space: Condvar,
    /// Signalled when an item arrives or the queue closes.
    ready: Condvar,
    capacity: usize,
    mode: Backpressure,
    /// Read-only accessors recovered this many poisoned-lock acquisitions.
    poisoned_reads: AtomicU64,
}

impl IngestQueue {
    /// A queue admitting at most `capacity` pending updates.
    ///
    /// # Panics
    ///
    /// If `capacity` is 0 — nothing could ever be admitted.
    pub fn new(capacity: usize, mode: Backpressure) -> Self {
        assert!(capacity >= 1, "IngestQueue: capacity must be at least 1");
        Self {
            inner: Mutex::new(Inner::default()),
            space: Condvar::new(),
            ready: Condvar::new(),
            capacity,
            mode,
            poisoned_reads: AtomicU64::new(0),
        }
    }

    /// Lock acquisition for read-only accessors. A poisoned lock means some
    /// pusher or the writer panicked mid-operation — the queue contents may
    /// be inconsistent, but the stats counters read here are plain integers
    /// that are always safe to report, and a monitoring scrape must not take
    /// the server down. Recoveries are counted so operators can see them in
    /// [`IngestQueue::poisoned_reads`] / the `stats` document. Write paths
    /// (push/pop) keep panicking: they would act on the inconsistent state.
    fn read_lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e: PoisonError<_>| {
            self.poisoned_reads.fetch_add(1, Ordering::Relaxed);
            e.into_inner()
        })
    }

    /// Submits an update batch under the configured admission policy.
    pub fn push_updates(&self, changes: Vec<EdgeChange>) -> Admission {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Admission::Closed;
        }
        let mut dropped = 0u64;
        if inner.pending_updates >= self.capacity {
            match self.mode {
                Backpressure::Block => {
                    while inner.pending_updates >= self.capacity && !inner.closed {
                        inner = self.space.wait(inner).expect("queue lock poisoned");
                    }
                    if inner.closed {
                        return Admission::Closed;
                    }
                }
                Backpressure::Reject { retry_after_ms } => {
                    return Admission::Rejected { retry_after_ms };
                }
                Backpressure::DropOldest => {
                    while inner.pending_updates >= self.capacity {
                        let Some(pos) =
                            inner.items.iter().position(|i| matches!(i, QueueItem::Updates(_)))
                        else {
                            break; // only barriers queued; nothing to evict
                        };
                        inner.items.remove(pos);
                        inner.pending_updates -= 1;
                        dropped += 1;
                    }
                }
            }
        }
        inner.items.push_back(QueueItem::Updates(changes));
        inner.pending_updates += 1;
        inner.max_depth = inner.max_depth.max(inner.pending_updates);
        self.ready.notify_one();
        if dropped > 0 {
            Admission::AcceptedDropped { dropped }
        } else {
            Admission::Accepted
        }
    }

    /// Submits a flush barrier (always admitted, even when full or closed —
    /// a closing writer still drains and answers barriers).
    pub fn push_flush(&self, ack: crossbeam::channel::Sender<u64>) -> Admission {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Admission::Closed;
        }
        inner.items.push_back(QueueItem::Flush(ack));
        self.ready.notify_one();
        Admission::Accepted
    }

    /// Takes up to `max` items in FIFO order, waiting up to `timeout` for
    /// the first one. Empty result means the timeout elapsed (or the queue
    /// closed while empty) — callers check [`IngestQueue::is_closed`].
    pub fn pop_batch(&self, max: usize, timeout: Duration) -> Vec<QueueItem> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.items.is_empty() && !inner.closed {
            (inner, _) = self
                .ready
                .wait_timeout_while(inner, timeout, |i| i.items.is_empty() && !i.closed)
                .expect("queue lock poisoned");
        }
        let take = inner.items.len().min(max.max(1));
        let mut out = Vec::with_capacity(take);
        for _ in 0..take {
            let item = inner.items.pop_front().expect("len checked");
            if matches!(item, QueueItem::Updates(_)) {
                inner.pending_updates -= 1;
            }
            out.push(item);
        }
        if take > 0 {
            self.space.notify_all();
        }
        out
    }

    /// Pending update count (excludes flush barriers). Survives a poisoned
    /// lock — see [`IngestQueue::poisoned_reads`].
    pub fn depth(&self) -> usize {
        self.read_lock().pending_updates
    }

    /// Deepest the queue ever got. Survives a poisoned lock — see
    /// [`IngestQueue::poisoned_reads`].
    pub fn max_depth(&self) -> usize {
        self.read_lock().max_depth
    }

    /// How many times a read-only accessor found the lock poisoned and
    /// recovered instead of panicking. Non-zero means a thread panicked
    /// while holding the queue lock; the server keeps answering `stats` and
    /// `metrics` but the count surfaces the incident.
    pub fn poisoned_reads(&self) -> u64 {
        self.poisoned_reads.load(Ordering::Relaxed)
    }

    /// Closes the queue: further pushes return [`Admission::Closed`];
    /// already-queued items remain poppable so the writer can drain.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        inner.closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// True once [`IngestQueue::close`] has run. Survives a poisoned lock —
    /// see [`IngestQueue::poisoned_reads`].
    pub fn is_closed(&self) -> bool {
        self.read_lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn upd(n: u32) -> Vec<EdgeChange> {
        vec![EdgeChange::insert(n, n + 1)]
    }

    #[test]
    fn fifo_order_is_preserved() {
        let q = IngestQueue::new(8, Backpressure::Block);
        for i in 0..5 {
            assert_eq!(q.push_updates(upd(i)), Admission::Accepted);
        }
        let items = q.pop_batch(16, Duration::ZERO);
        assert_eq!(items.len(), 5);
        for (i, item) in items.iter().enumerate() {
            match item {
                QueueItem::Updates(c) => assert_eq!(c[0].src, i as u32),
                _ => panic!("expected updates"),
            }
        }
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn reject_mode_turns_away_when_full() {
        let q = IngestQueue::new(2, Backpressure::Reject { retry_after_ms: 7 });
        assert_eq!(q.push_updates(upd(0)), Admission::Accepted);
        assert_eq!(q.push_updates(upd(1)), Admission::Accepted);
        assert_eq!(q.push_updates(upd(2)), Admission::Rejected { retry_after_ms: 7 });
        assert_eq!(q.depth(), 2);
        q.pop_batch(1, Duration::ZERO);
        assert_eq!(q.push_updates(upd(3)), Admission::Accepted, "space freed");
    }

    #[test]
    fn drop_oldest_evicts_front_updates_only() {
        let q = IngestQueue::new(2, Backpressure::DropOldest);
        q.push_updates(upd(0));
        let (tx, rx) = crossbeam::channel::bounded(1);
        q.push_flush(tx);
        q.push_updates(upd(1));
        assert_eq!(q.push_updates(upd(2)), Admission::AcceptedDropped { dropped: 1 });
        let items = q.pop_batch(16, Duration::ZERO);
        // The barrier survived; update 0 was evicted.
        assert_eq!(items.len(), 3);
        assert!(matches!(&items[0], QueueItem::Flush(_)));
        match (&items[1], &items[2]) {
            (QueueItem::Updates(a), QueueItem::Updates(b)) => {
                assert_eq!((a[0].src, b[0].src), (1, 2));
            }
            _ => panic!("expected updates"),
        }
        drop(rx);
    }

    #[test]
    fn block_mode_waits_for_space() {
        let q = Arc::new(IngestQueue::new(1, Backpressure::Block));
        q.push_updates(upd(0));
        let q2 = q.clone();
        let pusher = std::thread::spawn(move || q2.push_updates(upd(1)));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.depth(), 1, "pusher is parked, not admitted");
        let popped = q.pop_batch(1, Duration::ZERO);
        assert_eq!(popped.len(), 1);
        assert_eq!(pusher.join().unwrap(), Admission::Accepted);
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn close_wakes_blocked_pushers_and_rejects_new_work() {
        let q = Arc::new(IngestQueue::new(1, Backpressure::Block));
        q.push_updates(upd(0));
        let q2 = q.clone();
        let pusher = std::thread::spawn(move || q2.push_updates(upd(1)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(pusher.join().unwrap(), Admission::Closed);
        assert_eq!(q.push_updates(upd(2)), Admission::Closed);
        // The queued item is still drainable.
        assert_eq!(q.pop_batch(4, Duration::ZERO).len(), 1);
    }

    #[test]
    fn pop_times_out_when_empty() {
        let q = IngestQueue::new(4, Backpressure::Block);
        let t = std::time::Instant::now();
        assert!(q.pop_batch(4, Duration::from_millis(30)).is_empty());
        assert!(t.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn pop_wakes_on_push_from_another_thread() {
        let q = Arc::new(IngestQueue::new(4, Backpressure::Block));
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop_batch(4, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        q.push_updates(upd(0));
        let items = t.join().unwrap();
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn max_depth_tracks_high_water_mark() {
        let q = IngestQueue::new(8, Backpressure::Block);
        for i in 0..5 {
            q.push_updates(upd(i));
        }
        q.pop_batch(16, Duration::ZERO);
        q.push_updates(upd(9));
        assert_eq!(q.max_depth(), 5);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        IngestQueue::new(0, Backpressure::Block);
    }

    #[test]
    fn drop_oldest_never_evicts_a_flush_barrier() {
        let q = IngestQueue::new(1, Backpressure::DropOldest);
        q.push_updates(upd(0));
        let (tx_a, _rx_a) = crossbeam::channel::bounded(1);
        let (tx_b, _rx_b) = crossbeam::channel::bounded(1);
        q.push_flush(tx_a);
        q.push_flush(tx_b);
        // Full queue with barriers in front of the only update: eviction must
        // skip past both barriers and take the update.
        assert_eq!(q.push_updates(upd(1)), Admission::AcceptedDropped { dropped: 1 });
        let items = q.pop_batch(16, Duration::ZERO);
        assert_eq!(items.len(), 3);
        assert!(matches!(&items[0], QueueItem::Flush(_)), "first barrier survived");
        assert!(matches!(&items[1], QueueItem::Flush(_)), "second barrier survived");
        match &items[2] {
            QueueItem::Updates(c) => assert_eq!(c[0].src, 1, "newest update admitted"),
            _ => panic!("expected the new update last"),
        }
    }

    #[test]
    fn max_depth_ignores_barrier_admission() {
        let q = IngestQueue::new(8, Backpressure::Block);
        q.push_updates(upd(0));
        q.push_updates(upd(1));
        assert_eq!(q.max_depth(), 2);
        // Barriers are control messages outside the capacity accounting;
        // admitting them must not move the update high-water mark.
        let (tx_a, _rx_a) = crossbeam::channel::bounded(1);
        let (tx_b, _rx_b) = crossbeam::channel::bounded(1);
        let (tx_c, _rx_c) = crossbeam::channel::bounded(1);
        q.push_flush(tx_a);
        q.push_flush(tx_b);
        q.push_flush(tx_c);
        assert_eq!(q.depth(), 2, "barriers are not pending updates");
        assert_eq!(q.max_depth(), 2, "barriers must not bump the high-water mark");
        q.pop_batch(16, Duration::ZERO);
        q.push_updates(upd(2));
        assert_eq!(q.max_depth(), 2, "high-water mark persists across a drain");
        q.push_updates(upd(3));
        q.push_updates(upd(4));
        assert_eq!(q.max_depth(), 3, "new deeper backlog raises it");
    }

    #[test]
    fn stats_reads_survive_a_poisoned_lock_and_count_recoveries() {
        let q = Arc::new(IngestQueue::new(4, Backpressure::Block));
        q.push_updates(upd(0));
        q.push_updates(upd(1));
        // Poison the mutex: a thread panics while holding the guard, the way
        // a crashed pusher or writer would.
        let q2 = q.clone();
        let _ = std::thread::spawn(move || {
            let _guard = q2.inner.lock().unwrap();
            panic!("simulated crash while holding the queue lock");
        })
        .join();
        assert_eq!(q.poisoned_reads(), 0, "nothing recovered yet");
        // Read-only stats paths keep working and report the pre-crash state.
        assert_eq!(q.depth(), 2);
        assert_eq!(q.max_depth(), 2);
        assert!(!q.is_closed());
        assert_eq!(q.poisoned_reads(), 3, "each recovery is counted");
    }
}
