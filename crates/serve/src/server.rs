//! The threaded TCP server.
//!
//! Thread layout (no async runtime — std::net blocking I/O, matching the
//! offline shims):
//!
//! * **accept thread** — non-blocking `accept` loop; spawns one handler
//!   thread per connection,
//! * **handler threads** — decode frames, answer queries straight from the
//!   current [`inkstream::snapshot::EmbeddingSnapshot`] (never touching the
//!   engine), and submit updates/flushes to the [`IngestQueue`],
//! * **writer thread** — the only thread that owns the [`StreamSession`]:
//!   drains the queue, coalesces everything pending into one net
//!   [`DeltaBatch`], applies it through the sharded pipeline, and publishes
//!   a fresh snapshot epoch.
//!
//! Readers therefore never block on an in-flight update: a query served
//! mid-apply simply sees the previous epoch. [`ServerHandle::shutdown`]
//! closes the queue, lets the writer drain what was admitted, writes a
//! checkpoint (when configured) and returns the session for inspection.

use crate::metrics::ServerMetrics;
use crate::protocol::{read_frame, write_frame, Request, Response, MAX_FRAME};
use crate::queue::{Admission, Backpressure, IngestQueue, QueueItem};
use ink_graph::DeltaBatch;
use ink_obs::{MetricsRegistry, Tracer};
use inkstream::snapshot::{EmbeddingSnapshot, SnapshotPublisher, SnapshotReader};
use inkstream::{SessionSummary, StreamSession};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Ingest queue capacity (pending update batches).
    pub queue_capacity: usize,
    /// What happens to updates arriving while the queue is full.
    pub backpressure: Backpressure,
    /// Maximum update batches drained (and coalesced) into one epoch.
    pub max_drain: usize,
    /// Where the shutdown checkpoint goes (`None` disables it).
    pub checkpoint_path: Option<PathBuf>,
    /// Cadence of the writer's queue poll and the accept loop's
    /// non-blocking retry sleep. Handler reads are fully blocking (a
    /// timeout mid-frame would desync the stream); shutdown unblocks them
    /// by closing their sockets instead.
    pub poll_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            backpressure: Backpressure::Block,
            max_drain: 32,
            checkpoint_path: None,
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// Live connection sockets, so shutdown can close them and unblock handler
/// threads parked in blocking reads. Handler reads carry no timeout — a
/// timeout firing mid-frame would discard partially consumed bytes and
/// desync the framing — so closing the socket is the only wakeup.
#[derive(Default)]
struct ConnRegistry {
    inner: Mutex<ConnRegistryInner>,
}

#[derive(Default)]
struct ConnRegistryInner {
    next_id: u64,
    conns: HashMap<u64, TcpStream>,
    closed: bool,
}

impl ConnRegistry {
    /// Registers a connection's socket handle. `None` once the registry is
    /// closed — the caller must drop the connection instead of serving it
    /// (covers the race where `accept` lands a socket during shutdown).
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let Ok(handle) = stream.try_clone() else { return None };
        let mut inner = self.inner.lock().expect("conn registry lock poisoned");
        if inner.closed {
            return None;
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.conns.insert(id, handle);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.inner.lock().expect("conn registry lock poisoned").conns.remove(&id);
    }

    /// Closes every registered socket (unblocking its handler thread) and
    /// refuses future registrations.
    fn close_all(&self) {
        let mut inner = self.inner.lock().expect("conn registry lock poisoned");
        inner.closed = true;
        for stream in inner.conns.values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        inner.conns.clear();
    }
}

/// Everything the threads share.
struct Shared {
    queue: IngestQueue,
    conns: ConnRegistry,
    metrics: ServerMetrics,
    /// The session's registry (the serve instruments are registered into it
    /// too), rendered by the `Metrics` request.
    registry: Arc<MetricsRegistry>,
    /// The session's span tracer; request handlers add `serve`-category
    /// spans, and the `TraceDump` request dumps the ring.
    tracer: Arc<Tracer>,
    reader: SnapshotReader,
    /// Refreshed by the writer after every epoch; the `stats` request folds
    /// live queue metrics on top.
    summary: Mutex<SessionSummary>,
    epochs: AtomicU64,
    shutdown: AtomicBool,
    /// Vertex-id bound for validating updates before they reach the graph.
    num_vertices: u64,
    directed: bool,
    poll_interval: Duration,
}

impl Shared {
    /// The `stats` response: last published session summary + live serve
    /// counters.
    fn stats_summary(&self) -> SessionSummary {
        let mut summary = self.summary.lock().expect("summary lock poisoned").clone();
        summary.serve = self.metrics.serve_stats(
            self.epochs.load(Ordering::Relaxed),
            self.queue.depth() as u64,
            self.queue.max_depth() as u64,
            self.queue.poisoned_reads(),
        );
        summary
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] aborts the process-local threads detached —
/// call `shutdown` for a graceful drain.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    writer_thread: Option<JoinHandle<StreamSession>>,
    checkpoint_path: Option<PathBuf>,
}

/// The entry point: bind, spawn the thread set, return the handle.
pub struct InkServer;

impl InkServer {
    /// Starts serving `session` on `addr` (use port 0 for an ephemeral
    /// port; the bound address is on the returned handle).
    pub fn bind(
        addr: impl ToSocketAddrs,
        session: StreamSession,
        config: ServeConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let engine = session.engine();
        let (publisher, reader) =
            SnapshotPublisher::new(engine.output().clone());
        let registry = session.metrics().clone();
        let tracer = session.tracer().clone();
        let shared = Arc::new(Shared {
            queue: IngestQueue::new(config.queue_capacity, config.backpressure),
            conns: ConnRegistry::default(),
            metrics: ServerMetrics::register(&registry),
            registry,
            tracer,
            reader,
            summary: Mutex::new(session.summary()),
            epochs: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            num_vertices: engine.graph().num_vertices() as u64,
            directed: engine.graph().is_directed(),
            poll_interval: config.poll_interval,
        });

        let writer_thread = {
            let shared = shared.clone();
            let max_drain = config.max_drain;
            std::thread::Builder::new()
                .name("ink-serve-writer".into())
                .spawn(move || writer_loop(session, publisher, shared, max_drain))?
        };
        let accept_thread = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("ink-serve-accept".into())
                .spawn(move || accept_loop(listener, shared))?
        };

        Ok(ServerHandle {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            writer_thread: Some(writer_thread),
            checkpoint_path: config.checkpoint_path,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.epochs.load(Ordering::Relaxed)
    }

    /// Live summary (same document the `stats` request serves).
    pub fn summary(&self) -> SessionSummary {
        self.shared.stats_summary()
    }

    /// Graceful shutdown: stop admitting work, drain the queue through the
    /// writer, publish the final epoch, write the checkpoint (when
    /// configured) and return the session with the final summary.
    pub fn shutdown(mut self) -> io::Result<(StreamSession, SessionSummary)> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        let writer = self.writer_thread.take().expect("shutdown runs once");
        let session = writer.join().map_err(|_| {
            io::Error::other("ink-serve writer thread panicked")
        })?;
        // The queue has drained and every flush barrier is answered; now
        // close the sockets so handler threads blocked in reads wake up
        // and exit before the accept thread joins them.
        self.shared.conns.close_all();
        if let Some(accept) = self.accept_thread.take() {
            accept.join().map_err(|_| io::Error::other("ink-serve accept thread panicked"))?;
        }
        if let Some(path) = &self.checkpoint_path {
            let mut f = std::fs::File::create(path)?;
            inkstream::checkpoint::save(session.engine(), &mut f)?;
        }
        let summary = self.shared.stats_summary();
        Ok((session, summary))
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Un-graceful path: stop the threads so tests that panic don't hang.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        self.shared.conns.close_all();
    }
}

/// The single thread that owns the engine.
fn writer_loop(
    mut session: StreamSession,
    mut publisher: SnapshotPublisher,
    shared: Arc<Shared>,
    max_drain: usize,
) -> StreamSession {
    loop {
        let items = shared.queue.pop_batch(max_drain, shared.poll_interval);
        if items.is_empty() {
            if shared.queue.is_closed() {
                return session;
            }
            continue;
        }

        let mut changes = Vec::new();
        let mut barriers = Vec::new();
        for item in items {
            match item {
                QueueItem::Updates(c) => changes.extend(c),
                QueueItem::Flush(ack) => barriers.push(ack),
            }
        }

        if !changes.is_empty() {
            let _span = shared.tracer.span("serve", "epoch");
            let received = changes.len() as u64;
            let batch = DeltaBatch::new(changes).coalesce(shared.directed);
            shared.metrics.events_received.add(received);
            shared.metrics.events_applied.add(batch.len() as u64);
            // A Fail drift policy surfaces through the summary's breach
            // counters; the serving loop keeps going either way (the batch
            // was applied before the audit ran).
            let _ = session.ingest(&batch);
            let epoch = shared.epochs.load(Ordering::Relaxed) + 1;
            publisher.publish(session.engine().output(), epoch);
            shared.epochs.store(epoch, Ordering::SeqCst);
            *shared.summary.lock().expect("summary lock poisoned") = session.summary();
        }

        let epoch = shared.epochs.load(Ordering::Relaxed);
        shared.metrics.set_queue_gauges(
            epoch,
            shared.queue.depth() as u64,
            shared.queue.max_depth() as u64,
            shared.queue.poisoned_reads(),
        );
        for ack in barriers {
            shared.metrics.flushes.inc();
            let _ = ack.send(epoch); // a vanished flusher is not an error
        }
    }
}

/// Non-blocking accept loop; exits once shutdown is flagged.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = shared.clone();
                if let Ok(h) = std::thread::Builder::new()
                    .name("ink-serve-conn".into())
                    .spawn(move || handle_connection(stream, shared))
                {
                    handlers.push(h);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.poll_interval.min(Duration::from_millis(10)));
            }
            Err(_) => {
                // Per-connection failures (ECONNABORTED, ECONNRESET) and
                // resource exhaustion (EMFILE) surface from accept() on
                // Linux; none invalidate the listener, so count them and
                // keep accepting. The shutdown flag bounds the loop, so
                // retrying even a persistent error cannot hang the server.
                shared.metrics.accept_errors.inc();
                std::thread::sleep(shared.poll_interval.min(Duration::from_millis(10)));
            }
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// One connection: register the socket so shutdown can close it, then run
/// the frame loop until EOF or error.
fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    // A registration refusal means shutdown already closed the registry —
    // drop the socket instead of serving a connection nothing can unblock.
    let Some(conn_id) = shared.conns.register(&stream) else { return };
    serve_connection(stream, &shared);
    shared.conns.deregister(conn_id);
}

/// The frame loop. Reads block with no timeout: `read_frame` uses
/// `read_exact`, and a timeout firing mid-frame would discard the bytes
/// already consumed and desync the stream. Shutdown wakes blocked reads by
/// closing the socket through the [`ConnRegistry`], which surfaces here as
/// EOF or a connection error.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);

    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF (peer hung up, or shutdown closed us)
            Err(_) => return,
        };
        let response = match Request::decode(&payload) {
            Ok(req) => answer(req, shared),
            Err(e) => Response::Error { message: format!("bad request: {e}") },
        };
        if write_frame(&mut writer, &response.encode()).is_err() {
            return;
        }
    }
}

/// Computes the response for one request.
fn answer(req: Request, shared: &Shared) -> Response {
    match req {
        Request::Update(changes) => {
            let _span = shared.tracer.span("serve", "update");
            if let Some(c) = changes
                .iter()
                .find(|c| c.src as u64 >= shared.num_vertices || c.dst as u64 >= shared.num_vertices || c.src == c.dst)
            {
                return Response::Error {
                    message: format!(
                        "invalid edge {} -> {} (graph has {} vertices)",
                        c.src, c.dst, shared.num_vertices
                    ),
                };
            }
            match shared.queue.push_updates(changes) {
                Admission::Accepted => {
                    shared.metrics.updates_enqueued.inc();
                    Response::Ack { epoch: shared.epochs.load(Ordering::Relaxed) }
                }
                Admission::AcceptedDropped { dropped } => {
                    shared.metrics.updates_enqueued.inc();
                    shared.metrics.updates_dropped.add(dropped);
                    Response::Ack { epoch: shared.epochs.load(Ordering::Relaxed) }
                }
                Admission::Rejected { retry_after_ms } => {
                    shared.metrics.updates_rejected.inc();
                    Response::Rejected { retry_after_ms }
                }
                Admission::Closed => Response::Error { message: "server is shutting down".into() },
            }
        }
        Request::Embedding(v) => {
            let _span = shared.tracer.span("serve", "embedding");
            let t = Instant::now();
            let snap = shared.reader.load();
            let resp = if (v as usize) < snap.embeddings.rows() {
                Response::Embedding {
                    epoch: snap.epoch,
                    values: snap.embeddings.row(v as usize).to_vec(),
                }
            } else {
                Response::Error {
                    message: format!("vertex {v} out of range ({} rows)", snap.embeddings.rows()),
                }
            };
            shared.metrics.record_query(t.elapsed());
            resp
        }
        Request::TopK { vertex, k } => {
            let _span = shared.tracer.span("serve", "top_k");
            let t = Instant::now();
            let snap = shared.reader.load();
            let resp = if (vertex as usize) < snap.embeddings.rows() {
                Response::TopK { epoch: snap.epoch, items: top_k(&snap, vertex, k as usize) }
            } else {
                Response::Error {
                    message: format!(
                        "vertex {vertex} out of range ({} rows)",
                        snap.embeddings.rows()
                    ),
                }
            };
            shared.metrics.record_query(t.elapsed());
            resp
        }
        Request::Stats => {
            let _span = shared.tracer.span("serve", "stats");
            let json = shared.stats_summary().to_json().compact();
            if json.len() > MAX_FRAME {
                Response::Error { message: "stats document too large".into() }
            } else {
                Response::Stats { json }
            }
        }
        Request::Metrics => {
            let _span = shared.tracer.span("serve", "metrics");
            // Refresh the gauges that live with the queue/writer so the
            // scrape reflects this instant, not the last epoch.
            shared.metrics.set_queue_gauges(
                shared.epochs.load(Ordering::Relaxed),
                shared.queue.depth() as u64,
                shared.queue.max_depth() as u64,
                shared.queue.poisoned_reads(),
            );
            let text = shared.registry.render_prometheus();
            if text.len() > MAX_FRAME {
                Response::Error { message: "metrics document too large".into() }
            } else {
                Response::Metrics { text }
            }
        }
        Request::TraceDump => {
            let _span = shared.tracer.span("serve", "trace_dump");
            let json = shared.tracer.dump_chrome_trace();
            if json.len() > MAX_FRAME {
                Response::Error { message: "trace dump too large".into() }
            } else {
                Response::TraceDump { json }
            }
        }
        Request::Flush => {
            let (tx, rx) = crossbeam::channel::bounded(1);
            match shared.queue.push_flush(tx) {
                Admission::Closed => {
                    Response::Error { message: "server is shutting down".into() }
                }
                _ => match rx.recv() {
                    Ok(epoch) => Response::Flushed { epoch },
                    Err(_) => Response::Error { message: "flush barrier lost".into() },
                },
            }
        }
    }
}

/// The `k` vertices most similar to `vertex` by embedding dot product
/// (excluding the query vertex itself), descending score, ties broken by
/// lower vertex id — fully deterministic for a given snapshot.
fn top_k(snap: &EmbeddingSnapshot, vertex: u32, k: usize) -> Vec<(u32, f32)> {
    let q = snap.embeddings.row(vertex as usize);
    let mut scored: Vec<(u32, f32)> = (0..snap.embeddings.rows() as u32)
        .filter(|&v| v != vertex)
        .map(|v| {
            let row = snap.embeddings.row(v as usize);
            let score: f32 = q.iter().zip(row).map(|(a, b)| a * b).sum();
            (v, score)
        })
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use ink_tensor::Matrix;

    #[test]
    fn top_k_is_deterministic_and_excludes_self() {
        let m = Matrix::from_vec(4, 2, vec![1.0, 0.0, 1.0, 0.0, 0.5, 0.0, 0.0, 1.0]);
        let snap = EmbeddingSnapshot { epoch: 1, embeddings: m };
        let items = top_k(&snap, 0, 3);
        assert_eq!(items.len(), 3);
        assert_eq!(items[0], (1, 1.0), "identical row wins");
        assert_eq!(items[1], (2, 0.5));
        assert_eq!(items[2], (3, 0.0));
        // k larger than the graph truncates cleanly.
        assert_eq!(top_k(&snap, 0, 99).len(), 3);
    }

    #[test]
    fn top_k_breaks_ties_by_lower_id() {
        let m = Matrix::from_vec(4, 1, vec![1.0, 2.0, 2.0, -1.0]);
        let snap = EmbeddingSnapshot { epoch: 1, embeddings: m };
        let items = top_k(&snap, 0, 2);
        assert_eq!(items, vec![(1, 2.0), (2, 2.0)]);
    }
}
