//! The readiness-based TCP server.
//!
//! Thread layout (no async runtime — non-blocking `std::net` sockets driven
//! by the workspace `mio` shim, epoll on Linux with a portable `poll`
//! fallback):
//!
//! * **event-loop thread** — one thread multiplexes the listener and every
//!   client connection through [`mio::Poll`]. It assembles frames from
//!   partial reads (`conn::Conn`), decodes requests (protocol v1
//!   frames and v2 [`Request::Batch`] containers alike), answers queries
//!   straight from the current
//!   [`inkstream::snapshot::EmbeddingSnapshot`] — embedding rows are
//!   serialized directly from the snapshot buffer into the connection's
//!   write queue, no intermediate `Response` allocation — and routes
//!   updates into the [`ShardedIngest`] queue. Pipelined responses go out
//!   strictly in request order per connection.
//! * **writer thread** — the only thread that owns the engine backend
//!   (a [`StreamSession`] or a [`PartitionedInkStream`]): drains a
//!   ticket-ordered prefix of the sharded queue, coalesces it into one net
//!   [`DeltaBatch`], applies it, and publishes a fresh snapshot epoch. It
//!   parks on the queue's condvar between drains (no polling) and signals
//!   the event loop through a [`mio::Waker`] when flush barriers resolve or
//!   shard space frees up. With [`ServeConfig::pipelined`] (the default)
//!   the writer splits in two: a **stager** thread drains, coalesces, and
//!   (partitioned backend) pre-routes epoch N+1 while the apply thread is
//!   still applying and publishing epoch N. The stages hand off prepared
//!   epochs over a bounded single-slot channel, so the global
//!   ticket order, epoch monotonicity, and flush-barrier semantics are
//!   exactly those of the single-writer loop — pipelining only overlaps
//!   the queue-side work with the engine-side work.
//!
//! Readers therefore never block on an in-flight update: a query served
//! mid-apply simply sees the previous epoch. Backpressure is
//! per-connection — a full shard under [`Backpressure::Block`] parks the
//! offending connection's half-processed frame (`conn::PendingFrame`)
//! and pauses reading it, while every other connection keeps being served.
//! [`ServerHandle::shutdown`] closes the queue, lets the writer drain what
//! was admitted, delivers the final flush acks, writes a checkpoint (when
//! configured) and returns the session for inspection.
//!
//! The wire format is specified normatively in `docs/PROTOCOL.md`.

use crate::conn::{Conn, PendingFrame};
use crate::metrics::ServerMetrics;
use crate::protocol::{
    append_frame, encode_embedding, Request, Response, MAX_FRAME, PROTOCOL_VERSION,
};
use crate::queue::Backpressure;
use crate::shard::{Drained, ShardPush, ShardedIngest};
use ink_graph::{DeltaBatch, EdgeChange};
use ink_obs::{MetricsRegistry, Tracer};
use ink_partition::{PartitionedInkStream, PreRouted, RoutingView};
use ink_tensor::Matrix;
use inkstream::snapshot::{EmbeddingSnapshot, SnapshotPublisher, SnapshotReader};
use inkstream::{SessionSummary, StreamSession};
use mio::{Events, Interest, Poll, Token, Waker};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poll token of the TCP listener.
const LISTENER: usize = 0;
/// Poll token of the writer-thread waker.
const WAKER: usize = 1;
/// First token handed to a client connection.
const FIRST_CONN: usize = 2;

/// Server tunables. See the README "Serving" section for a capacity-planning
/// guide relating these to client counts and update rates.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Total ingest capacity in pending update batches, split evenly across
    /// `shards` (each shard holds `ceil(queue_capacity / shards)`).
    pub queue_capacity: usize,
    /// What happens to updates arriving while their shard is full.
    pub backpressure: Backpressure,
    /// Maximum update batches drained (and coalesced) into one epoch.
    pub max_drain: usize,
    /// Ingest shard count. Admission contention distributes across shards
    /// while the writer still applies one globally ordered stream.
    pub shards: usize,
    /// Where the shutdown checkpoint goes (`None` disables it).
    pub checkpoint_path: Option<PathBuf>,
    /// Two-stage writer: a stager thread drains + coalesces (+ pre-routes,
    /// partitioned backend) the next epoch while the apply thread applies
    /// the current one. `false` keeps the single-writer loop of record —
    /// identical published epochs, no overlap.
    pub pipelined: bool,
    /// Upper bound on one event-loop tick: the poll timeout used when no
    /// I/O is ready. Wakeups (new completions, freed shard space, shutdown)
    /// arrive eagerly through the waker; this only bounds the idle tick.
    pub poll_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            backpressure: Backpressure::Block,
            max_drain: 32,
            shards: 4,
            checkpoint_path: None,
            pipelined: true,
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// Everything the two threads share.
struct Shared {
    ingest: ShardedIngest,
    metrics: ServerMetrics,
    /// The session's registry (the serve instruments are registered into it
    /// too), rendered by the `Metrics` request.
    registry: Arc<MetricsRegistry>,
    /// The span tracer; request handlers add `serve`-category spans, and
    /// the `TraceDump` request dumps the ring.
    tracer: Arc<Tracer>,
    reader: SnapshotReader,
    /// Refreshed by the writer after every epoch; the `stats` request folds
    /// live queue metrics on top.
    summary: Mutex<SessionSummary>,
    epochs: AtomicU64,
    shutdown: AtomicBool,
    /// Vertex-id bound for validating updates before they reach the graph.
    num_vertices: u64,
    /// Output embedding width, reported by `Hello`.
    feat_dim: u32,
    directed: bool,
    poll_interval: Duration,
    /// Wakes the event loop out of `poll` (writer → loop signal).
    waker: Arc<Waker>,
}

impl Shared {
    /// The `stats` response: last published session summary + live serve
    /// counters.
    fn stats_summary(&self) -> SessionSummary {
        let mut summary = self.summary.lock().expect("summary lock poisoned").clone();
        summary.serve = self.metrics.serve_stats(
            self.epochs.load(Ordering::Relaxed),
            self.ingest.depth(),
            self.ingest.max_depth(),
            0,
        );
        summary
    }
}

/// The engine side of the writer thread: one single-threaded session or one
/// partition-parallel driver. Both apply the identical globally ordered,
/// globally coalesced batch stream, so the published snapshots are bitwise
/// equal either way.
enum BackendKind {
    /// A [`StreamSession`] (single engine).
    Single(Box<StreamSession>),
    /// A [`PartitionedInkStream`] plus the scratch matrix its merged output
    /// is gathered into before each publish.
    Partitioned {
        /// The partition-parallel driver.
        part: Box<PartitionedInkStream>,
        /// Reused gather target (avoids a fresh `Matrix` per epoch).
        scratch: Matrix,
    },
}

impl BackendKind {
    /// Applies one coalesced batch; `routed` carries the stager's pre-routed
    /// split when the backend is partitioned and the pipeline produced one.
    /// Returns `false` on an apply error — a Fail drift-policy breach, or a
    /// worker panic that poisoned the partition pool. The serving loop keeps
    /// going either way (readers stay on the last good snapshot); errors are
    /// tallied in `ink_serve_apply_errors_total`.
    fn ingest(&mut self, batch: &DeltaBatch, routed: Option<&PreRouted>) -> bool {
        match self {
            BackendKind::Single(session) => session.ingest(batch).is_ok(),
            BackendKind::Partitioned { part, .. } => match routed {
                Some(pre) => part.ingest_prerouted(batch, pre).is_ok(),
                None => part.ingest(batch).is_ok(),
            },
        }
    }

    /// A routing snapshot for the stager thread (partitioned backend only).
    fn routing_view(&self) -> Option<RoutingView> {
        match self {
            BackendKind::Single(_) => None,
            BackendKind::Partitioned { part, .. } => Some(part.routing_view()),
        }
    }

    fn publish(&mut self, publisher: &mut SnapshotPublisher, epoch: u64) {
        match self {
            BackendKind::Single(session) => publisher.publish(session.engine().output(), epoch),
            BackendKind::Partitioned { part, scratch } => {
                part.output_into(scratch);
                publisher.publish(scratch, epoch);
            }
        }
    }

    fn summary(&self) -> SessionSummary {
        match self {
            BackendKind::Single(session) => session.summary(),
            BackendKind::Partitioned { part, .. } => part.summary().session,
        }
    }
}

/// The entry point: bind, spawn the thread pair, return a handle.
pub struct InkServer;

impl InkServer {
    /// Starts serving `session` on `addr` (use port 0 for an ephemeral
    /// port; the bound address is on the returned handle).
    pub fn bind(
        addr: impl ToSocketAddrs,
        session: StreamSession,
        config: ServeConfig,
    ) -> io::Result<ServerHandle> {
        let bootstrap = session.engine().output().clone();
        let registry = session.metrics().clone();
        let tracer = session.tracer().clone();
        let num_vertices = session.engine().graph().num_vertices() as u64;
        let directed = session.engine().graph().is_directed();
        let initial = session.summary();
        let inner = bind_inner(
            addr,
            BackendKind::Single(Box::new(session)),
            bootstrap,
            registry,
            tracer,
            initial,
            num_vertices,
            directed,
            config,
        )?;
        Ok(ServerHandle { inner })
    }

    /// Starts serving a [`PartitionedInkStream`] on `addr`: the same wire
    /// protocol and snapshot semantics as [`InkServer::bind`], with the
    /// writer thread driving the per-partition engines instead of one
    /// session. Published epochs stay bitwise identical to the
    /// single-engine server fed the same update stream.
    pub fn bind_partitioned(
        addr: impl ToSocketAddrs,
        part: PartitionedInkStream,
        config: ServeConfig,
    ) -> io::Result<PartitionedServerHandle> {
        let bootstrap = part.output();
        let registry = part.metrics().clone();
        let tracer = Arc::new(Tracer::new(4096));
        let num_vertices = part.graph().num_vertices() as u64;
        let directed = part.graph().is_directed();
        let initial = part.summary().session;
        let scratch = bootstrap.clone();
        let inner = bind_inner(
            addr,
            BackendKind::Partitioned { part: Box::new(part), scratch },
            bootstrap,
            registry,
            tracer,
            initial,
            num_vertices,
            directed,
            config,
        )?;
        Ok(PartitionedServerHandle { inner })
    }
}

#[allow(clippy::too_many_arguments)]
fn bind_inner(
    addr: impl ToSocketAddrs,
    backend: BackendKind,
    bootstrap: Matrix,
    registry: Arc<MetricsRegistry>,
    tracer: Arc<Tracer>,
    initial_summary: SessionSummary,
    num_vertices: u64,
    directed: bool,
    config: ServeConfig,
) -> io::Result<HandleInner> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shards = config.shards.max(1);
    let per_shard = config.queue_capacity.div_ceil(shards).max(1);
    let feat_dim = bootstrap.cols() as u32;
    let (publisher, reader) = SnapshotPublisher::new(bootstrap);
    let poll = Poll::new()?;
    poll.register(&listener, Token(LISTENER), Interest::READABLE)?;
    let waker = Arc::new(Waker::new(&poll, Token(WAKER))?);
    let (completions_tx, completions_rx) = crossbeam::channel::bounded(1024);
    let shared = Arc::new(Shared {
        ingest: ShardedIngest::new(shards, per_shard, config.backpressure),
        metrics: ServerMetrics::register(&registry),
        registry,
        tracer,
        reader,
        summary: Mutex::new(initial_summary),
        epochs: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
        num_vertices,
        feat_dim,
        directed,
        poll_interval: config.poll_interval,
        waker,
    });
    let writer_thread = {
        let shared = shared.clone();
        let max_drain = config.max_drain;
        let pipelined = config.pipelined;
        std::thread::Builder::new().name("ink-serve-writer".into()).spawn(move || {
            writer_loop(backend, publisher, shared, max_drain, pipelined, completions_tx)
        })?
    };
    let event_thread = {
        let shared = shared.clone();
        std::thread::Builder::new().name("ink-serve-loop".into()).spawn(move || {
            EventLoop {
                poll,
                listener,
                conns: HashMap::new(),
                next_token: FIRST_CONN,
                shared,
                completions: completions_rx,
                flush_waiters: HashMap::new(),
                next_flush_id: 0,
            }
            .run()
        })?
    };
    Ok(HandleInner {
        addr,
        shared,
        event_thread: Some(event_thread),
        writer_thread: Some(writer_thread),
        checkpoint_path: config.checkpoint_path,
    })
}

/// The running-server state common to both handle flavours.
struct HandleInner {
    addr: SocketAddr,
    shared: Arc<Shared>,
    event_thread: Option<JoinHandle<()>>,
    writer_thread: Option<JoinHandle<BackendKind>>,
    checkpoint_path: Option<PathBuf>,
}

impl HandleInner {
    /// Graceful drain: close the queue, let the writer apply everything
    /// admitted and publish the final epoch, then stop the event loop
    /// (which delivers the final flush acks and best-effort writes before
    /// the sockets drop).
    fn shutdown_backend(&mut self) -> io::Result<(BackendKind, SessionSummary)> {
        self.shared.ingest.close();
        let writer = self.writer_thread.take().expect("shutdown runs once");
        let backend =
            writer.join().map_err(|_| io::Error::other("ink-serve writer thread panicked"))?;
        // Flag the loop only after the writer has drained — its last flush
        // completions are already in the channel, so the loop's exit pass
        // cannot miss them.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = self.shared.waker.wake();
        if let Some(ev) = self.event_thread.take() {
            ev.join().map_err(|_| io::Error::other("ink-serve event loop panicked"))?;
        }
        let summary = self.shared.stats_summary();
        Ok((backend, summary))
    }
}

impl Drop for HandleInner {
    fn drop(&mut self) {
        // Un-graceful path: stop the threads so tests that panic don't hang.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.ingest.close();
        let _ = self.shared.waker.wake();
    }
}

/// A running single-session server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] stops the threads without draining — call
/// `shutdown` for a graceful drain.
pub struct ServerHandle {
    inner: HandleInner,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Current snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.shared.epochs.load(Ordering::Relaxed)
    }

    /// Live summary (same document the `stats` request serves).
    pub fn summary(&self) -> SessionSummary {
        self.inner.shared.stats_summary()
    }

    /// Per-shard ingest depths `(current, high-water)` — the
    /// capacity-planning view of queue pressure (a single hot shard with
    /// idle siblings means the workload hashes to one canonical edge
    /// neighbourhood; raise `queue_capacity` rather than `shards`).
    pub fn shard_depths(&self) -> (Vec<usize>, Vec<usize>) {
        (
            self.inner.shared.ingest.per_shard_depths(),
            self.inner.shared.ingest.per_shard_max_depths(),
        )
    }

    /// Graceful shutdown: stop admitting work, drain the queue through the
    /// writer, publish the final epoch, write the checkpoint (when
    /// configured) and return the session with the final summary.
    pub fn shutdown(mut self) -> io::Result<(StreamSession, SessionSummary)> {
        let (backend, summary) = self.inner.shutdown_backend()?;
        let BackendKind::Single(session) = backend else {
            unreachable!("single-session handle owns a single-session backend");
        };
        if let Some(path) = &self.inner.checkpoint_path {
            let mut f = std::fs::File::create(path)?;
            inkstream::checkpoint::save(session.engine(), &mut f)?;
        }
        Ok((*session, summary))
    }
}

/// A running partition-parallel server (from [`InkServer::bind_partitioned`]).
pub struct PartitionedServerHandle {
    inner: HandleInner,
}

impl PartitionedServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Current snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.shared.epochs.load(Ordering::Relaxed)
    }

    /// Live summary (same document the `stats` request serves).
    pub fn summary(&self) -> SessionSummary {
        self.inner.shared.stats_summary()
    }

    /// Per-shard ingest depths `(current, high-water)`; see
    /// [`ServerHandle::shard_depths`].
    pub fn shard_depths(&self) -> (Vec<usize>, Vec<usize>) {
        (
            self.inner.shared.ingest.per_shard_depths(),
            self.inner.shared.ingest.per_shard_max_depths(),
        )
    }

    /// Graceful shutdown; returns the partition driver with the final
    /// summary. (Checkpointing is a single-engine feature — resync a fresh
    /// partition set from a checkpointed session instead.)
    pub fn shutdown(mut self) -> io::Result<(PartitionedInkStream, SessionSummary)> {
        let (backend, summary) = self.inner.shutdown_backend()?;
        let BackendKind::Partitioned { part, .. } = backend else {
            unreachable!("partitioned handle owns a partitioned backend");
        };
        Ok((*part, summary))
    }
}

/// One stager product: a coalesced epoch candidate plus everything that must
/// travel with it — the pre-routed split (partitioned backend), the
/// pre-coalescing event count, admission stamps for latency attribution, and
/// the control signals (flush barriers, queue closure) drained in the same
/// ticket-ordered prefix. Flush ids ride *inside* the epoch they follow, so
/// acking after that epoch publishes preserves read-your-writes exactly.
struct PreparedEpoch {
    batch: DeltaBatch,
    routed: Option<PreRouted>,
    received: u64,
    batches: usize,
    admitted: Vec<Instant>,
    flushes: Vec<u64>,
    finished: bool,
}

/// Stage A: coalesce one drained ticket prefix into an epoch candidate and,
/// when a routing view is at hand, pre-route it for the partitioned driver.
fn prepare(drained: Drained, directed: bool, view: Option<&RoutingView>) -> PreparedEpoch {
    let Drained { changes, batches, flushes, admitted, finished } = drained;
    let received = changes.len() as u64;
    let batch = DeltaBatch::new(changes).coalesce(directed);
    let routed = if batch.is_empty() { None } else { view.map(|v| v.route(&batch)) };
    PreparedEpoch { batch, routed, received, batches, admitted, flushes, finished }
}

/// Stage B: apply and publish one prepared epoch, record the latency
/// attribution (apply-only service time; admission-to-visibility wait per
/// drained batch), resolve its flush barriers, and signal the event loop.
fn apply_epoch(
    backend: &mut BackendKind,
    publisher: &mut SnapshotPublisher,
    shared: &Shared,
    completions: &crossbeam::channel::Sender<(u64, u64)>,
    prepared: PreparedEpoch,
) {
    let PreparedEpoch { batch, routed, received, batches, admitted, flushes, .. } = prepared;
    if !batch.is_empty() {
        let _span = shared.tracer.span("serve", "epoch");
        shared.metrics.events_received.add(received);
        shared.metrics.events_applied.add(batch.len() as u64);
        let apply_start = Instant::now();
        if !backend.ingest(&batch, routed.as_ref()) {
            shared.metrics.apply_errors.inc();
        }
        let epoch = shared.epochs.load(Ordering::Relaxed) + 1;
        backend.publish(publisher, epoch);
        shared.metrics.apply_latency.record(apply_start.elapsed().as_nanos() as u64);
        shared.epochs.store(epoch, Ordering::SeqCst);
        *shared.summary.lock().expect("summary lock poisoned") = backend.summary();
    }
    // Every batch in this drain is snapshot-visible from here on: the gap
    // back to its admission stamp is pure queueing + pipeline wait.
    let visible_at = Instant::now();
    for t in &admitted {
        shared
            .metrics
            .admission_wait
            .record(visible_at.saturating_duration_since(*t).as_nanos() as u64);
    }
    let epoch = shared.epochs.load(Ordering::Relaxed);
    shared.metrics.set_queue_gauges(epoch, shared.ingest.depth(), shared.ingest.max_depth(), 0);
    let mut wake = batches > 0; // freed shard space: stalled conns can retry
    for flush_id in flushes {
        shared.metrics.flushes.inc();
        wake = true;
        if let Err(crossbeam::channel::TrySendError::Full(item)) =
            completions.try_send((flush_id, epoch))
        {
            // Channel full: wake the loop so it drains, then block.
            let _ = shared.waker.wake();
            let _ = completions.send(item); // a vanished loop is shutdown
        }
    }
    if wake {
        let _ = shared.waker.wake();
    }
}

/// The writer: owns the engine backend and the epoch counter. Pipelined, it
/// splits into a stager thread (stage A) feeding this thread (stage B)
/// through a single-slot channel — the FIFO handoff preserves the queue's
/// global ticket order, and publishing stays in one thread, so epochs remain
/// monotonic and bitwise equal to the single-writer loop.
fn writer_loop(
    mut backend: BackendKind,
    mut publisher: SnapshotPublisher,
    shared: Arc<Shared>,
    max_drain: usize,
    pipelined: bool,
    completions: crossbeam::channel::Sender<(u64, u64)>,
) -> BackendKind {
    if !pipelined {
        // Single-writer loop of record: drain, prepare, apply on one thread.
        loop {
            let drained = shared.ingest.drain_wait(max_drain);
            let prepared = prepare(drained, shared.directed, None);
            let finished = prepared.finished;
            apply_epoch(&mut backend, &mut publisher, &shared, &completions, prepared);
            if finished {
                return backend;
            }
        }
    }
    let view = backend.routing_view();
    let (tx, rx) = crossbeam::channel::bounded::<PreparedEpoch>(1);
    let stager = {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("ink-serve-stager".into())
            .spawn(move || loop {
                let drained = shared.ingest.drain_wait(max_drain);
                let prepared = prepare(drained, shared.directed, view.as_ref());
                // Freed shard space wakes the event loop from here — a
                // stalled connection re-admits while the apply stage is
                // still busy with an earlier epoch.
                if prepared.batches > 0 {
                    let _ = shared.waker.wake();
                }
                let finished = prepared.finished;
                if tx.send(prepared).is_err() || finished {
                    return;
                }
            })
            .expect("spawn ink-serve-stager")
    };
    while let Ok(prepared) = rx.recv() {
        let finished = prepared.finished;
        apply_epoch(&mut backend, &mut publisher, &shared, &completions, prepared);
        if finished {
            break;
        }
    }
    stager.join().expect("ink-serve-stager panicked");
    backend
}

/// The one-thread readiness loop multiplexing the listener, the waker and
/// every client connection.
struct EventLoop {
    poll: Poll,
    listener: TcpListener,
    conns: HashMap<usize, Conn>,
    next_token: usize,
    shared: Arc<Shared>,
    /// Writer → loop: `(flush_id, epoch)` per resolved barrier.
    completions: crossbeam::channel::Receiver<(u64, u64)>,
    /// Which connection waits on which flush barrier.
    flush_waiters: HashMap<u64, usize>,
    next_flush_id: u64,
}

impl EventLoop {
    fn run(mut self) {
        let mut events = Events::with_capacity(1024);
        loop {
            let _ = self.poll.poll(&mut events, Some(self.shared.poll_interval));
            let fired: Vec<(usize, bool, bool)> =
                events.iter().map(|e| (e.token().0, e.is_readable(), e.is_writable())).collect();
            for (token, readable, writable) in fired {
                match token {
                    LISTENER => self.accept_ready(),
                    WAKER => {} // byte already drained by the poll shim
                    token => self.conn_ready(token, readable, writable),
                }
            }
            // Run the writer-signalled work every tick (not only on waker
            // events) so progress never depends on wakeup delivery.
            self.drain_completions();
            self.retry_stalled();
            if self.shared.shutdown.load(Ordering::Relaxed) {
                // The writer has exited: every completion is already in the
                // channel. Deliver them, flush what the sockets accept, go.
                self.drain_completions();
                let tokens: Vec<usize> = self.conns.keys().copied().collect();
                for token in tokens {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.write_ready();
                    }
                }
                return;
            }
        }
    }

    /// Accepts everything pending on the listener (level-triggered, so a
    /// backlog left behind re-fires the next tick).
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    let mut conn = Conn::new(stream, token);
                    if self.poll.register(&conn.stream, Token(token), Interest::READABLE).is_ok() {
                        conn.registered = (true, false);
                        self.conns.insert(token, conn);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    // Per-connection failures (ECONNABORTED, ECONNRESET) and
                    // resource exhaustion (EMFILE) surface from accept();
                    // none invalidate the listener, so count and move on.
                    self.shared.metrics.accept_errors.inc();
                    break;
                }
            }
        }
        self.shared.metrics.connections.set_u64(self.conns.len() as u64);
    }

    /// One connection's readiness: read what's there, write what fits, then
    /// advance its request pipeline.
    fn conn_ready(&mut self, token: usize, readable: bool, writable: bool) {
        {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            if readable {
                conn.fill_read_buf();
            }
            if writable {
                conn.write_ready();
            }
        }
        self.advance(token);
    }

    /// Drives a connection as far as it can go: finish a stalled frame,
    /// parse and answer buffered frames, write, then reconcile poll
    /// interest and lifecycle.
    fn advance(&mut self, token: usize) {
        loop {
            let shared = &self.shared;
            let flush_waiters = &mut self.flush_waiters;
            let next_flush_id = &mut self.next_flush_id;
            let Some(conn) = self.conns.get_mut(&token) else { return };
            if conn.dead {
                break;
            }
            if conn.pending.is_some() && !drive(shared, conn, flush_waiters, next_flush_id, false) {
                break; // still stalled on a full shard
            }
            match conn.next_frame(MAX_FRAME) {
                Ok(Some(payload)) => {
                    process_frame(shared, conn, flush_waiters, next_flush_id, &payload)
                }
                Ok(None) => break,
                Err(()) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        let Some(conn) = self.conns.get_mut(&token) else { return };
        conn.write_ready();
        if conn.dead || (conn.peer_eof && conn.pending.is_none() && conn.is_drained()) {
            self.close_conn(token);
            return;
        }
        self.sync_interest(token);
    }

    /// Delivers resolved flush barriers to their waiting connections.
    fn drain_completions(&mut self) {
        let mut touched = Vec::new();
        while let Ok((flush_id, epoch)) = self.completions.try_recv() {
            let Some(token) = self.flush_waiters.remove(&flush_id) else { continue };
            if let Some(conn) = self.conns.get_mut(&token) {
                let _ = conn.complete_flush(flush_id, |buf| {
                    append_frame(buf, |b| Response::Flushed { epoch }.encode_into(b))
                });
                touched.push(token);
            }
        }
        for token in touched {
            self.advance(token);
        }
    }

    /// Gives every admission-stalled connection another try (shard space
    /// may have freed up after a writer drain).
    fn retry_stalled(&mut self) {
        let stalled: Vec<usize> =
            self.conns.iter().filter(|(_, c)| c.pending.is_some()).map(|(t, _)| *t).collect();
        for token in stalled {
            self.advance(token);
        }
    }

    /// Reconciles the connection's poll registration with what it currently
    /// wants, reregistering only on change.
    fn sync_interest(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let want = (conn.wants_read(), conn.wants_write());
        if want == conn.registered {
            return;
        }
        let interest = match want {
            (true, true) => Some(Interest::READABLE | Interest::WRITABLE),
            (true, false) => Some(Interest::READABLE),
            (false, true) => Some(Interest::WRITABLE),
            (false, false) => None,
        };
        match interest {
            Some(i) => {
                let ok = if conn.registered == (false, false) {
                    self.poll.register(&conn.stream, Token(token), i).is_ok()
                } else {
                    self.poll.reregister(&conn.stream, Token(token), i).is_ok()
                };
                if ok {
                    conn.registered = want;
                }
            }
            None => {
                let _ = self.poll.deregister(&conn.stream);
                conn.registered = (false, false);
            }
        }
    }

    fn close_conn(&mut self, token: usize) {
        if let Some(conn) = self.conns.remove(&token) {
            // A barrier queued on a dying connection must not leave a
            // dangling waiter.
            for id in conn.queued_flush_ids() {
                self.flush_waiters.remove(&id);
            }
            if conn.registered != (false, false) {
                let _ = self.poll.deregister(&conn.stream);
            }
            self.shared.metrics.connections.set_u64(self.conns.len() as u64);
        }
    }
}

/// Decodes one frame and starts answering it. A decode failure answers with
/// an `Error` frame and keeps the connection (framing is still intact — the
/// length prefix was valid).
fn process_frame(
    shared: &Shared,
    conn: &mut Conn,
    flush_waiters: &mut HashMap<u64, usize>,
    next_flush_id: &mut u64,
    payload: &[u8],
) {
    match Request::decode(payload) {
        Err(e) => {
            push_frame(conn, |b| {
                Response::Error { message: format!("bad request: {e}") }.encode_into(b)
            });
        }
        Ok(Request::Batch(reqs)) => {
            shared.metrics.batches.inc();
            shared.metrics.batched_requests.add(reqs.len() as u64);
            conn.pending =
                Some(PendingFrame { reqs, next: 0, body: Vec::new(), count: 0, is_batch: true });
            drive(shared, conn, flush_waiters, next_flush_id, true);
        }
        Ok(req) => {
            conn.pending = Some(PendingFrame {
                reqs: vec![req],
                next: 0,
                body: Vec::new(),
                count: 0,
                is_batch: false,
            });
            drive(shared, conn, flush_waiters, next_flush_id, true);
        }
    }
}

/// Advances the connection's pending frame. Returns `false` when it stalled
/// on a full shard (Block backpressure) — the frame stays parked in
/// `conn.pending` and the loop retries after the next writer drain.
fn drive(
    shared: &Shared,
    conn: &mut Conn,
    flush_waiters: &mut HashMap<u64, usize>,
    next_flush_id: &mut u64,
    fresh: bool,
) -> bool {
    let Some(mut p) = conn.pending.take() else { return true };
    while p.next < p.reqs.len() {
        let req = &p.reqs[p.next];
        if p.is_batch {
            match req {
                Request::Update(changes) => match admit(shared, changes) {
                    None => {
                        if fresh {
                            shared.metrics.stalls.inc();
                        }
                        conn.pending = Some(p);
                        return false;
                    }
                    Some(resp) => {
                        encode_slot(&mut p.body, &mut p.count, |b| resp.encode_into(b));
                    }
                },
                Request::Embedding(_) | Request::TopK { .. } => {
                    encode_slot(&mut p.body, &mut p.count, |b| answer_query_into(shared, req, b));
                }
                _ => {
                    encode_slot(&mut p.body, &mut p.count, |b| {
                        Response::Error { message: "request not batchable".into() }.encode_into(b)
                    });
                }
            }
        } else {
            match req {
                Request::Update(changes) => match admit(shared, changes) {
                    None => {
                        if fresh {
                            shared.metrics.stalls.inc();
                        }
                        conn.pending = Some(p);
                        return false;
                    }
                    Some(resp) => push_frame(conn, |b| resp.encode_into(b)),
                },
                Request::Flush => {
                    let id = *next_flush_id;
                    *next_flush_id += 1;
                    if shared.ingest.push_flush(id) {
                        flush_waiters.insert(id, conn.token);
                        conn.push_flush_marker(id);
                    } else {
                        push_frame(conn, |b| {
                            Response::Error { message: "server is shutting down".into() }
                                .encode_into(b)
                        });
                    }
                }
                Request::Hello { max_version } => {
                    let resp = Response::Hello {
                        version: PROTOCOL_VERSION.min(*max_version),
                        num_vertices: shared.num_vertices,
                        feat_dim: shared.feat_dim,
                        shards: shared.ingest.shards() as u16,
                        epoch: shared.epochs.load(Ordering::Relaxed),
                    };
                    push_frame(conn, |b| resp.encode_into(b));
                }
                Request::Batch(_) => {
                    // Decode rejects nested batches; unreachable in practice.
                    push_frame(conn, |b| {
                        Response::Error { message: "nested batch".into() }.encode_into(b)
                    });
                }
                _ => push_frame(conn, |b| answer_query_into(shared, req, b)),
            }
        }
        p.next += 1;
    }
    if p.is_batch {
        let count = p.count;
        let body = std::mem::take(&mut p.body);
        let pushed = conn.push_bytes(|out| {
            append_frame(out, |b| {
                b.push(0x8B);
                b.extend_from_slice(&count.to_le_bytes());
                b.extend_from_slice(&body);
            })
        });
        if pushed.is_err() {
            push_frame(conn, |b| {
                Response::Error { message: "batch response exceeds the frame limit".into() }
                    .encode_into(b)
            });
        }
    }
    true
}

/// Validates and routes one update. `None` means the target shard is full
/// under Block backpressure — stall the connection.
fn admit(shared: &Shared, changes: &[EdgeChange]) -> Option<Response> {
    let _span = shared.tracer.span("serve", "update");
    if let Some(c) = changes.iter().find(|c| {
        c.src as u64 >= shared.num_vertices || c.dst as u64 >= shared.num_vertices || c.src == c.dst
    }) {
        return Some(Response::Error {
            message: format!(
                "invalid edge {} -> {} (graph has {} vertices)",
                c.src, c.dst, shared.num_vertices
            ),
        });
    }
    match shared.ingest.try_push_updates(changes, shared.directed) {
        ShardPush::Accepted { .. } => {
            shared.metrics.updates_enqueued.inc();
            Some(Response::Ack { epoch: shared.epochs.load(Ordering::Relaxed) })
        }
        ShardPush::AcceptedDropped { dropped } => {
            shared.metrics.updates_enqueued.inc();
            shared.metrics.updates_dropped.add(dropped);
            Some(Response::Ack { epoch: shared.epochs.load(Ordering::Relaxed) })
        }
        ShardPush::Rejected { retry_after_ms } => {
            shared.metrics.updates_rejected.inc();
            Some(Response::Rejected { retry_after_ms })
        }
        ShardPush::Full => None,
        ShardPush::Closed => {
            Some(Response::Error { message: "server is shutting down".into() })
        }
    }
}

/// Serializes the answer to a read-only request directly into `buf`
/// (frame-payload bytes, no length prefix). Embedding rows go straight from
/// the snapshot buffer to the wire — no intermediate `Response` allocation.
fn answer_query_into(shared: &Shared, req: &Request, buf: &mut Vec<u8>) {
    match req {
        Request::Embedding(v) => {
            let _span = shared.tracer.span("serve", "embedding");
            let t = Instant::now();
            let snap = shared.reader.load();
            if (*v as usize) < snap.embeddings.rows() {
                encode_embedding(buf, snap.epoch, snap.embeddings.row(*v as usize));
            } else {
                Response::Error {
                    message: format!("vertex {v} out of range ({} rows)", snap.embeddings.rows()),
                }
                .encode_into(buf);
            }
            shared.metrics.record_query(t.elapsed());
        }
        Request::TopK { vertex, k } => {
            let _span = shared.tracer.span("serve", "top_k");
            let t = Instant::now();
            let snap = shared.reader.load();
            if (*vertex as usize) < snap.embeddings.rows() {
                Response::TopK { epoch: snap.epoch, items: top_k(&snap, *vertex, *k as usize) }
                    .encode_into(buf);
            } else {
                Response::Error {
                    message: format!(
                        "vertex {vertex} out of range ({} rows)",
                        snap.embeddings.rows()
                    ),
                }
                .encode_into(buf);
            }
            shared.metrics.record_query(t.elapsed());
        }
        Request::Stats => {
            let _span = shared.tracer.span("serve", "stats");
            let json = shared.stats_summary().to_json().compact();
            if json.len() > MAX_FRAME {
                Response::Error { message: "stats document too large".into() }.encode_into(buf);
            } else {
                Response::Stats { json }.encode_into(buf);
            }
        }
        Request::Metrics => {
            let _span = shared.tracer.span("serve", "metrics");
            // Refresh the gauges that live with the queue/writer so the
            // scrape reflects this instant, not the last epoch.
            shared.metrics.set_queue_gauges(
                shared.epochs.load(Ordering::Relaxed),
                shared.ingest.depth(),
                shared.ingest.max_depth(),
                0,
            );
            let text = shared.registry.render_prometheus();
            if text.len() > MAX_FRAME {
                Response::Error { message: "metrics document too large".into() }.encode_into(buf);
            } else {
                Response::Metrics { text }.encode_into(buf);
            }
        }
        Request::TraceDump => {
            let _span = shared.tracer.span("serve", "trace_dump");
            let json = shared.tracer.dump_chrome_trace();
            if json.len() > MAX_FRAME {
                Response::Error { message: "trace dump too large".into() }.encode_into(buf);
            } else {
                Response::TraceDump { json }.encode_into(buf);
            }
        }
        _ => {
            Response::Error { message: "unsupported request".into() }.encode_into(buf);
        }
    }
}

/// Appends one framed response built by `build`; an over-limit frame is
/// replaced by a (small) error frame so the stream never desyncs.
fn push_frame(conn: &mut Conn, build: impl FnOnce(&mut Vec<u8>)) {
    if conn.push_bytes(|out| append_frame(out, build)).is_err() {
        let _ = conn.push_bytes(|out| {
            append_frame(out, |b| {
                Response::Error { message: "response exceeds the frame limit".into() }
                    .encode_into(b)
            })
        });
    }
}

/// Appends one length-prefixed response slot to a batch body.
fn encode_slot(body: &mut Vec<u8>, count: &mut u32, f: impl FnOnce(&mut Vec<u8>)) {
    let at = body.len();
    body.extend_from_slice(&[0u8; 4]);
    f(body);
    let len = (body.len() - at - 4) as u32;
    body[at..at + 4].copy_from_slice(&len.to_le_bytes());
    *count += 1;
}

/// The `k` vertices most similar to `vertex` by embedding dot product
/// (excluding the query vertex itself), descending score, ties broken by
/// lower vertex id — fully deterministic for a given snapshot.
fn top_k(snap: &EmbeddingSnapshot, vertex: u32, k: usize) -> Vec<(u32, f32)> {
    let q = snap.embeddings.row(vertex as usize);
    let mut scored: Vec<(u32, f32)> = (0..snap.embeddings.rows() as u32)
        .filter(|&v| v != vertex)
        .map(|v| {
            let row = snap.embeddings.row(v as usize);
            let score: f32 = q.iter().zip(row).map(|(a, b)| a * b).sum();
            (v, score)
        })
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use ink_tensor::Matrix;

    #[test]
    fn top_k_is_deterministic_and_excludes_self() {
        let m = Matrix::from_vec(4, 2, vec![1.0, 0.0, 1.0, 0.0, 0.5, 0.0, 0.0, 1.0]);
        let snap = EmbeddingSnapshot { epoch: 1, embeddings: m };
        let items = top_k(&snap, 0, 3);
        assert_eq!(items.len(), 3);
        assert_eq!(items[0], (1, 1.0), "identical row wins");
        assert_eq!(items[1], (2, 0.5));
        assert_eq!(items[2], (3, 0.0));
        // k larger than the graph truncates cleanly.
        assert_eq!(top_k(&snap, 0, 99).len(), 3);
    }

    #[test]
    fn top_k_breaks_ties_by_lower_id() {
        let m = Matrix::from_vec(4, 1, vec![1.0, 2.0, 2.0, -1.0]);
        let snap = EmbeddingSnapshot { epoch: 1, embeddings: m };
        let items = top_k(&snap, 0, 2);
        assert_eq!(items, vec![(1, 2.0), (2, 2.0)]);
    }

    #[test]
    fn per_shard_capacity_splits_the_total() {
        let cfg = ServeConfig { queue_capacity: 10, shards: 4, ..ServeConfig::default() };
        let shards = cfg.shards.max(1);
        assert_eq!(cfg.queue_capacity.div_ceil(shards).max(1), 3);
        // Degenerate configs still get a working queue.
        let tiny = ServeConfig { queue_capacity: 0, shards: 0, ..ServeConfig::default() };
        assert_eq!(tiny.queue_capacity.div_ceil(tiny.shards.max(1)).max(1), 1);
    }
}
