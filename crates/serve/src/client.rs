//! A small blocking client for the ink-serve protocol.
//!
//! One [`InkClient`] wraps one TCP connection. The simple methods run
//! strict request/response: every call writes a frame, then blocks for the
//! answer. Two v2 amplifiers cut the round-trip count for high-throughput
//! callers (see `docs/PROTOCOL.md` for the wire rules):
//!
//! * [`InkClient::batch`] packs many requests into one `Batch` frame and
//!   unpacks the per-slot answers — one round trip for N requests.
//! * [`InkClient::queue`] + [`InkClient::recv`] pipeline whole frames: queue
//!   any number of requests without reading, then collect the responses in
//!   order. The server answers strictly in request order per connection.
//!
//! Use one client per thread for concurrent load (the loopback test and the
//! serve bench both do).

use crate::protocol::{
    read_frame, write_frame, write_frame_noflush, Request, Response, PROTOCOL_VERSION,
};
use ink_graph::EdgeChange;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected, blocking protocol client.
pub struct InkClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Frames queued with [`InkClient::queue`] whose responses have not been
    /// collected yet.
    in_flight: usize,
}

/// What the server reports in response to a [`Request::Hello`]: the
/// negotiated protocol revision plus the capacity facts a client needs
/// before sending traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerHello {
    /// Protocol revision the server will speak on this connection.
    pub version: u16,
    /// Vertex-id bound for updates and queries.
    pub num_vertices: u64,
    /// Output embedding width (floats per embedding response).
    pub feat_dim: u32,
    /// Ingest shard count (capacity-planning hint).
    pub shards: u16,
    /// Snapshot epoch at the time of the handshake.
    pub epoch: u64,
}

/// Turns a mismatched response into an `io::Error` (server-reported errors
/// come through as `ErrorKind::Other` with the server's message).
fn unexpected(resp: Response) -> io::Error {
    match resp {
        Response::Error { message } => io::Error::other(format!("server error: {message}")),
        other => {
            io::Error::new(io::ErrorKind::InvalidData, format!("unexpected response {other:?}"))
        }
    }
}

impl InkClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { reader, writer: BufWriter::new(stream), in_flight: 0 })
    }

    /// Sends one request and blocks for its response. Any frames still
    /// queued by [`InkClient::queue`] are answered first (responses arrive
    /// strictly in request order), and their responses are discarded.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        while self.in_flight > 0 {
            let _ = self.recv()?;
        }
        write_frame(&mut self.writer, &req.encode())?;
        match read_frame(&mut self.reader)? {
            Some(payload) => Ok(Response::decode(&payload)?),
            None => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "server closed the connection",
            )),
        }
    }

    /// Version/capability handshake (protocol v2). Advertises
    /// [`PROTOCOL_VERSION`]; the server replies with the revision it will
    /// speak (`min` of both) plus its capacity facts. A v1 server does not
    /// know the tag and answers with an `Error`, surfaced here as
    /// `io::ErrorKind::Other` — callers wanting to interoperate can fall
    /// back to plain v1 calls on that path.
    pub fn hello(&mut self) -> io::Result<ServerHello> {
        match self.call(&Request::Hello { max_version: PROTOCOL_VERSION })? {
            Response::Hello { version, num_vertices, feat_dim, shards, epoch } => {
                Ok(ServerHello { version, num_vertices, feat_dim, shards, epoch })
            }
            other => Err(unexpected(other)),
        }
    }

    /// Sends many requests in one `Batch` frame (protocol v2) and returns
    /// the per-request responses in order — one round trip instead of
    /// `reqs.len()`. Only data-plane requests (`Update`, `Embedding`,
    /// `TopK`) are batchable; anything else comes back as an in-slot
    /// `Error` without poisoning its neighbours.
    ///
    /// ```
    /// use ink_graph::EdgeChange;
    /// use ink_serve::{InkClient, InkServer, Request, Response, ServeConfig};
    /// # use ink_gnn::{Aggregator, Model};
    /// # use ink_graph::DynGraph;
    /// # use ink_tensor::init;
    /// # use inkstream::{InkStream, StreamSession, UpdateConfig};
    /// # let mut rng = init::seeded_rng(7);
    /// # let graph = DynGraph::undirected_from_edges(6, &[(0, 1), (1, 2), (2, 3)]);
    /// # let features = init::uniform(&mut rng, 6, 4, -1.0, 1.0);
    /// # let model = Model::gcn(&mut rng, &[4, 4], Aggregator::Max);
    /// # let engine = InkStream::new(model, graph, features, UpdateConfig::default()).unwrap();
    /// # let handle =
    /// #     InkServer::bind("127.0.0.1:0", StreamSession::new(engine), ServeConfig::default())?;
    /// let mut client = InkClient::connect(handle.local_addr())?;
    /// // One frame carries two updates and a read; three answers come back
    /// // in slot order.
    /// let responses = client.batch(&[
    ///     Request::Update(vec![EdgeChange::insert(3, 4)]),
    ///     Request::Update(vec![EdgeChange::insert(4, 5)]),
    ///     Request::Embedding(0),
    /// ])?;
    /// assert_eq!(responses.len(), 3);
    /// assert!(matches!(responses[0], Response::Ack { .. }));
    /// assert!(matches!(responses[1], Response::Ack { .. }));
    /// assert!(matches!(responses[2], Response::Embedding { .. }));
    /// # handle.shutdown()?;
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn batch(&mut self, reqs: &[Request]) -> io::Result<Vec<Response>> {
        match self.call(&Request::Batch(reqs.to_vec()))? {
            Response::Batch(responses) => Ok(responses),
            other => Err(unexpected(other)),
        }
    }

    /// Queues one request without waiting for (or reading) its response —
    /// the pipelining half of the client. Frames accumulate in the write
    /// buffer; collect the responses in order with [`InkClient::recv`]
    /// (which flushes the buffer first).
    pub fn queue(&mut self, req: &Request) -> io::Result<()> {
        write_frame_noflush(&mut self.writer, &req.encode())?;
        self.in_flight += 1;
        Ok(())
    }

    /// Collects the next pipelined response (in request order), flushing
    /// any queued frames first. Errors when nothing is in flight.
    pub fn recv(&mut self) -> io::Result<Response> {
        if self.in_flight == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "recv with no queued request",
            ));
        }
        self.writer.flush()?;
        match read_frame(&mut self.reader)? {
            Some(payload) => {
                self.in_flight -= 1;
                Ok(Response::decode(&payload)?)
            }
            None => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "server closed the connection",
            )),
        }
    }

    /// Queued requests whose responses have not been collected yet.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Submits edge changes. `Ok(Ok(epoch))` — admitted (visible at an epoch
    /// strictly after `epoch`); `Ok(Err(retry_after_ms))` — rejected by
    /// admission control, retry after the hint.
    pub fn update(&mut self, changes: Vec<EdgeChange>) -> io::Result<Result<u64, u32>> {
        match self.call(&Request::Update(changes))? {
            Response::Ack { epoch } => Ok(Ok(epoch)),
            Response::Rejected { retry_after_ms } => Ok(Err(retry_after_ms)),
            other => Err(unexpected(other)),
        }
    }

    /// Submits edge changes, sleeping out `Rejected` responses until the
    /// server admits them.
    pub fn update_blocking(&mut self, changes: Vec<EdgeChange>) -> io::Result<u64> {
        loop {
            match self.update(changes.clone())? {
                Ok(epoch) => return Ok(epoch),
                Err(retry_after_ms) => {
                    std::thread::sleep(std::time::Duration::from_millis(retry_after_ms.max(1).into()))
                }
            }
        }
    }

    /// Reads one vertex's embedding from the current snapshot:
    /// `(epoch, values)`.
    pub fn embedding(&mut self, vertex: u32) -> io::Result<(u64, Vec<f32>)> {
        match self.call(&Request::Embedding(vertex))? {
            Response::Embedding { epoch, values } => Ok((epoch, values)),
            other => Err(unexpected(other)),
        }
    }

    /// Top-k most similar vertices to `vertex`: `(epoch, items)`.
    pub fn top_k(&mut self, vertex: u32, k: u32) -> io::Result<(u64, Vec<(u32, f32)>)> {
        match self.call(&Request::TopK { vertex, k })? {
            Response::TopK { epoch, items } => Ok((epoch, items)),
            other => Err(unexpected(other)),
        }
    }

    /// The server's `SessionSummary` as a compact JSON string.
    pub fn stats(&mut self) -> io::Result<String> {
        match self.call(&Request::Stats)? {
            Response::Stats { json } => Ok(json),
            other => Err(unexpected(other)),
        }
    }

    /// Scrapes the server's full metrics registry as Prometheus text
    /// exposition — the curl-free monitoring path. The document covers the
    /// whole stack (pipeline, drift auditor, serving layer) because the
    /// serve instruments register into the session's registry.
    ///
    /// ```
    /// use ink_serve::{InkClient, InkServer, ServeConfig};
    /// # use ink_gnn::{Aggregator, Model};
    /// # use ink_graph::DynGraph;
    /// # use ink_tensor::init;
    /// # use inkstream::{InkStream, StreamSession, UpdateConfig};
    /// # let mut rng = init::seeded_rng(7);
    /// # let graph = DynGraph::undirected_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
    /// # let features = init::uniform(&mut rng, 4, 4, -1.0, 1.0);
    /// # let model = Model::gcn(&mut rng, &[4, 4], Aggregator::Max);
    /// # let engine = InkStream::new(model, graph, features, UpdateConfig::default()).unwrap();
    /// # let handle =
    /// #     InkServer::bind("127.0.0.1:0", StreamSession::new(engine), ServeConfig::default())?;
    /// let mut client = InkClient::connect(handle.local_addr())?;
    /// let text = client.metrics()?;
    /// // The document parses as Prometheus text exposition; pick out the
    /// // ingest counter.
    /// let families = ink_obs::parse::parse_prometheus(&text)
    ///     .map_err(std::io::Error::other)?;
    /// let ingests = families
    ///     .iter()
    ///     .find(|f| f.name == "ink_session_ingests_total")
    ///     .expect("session instruments are registered at construction");
    /// assert_eq!(ingests.samples[0].value, 0.0); // nothing ingested yet
    /// # handle.shutdown()?;
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            other => Err(unexpected(other)),
        }
    }

    /// Dumps the server's span ring as Chrome `trace_event` JSON — save it
    /// to a file and load it in `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn trace_dump(&mut self) -> io::Result<String> {
        match self.call(&Request::TraceDump)? {
            Response::TraceDump { json } => Ok(json),
            other => Err(unexpected(other)),
        }
    }

    /// Barrier: returns the epoch at which every update admitted before this
    /// call is visible.
    pub fn flush(&mut self) -> io::Result<u64> {
        match self.call(&Request::Flush)? {
            Response::Flushed { epoch } => Ok(epoch),
            other => Err(unexpected(other)),
        }
    }
}
