//! The wire protocol (v2 — see `docs/PROTOCOL.md` for the normative spec).
//!
//! Every message is one *frame*: a little-endian `u32` payload length, then
//! the payload — a one-byte tag followed by tag-specific fields (all
//! little-endian, no padding). Length-prefixing keeps framing trivial over
//! TCP and caps a malicious length at [`MAX_FRAME`] before any allocation.
//!
//! ```text
//! frame    := len:u32 payload[len]
//! payload  := tag:u8 body
//!
//! v1 requests                           v1 responses
//!   0x01 Update    n:u32 (src:u32         0x81 Ack        epoch:u64
//!        dst:u32 op:u8){n}                0x82 Rejected   retry_after_ms:u32
//!   0x02 Embedding v:u32                  0x83 Embedding  epoch:u64 d:u32 f32{d}
//!   0x03 TopK      v:u32 k:u32            0x84 TopK       epoch:u64 k:u32
//!   0x04 Stats                                 (v:u32 score:f32){k}
//!   0x05 Flush                            0x85 Stats      len:u32 json-utf8
//!   0x06 Metrics                          0x86 Error      len:u32 msg-utf8
//!   0x07 TraceDump                        0x87 Flushed    epoch:u64
//!                                         0x88 Metrics    len:u32 text-utf8
//!                                         0x89 TraceDump  len:u32 json-utf8
//! v2 requests                           v2 responses
//!   0x08 Hello     max_version:u16        0x8A Hello      version:u16
//!   0x09 Batch     n:u32                       vertices:u64 feat_dim:u32
//!        (len:u32 payload[len]){n}             shards:u16 epoch:u64
//!                                         0x8B Batch      n:u32
//!                                              (len:u32 payload[len]){n}
//! ```
//!
//! `op` is 0 for insert, 1 for remove. The `Ack` epoch is the snapshot epoch
//! at admission time — the update lands in some strictly later epoch; send
//! `Flush` to wait for it.
//!
//! **Pipelining.** Responses are sent strictly in request order on every
//! connection, so a client may write any number of frames before reading the
//! matching responses. `Batch` additionally packs many requests into one
//! frame (one syscall, one length check) and is answered by one `Batch`
//! response carrying the per-request answers in order. Only data-plane
//! requests (`Update`, `Embedding`, `TopK`) ride inside a batch; control
//! requests (`Flush`, `Stats`, ...) in a batch slot are answered with an
//! in-slot `Error`, and a *nested* `Batch` fails to decode.
//!
//! **Version skew.** Decoding returns a typed [`DecodeError`]; an
//! unrecognized tag surfaces as [`DecodeError::UnknownTag`], so version skew
//! (an old peer receiving a v2 `Hello`/`Batch` it predates) fails loudly
//! with the offending tag instead of a generic parse error. A v2 client
//! probes with `Hello` and falls back to v1 framing when the server answers
//! with an error instead of `Hello`.

use ink_graph::{EdgeChange, EdgeOp, VertexId};
use std::fmt;
use std::io::{self, Read, Write};

/// Hard cap on a frame payload (16 MiB): rejects hostile lengths before
/// allocating, while letting ~1M-edge update batches through.
pub const MAX_FRAME: usize = 16 << 20;

/// Protocol revision spoken by this build. Revision 2 adds `Hello`
/// negotiation and `Batch` container frames on top of the v1 tag set.
pub const PROTOCOL_VERSION: u16 = 2;

/// Why a payload failed to decode.
///
/// Unknown tags get their own variant so protocol version skew is
/// distinguishable from a corrupt frame: a peer one protocol revision behind
/// sees exactly which tag it does not speak.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the fields the tag promises.
    Short,
    /// The payload had bytes left over after the last field.
    Trailing(usize),
    /// The leading tag byte is not one this protocol revision defines.
    UnknownTag(u8),
    /// A field held an invalid value (bad edge op, lying length, non-UTF-8
    /// text, ...).
    Malformed(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Short => write!(f, "frame payload too short"),
            DecodeError::Trailing(n) => write!(f, "{n} trailing bytes"),
            DecodeError::UnknownTag(tag) => {
                write!(f, "unknown tag {tag:#04x} (protocol version skew?)")
            }
            DecodeError::Malformed(detail) => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<DecodeError> for io::Error {
    fn from(e: DecodeError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Apply these edge changes (asynchronously, possibly coalesced).
    Update(Vec<EdgeChange>),
    /// Read one vertex's output embedding from the current snapshot.
    Embedding(VertexId),
    /// The `k` vertices most similar to `vertex` by embedding dot product.
    TopK {
        /// Query vertex.
        vertex: VertexId,
        /// Result count.
        k: u32,
    },
    /// The server's rolling `SessionSummary` as JSON.
    Stats,
    /// Barrier: reply only after everything enqueued before this request
    /// has been applied and published.
    Flush,
    /// The server's full metrics registry as Prometheus text exposition.
    Metrics,
    /// The server's span ring as Chrome `trace_event` JSON.
    TraceDump,
    /// v2 — version/capability negotiation. Carries the highest protocol
    /// revision the client speaks; answered with [`Response::Hello`].
    Hello {
        /// Highest protocol revision the client supports.
        max_version: u16,
    },
    /// v2 — many data-plane requests in one frame, answered by one
    /// [`Response::Batch`] with the per-request answers in order.
    Batch(Vec<Request>),
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Update admitted; it will be visible at an epoch `> epoch`.
    Ack {
        /// Snapshot epoch at admission time.
        epoch: u64,
    },
    /// Update turned away by admission control; retry after the hint.
    Rejected {
        /// Client backoff hint in milliseconds.
        retry_after_ms: u32,
    },
    /// One embedding row.
    Embedding {
        /// Epoch of the snapshot served.
        epoch: u64,
        /// The row values.
        values: Vec<f32>,
    },
    /// Top-k similar vertices, most similar first.
    TopK {
        /// Epoch of the snapshot served.
        epoch: u64,
        /// `(vertex, score)` pairs, descending score, ties by lower id.
        items: Vec<(VertexId, f32)>,
    },
    /// The stats JSON document.
    Stats {
        /// Compact JSON rendering of the `SessionSummary`.
        json: String,
    },
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Flush barrier reached.
    Flushed {
        /// Epoch containing every update enqueued before the flush.
        epoch: u64,
    },
    /// The metrics scrape.
    Metrics {
        /// Prometheus text exposition (version 0.0.4).
        text: String,
    },
    /// The trace dump.
    TraceDump {
        /// Chrome `trace_event` JSON (object form with `traceEvents`).
        json: String,
    },
    /// v2 — answer to [`Request::Hello`]: the negotiated revision plus the
    /// capacity facts a client needs up front.
    Hello {
        /// Protocol revision the server will speak on this connection
        /// (`min(server_max, client_max)`).
        version: u16,
        /// Vertex-id bound for updates and queries.
        num_vertices: u64,
        /// Output embedding width (floats per `Embedding` response).
        feat_dim: u32,
        /// Ingest shard count (capacity-planning hint).
        shards: u16,
        /// Snapshot epoch at the time of the handshake.
        epoch: u64,
    },
    /// v2 — per-request answers for a [`Request::Batch`], in request order.
    Batch(Vec<Response>),
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Cursor over a received payload.
struct Take<'a>(&'a [u8]);

impl Take<'_> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let (&b, rest) = self.0.split_first().ok_or(DecodeError::Short)?;
        self.0 = rest;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.chunk::<2>()?))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.chunk::<4>()?))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.chunk::<8>()?))
    }

    fn f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_le_bytes(self.chunk::<4>()?))
    }

    fn chunk<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        if self.0.len() < N {
            return Err(DecodeError::Short);
        }
        let (head, rest) = self.0.split_at(N);
        self.0 = rest;
        Ok(head.try_into().unwrap())
    }

    fn bytes(&mut self, n: usize) -> Result<&[u8], DecodeError> {
        if self.0.len() < n {
            return Err(DecodeError::Short);
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Ok(head)
    }

    fn utf8(&mut self, n: usize, what: &str) -> Result<String, DecodeError> {
        String::from_utf8(self.bytes(n)?.to_vec())
            .map_err(|_| bad(format!("{what} payload is not UTF-8")))
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::Trailing(self.0.len()))
        }
    }
}

fn bad(detail: impl Into<String>) -> DecodeError {
    DecodeError::Malformed(detail.into())
}

impl Request {
    /// Serialises the request payload (without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Appends the request payload to `buf` — the allocation-free sibling of
    /// [`Request::encode`] for callers that own a reusable buffer.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Update(changes) => {
                buf.push(0x01);
                put_u32(buf, changes.len() as u32);
                for c in changes {
                    put_u32(buf, c.src);
                    put_u32(buf, c.dst);
                    buf.push(match c.op {
                        EdgeOp::Insert => 0,
                        EdgeOp::Remove => 1,
                    });
                }
            }
            Request::Embedding(v) => {
                buf.push(0x02);
                put_u32(buf, *v);
            }
            Request::TopK { vertex, k } => {
                buf.push(0x03);
                put_u32(buf, *vertex);
                put_u32(buf, *k);
            }
            Request::Stats => buf.push(0x04),
            Request::Flush => buf.push(0x05),
            Request::Metrics => buf.push(0x06),
            Request::TraceDump => buf.push(0x07),
            Request::Hello { max_version } => {
                buf.push(0x08);
                put_u16(buf, *max_version);
            }
            Request::Batch(reqs) => {
                buf.push(0x09);
                put_u32(buf, reqs.len() as u32);
                for req in reqs {
                    let at = buf.len();
                    put_u32(buf, 0); // length backpatched below
                    req.encode_into(buf);
                    let len = (buf.len() - at - 4) as u32;
                    buf[at..at + 4].copy_from_slice(&len.to_le_bytes());
                }
            }
        }
    }

    /// Parses a request payload.
    pub fn decode(payload: &[u8]) -> Result<Request, DecodeError> {
        let mut t = Take(payload);
        let req = match t.u8()? {
            0x01 => {
                let n = t.u32()? as usize;
                if n.saturating_mul(9) > payload.len() {
                    return Err(bad(format!("update claims {n} changes, frame too small")));
                }
                let mut changes = Vec::with_capacity(n);
                for _ in 0..n {
                    let src = t.u32()?;
                    let dst = t.u32()?;
                    let op = match t.u8()? {
                        0 => EdgeOp::Insert,
                        1 => EdgeOp::Remove,
                        other => return Err(bad(format!("unknown edge op {other}"))),
                    };
                    changes.push(EdgeChange { src, dst, op });
                }
                Request::Update(changes)
            }
            0x02 => Request::Embedding(t.u32()?),
            0x03 => Request::TopK { vertex: t.u32()?, k: t.u32()? },
            0x04 => Request::Stats,
            0x05 => Request::Flush,
            0x06 => Request::Metrics,
            0x07 => Request::TraceDump,
            0x08 => Request::Hello { max_version: t.u16()? },
            0x09 => {
                let n = t.u32()? as usize;
                if n.saturating_mul(5) > payload.len() {
                    return Err(bad(format!("batch claims {n} requests, frame too small")));
                }
                let mut reqs = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = t.u32()? as usize;
                    let sub = t.bytes(len)?;
                    if sub.first() == Some(&0x09) {
                        return Err(bad("nested batch"));
                    }
                    reqs.push(Request::decode(sub)?);
                }
                Request::Batch(reqs)
            }
            tag => return Err(DecodeError::UnknownTag(tag)),
        };
        t.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serialises the response payload (without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Appends the response payload to `buf` — the allocation-free sibling
    /// of [`Response::encode`]; the server encodes straight into connection
    /// write buffers through this.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Response::Ack { epoch } => {
                buf.push(0x81);
                put_u64(buf, *epoch);
            }
            Response::Rejected { retry_after_ms } => {
                buf.push(0x82);
                put_u32(buf, *retry_after_ms);
            }
            Response::Embedding { epoch, values } => encode_embedding(buf, *epoch, values),
            Response::TopK { epoch, items } => {
                buf.push(0x84);
                put_u64(buf, *epoch);
                put_u32(buf, items.len() as u32);
                for &(v, s) in items {
                    put_u32(buf, v);
                    put_f32(buf, s);
                }
            }
            Response::Stats { json } => {
                buf.push(0x85);
                put_u32(buf, json.len() as u32);
                buf.extend_from_slice(json.as_bytes());
            }
            Response::Error { message } => {
                buf.push(0x86);
                put_u32(buf, message.len() as u32);
                buf.extend_from_slice(message.as_bytes());
            }
            Response::Flushed { epoch } => {
                buf.push(0x87);
                put_u64(buf, *epoch);
            }
            Response::Metrics { text } => {
                buf.push(0x88);
                put_u32(buf, text.len() as u32);
                buf.extend_from_slice(text.as_bytes());
            }
            Response::TraceDump { json } => {
                buf.push(0x89);
                put_u32(buf, json.len() as u32);
                buf.extend_from_slice(json.as_bytes());
            }
            Response::Hello { version, num_vertices, feat_dim, shards, epoch } => {
                buf.push(0x8A);
                put_u16(buf, *version);
                put_u64(buf, *num_vertices);
                put_u32(buf, *feat_dim);
                put_u16(buf, *shards);
                put_u64(buf, *epoch);
            }
            Response::Batch(resps) => {
                buf.push(0x8B);
                put_u32(buf, resps.len() as u32);
                for resp in resps {
                    let at = buf.len();
                    put_u32(buf, 0); // length backpatched below
                    resp.encode_into(buf);
                    let len = (buf.len() - at - 4) as u32;
                    buf[at..at + 4].copy_from_slice(&len.to_le_bytes());
                }
            }
        }
    }

    /// Parses a response payload.
    pub fn decode(payload: &[u8]) -> Result<Response, DecodeError> {
        let mut t = Take(payload);
        let resp = match t.u8()? {
            0x81 => Response::Ack { epoch: t.u64()? },
            0x82 => Response::Rejected { retry_after_ms: t.u32()? },
            0x83 => {
                let epoch = t.u64()?;
                let d = t.u32()? as usize;
                let mut values = Vec::with_capacity(d.min(MAX_FRAME / 4));
                for _ in 0..d {
                    values.push(t.f32()?);
                }
                Response::Embedding { epoch, values }
            }
            0x84 => {
                let epoch = t.u64()?;
                let k = t.u32()? as usize;
                let mut items = Vec::with_capacity(k.min(MAX_FRAME / 8));
                for _ in 0..k {
                    items.push((t.u32()?, t.f32()?));
                }
                Response::TopK { epoch, items }
            }
            0x85 => {
                let n = t.u32()? as usize;
                Response::Stats { json: t.utf8(n, "stats")? }
            }
            0x86 => {
                let n = t.u32()? as usize;
                Response::Error { message: t.utf8(n, "error")? }
            }
            0x87 => Response::Flushed { epoch: t.u64()? },
            0x88 => {
                let n = t.u32()? as usize;
                Response::Metrics { text: t.utf8(n, "metrics")? }
            }
            0x89 => {
                let n = t.u32()? as usize;
                Response::TraceDump { json: t.utf8(n, "trace dump")? }
            }
            0x8A => Response::Hello {
                version: t.u16()?,
                num_vertices: t.u64()?,
                feat_dim: t.u32()?,
                shards: t.u16()?,
                epoch: t.u64()?,
            },
            0x8B => {
                let n = t.u32()? as usize;
                if n.saturating_mul(5) > payload.len() {
                    return Err(bad(format!("batch claims {n} responses, frame too small")));
                }
                let mut resps = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = t.u32()? as usize;
                    let sub = t.bytes(len)?;
                    if sub.first() == Some(&0x8B) {
                        return Err(bad("nested batch"));
                    }
                    resps.push(Response::decode(sub)?);
                }
                Response::Batch(resps)
            }
            tag => return Err(DecodeError::UnknownTag(tag)),
        };
        t.finish()?;
        Ok(resp)
    }
}

/// Appends an `Embedding` response payload built directly from a borrowed
/// row — the zero-copy read path: the server never materialises a `Vec<f32>`
/// or a `Response` for the hot query, it serialises the snapshot row
/// straight into the connection's write buffer.
pub fn encode_embedding(buf: &mut Vec<u8>, epoch: u64, values: &[f32]) {
    buf.push(0x83);
    put_u64(buf, epoch);
    put_u32(buf, values.len() as u32);
    buf.reserve(values.len() * 4);
    for &x in values {
        put_f32(buf, x);
    }
}

/// Appends one length-prefixed frame to `out`, with the payload produced by
/// `build` written in place (no intermediate payload allocation). The length
/// prefix is backpatched after `build` runs. Errors with `InvalidInput` —
/// and leaves `out` exactly as it was — when the payload exceeds
/// [`MAX_FRAME`].
pub fn append_frame(out: &mut Vec<u8>, build: impl FnOnce(&mut Vec<u8>)) -> io::Result<()> {
    let start = out.len();
    out.extend_from_slice(&[0u8; 4]);
    build(out);
    let len = out.len() - start - 4;
    if len > MAX_FRAME {
        out.truncate(start);
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload of {len} bytes exceeds MAX_FRAME ({MAX_FRAME})"),
        ));
    }
    out[start..start + 4].copy_from_slice(&(len as u32).to_le_bytes());
    Ok(())
}

/// Writes one length-prefixed frame. Errors with `InvalidInput` when the
/// payload exceeds [`MAX_FRAME`] — sending it anyway would make the peer's
/// `read_frame` reject the length as hostile and tear the connection down
/// with no diagnostic on this side.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    write_frame_noflush(w, payload)?;
    w.flush()
}

/// [`write_frame`] without the trailing flush — the pipelining building
/// block: queue many frames, then flush the writer once.
pub fn write_frame_noflush(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload of {} bytes exceeds MAX_FRAME ({MAX_FRAME})", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame. `Ok(None)` on a clean EOF at a frame
/// boundary (the peer hung up between messages).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(r: Request) {
        assert_eq!(Request::decode(&r.encode()).unwrap(), r);
    }

    fn roundtrip_resp(r: Response) {
        assert_eq!(Response::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Update(vec![]));
        roundtrip_req(Request::Update(vec![
            EdgeChange::insert(0, u32::MAX),
            EdgeChange::remove(7, 9),
        ]));
        roundtrip_req(Request::Embedding(42));
        roundtrip_req(Request::TopK { vertex: 3, k: 10 });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Flush);
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::TraceDump);
        roundtrip_req(Request::Hello { max_version: 2 });
        roundtrip_req(Request::Batch(vec![
            Request::Update(vec![EdgeChange::insert(1, 2)]),
            Request::Embedding(3),
            Request::TopK { vertex: 0, k: 4 },
        ]));
        roundtrip_req(Request::Batch(vec![]));
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Ack { epoch: u64::MAX });
        roundtrip_resp(Response::Rejected { retry_after_ms: 25 });
        roundtrip_resp(Response::Embedding { epoch: 3, values: vec![1.0, -2.5, f32::MIN] });
        roundtrip_resp(Response::TopK { epoch: 9, items: vec![(1, 0.5), (2, -0.5)] });
        roundtrip_resp(Response::Stats { json: "{\"a\": 1}".into() });
        roundtrip_resp(Response::Error { message: "nope — bad vertex".into() });
        roundtrip_resp(Response::Flushed { epoch: 11 });
        roundtrip_resp(Response::Metrics { text: "# TYPE x counter\nx 1\n".into() });
        roundtrip_resp(Response::TraceDump { json: "{\"traceEvents\":[]}".into() });
        roundtrip_resp(Response::Hello {
            version: 2,
            num_vertices: 1 << 33,
            feat_dim: 64,
            shards: 8,
            epoch: 17,
        });
        roundtrip_resp(Response::Batch(vec![
            Response::Ack { epoch: 1 },
            Response::Embedding { epoch: 1, values: vec![0.5] },
            Response::Error { message: "slot error".into() },
        ]));
    }

    #[test]
    fn unknown_tags_are_typed() {
        // A peer one protocol revision behind must see exactly which tag it
        // does not speak, not a generic parse failure.
        assert_eq!(Request::decode(&[0x7f]), Err(DecodeError::UnknownTag(0x7f)));
        assert_eq!(Request::decode(&[0xff]), Err(DecodeError::UnknownTag(0xff)));
        assert_eq!(Response::decode(&[0x90]), Err(DecodeError::UnknownTag(0x90)));
        // Tags this revision *does* define decode fine with empty bodies.
        assert_eq!(Request::decode(&[0x06]), Ok(Request::Metrics));
        assert_eq!(Request::decode(&[0x07]), Ok(Request::TraceDump));
        // The error renders with the tag value and converts to io::Error
        // losslessly enough for logs.
        let e = DecodeError::UnknownTag(0x42);
        assert!(e.to_string().contains("0x42"));
        assert_eq!(std::io::Error::from(e).kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn other_decode_failures_keep_their_shape() {
        assert_eq!(Request::decode(&[]), Err(DecodeError::Short));
        assert_eq!(Request::decode(&[0x02, 1, 0, 0, 0, 9]), Err(DecodeError::Trailing(1)));
        assert!(matches!(Request::decode(&[0x01, 0xff]), Err(DecodeError::Short)));
    }

    #[test]
    fn garbage_is_rejected_not_panicking() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0x01, 0xff]).is_err()); // short count
        assert!(Request::decode(&[0x7f]).is_err()); // unknown tag
        assert!(Request::decode(&[0x02, 1, 0, 0, 0, 9]).is_err()); // trailing
        assert!(Response::decode(&[0x83, 0, 0]).is_err());
        // Update claiming more changes than the frame can hold must fail
        // before allocating.
        let mut lying = vec![0x01];
        lying.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&lying).is_err());
        // Same for a batch header lying about its request count.
        let mut lying = vec![0x09];
        lying.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&lying).is_err());
    }

    #[test]
    fn bad_edge_op_is_rejected() {
        let mut buf = vec![0x01];
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.push(7); // not 0/1
        assert!(Request::decode(&buf).is_err());
    }

    #[test]
    fn nested_batches_fail_to_decode() {
        let inner = Request::Batch(vec![Request::Stats]);
        let outer = Request::Batch(vec![inner]);
        assert!(matches!(Request::decode(&outer.encode()), Err(DecodeError::Malformed(_))));
        let inner = Response::Batch(vec![Response::Ack { epoch: 0 }]);
        let outer = Response::Batch(vec![inner]);
        assert!(matches!(Response::decode(&outer.encode()), Err(DecodeError::Malformed(_))));
    }

    #[test]
    fn batch_sub_payload_with_lying_length_is_rejected() {
        let mut buf = vec![0x09];
        buf.extend_from_slice(&1u32.to_le_bytes()); // one sub-request ...
        buf.extend_from_slice(&100u32.to_le_bytes()); // ... claiming 100 bytes
        buf.push(0x04); // but only 1 present
        assert!(Request::decode(&buf).is_err());
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        let a = Request::TopK { vertex: 1, k: 2 }.encode();
        let b = Request::Flush.encode();
        write_frame(&mut wire, &a).unwrap();
        write_frame(&mut wire, &b).unwrap();
        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), a);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b);
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn append_frame_matches_write_frame() {
        let resp = Response::TopK { epoch: 4, items: vec![(9, 1.5), (2, 0.0)] };
        let mut via_writer = Vec::new();
        write_frame(&mut via_writer, &resp.encode()).unwrap();
        let mut via_append = Vec::new();
        append_frame(&mut via_append, |buf| resp.encode_into(buf)).unwrap();
        assert_eq!(via_writer, via_append);
    }

    #[test]
    fn zero_copy_embedding_encoding_matches_the_enum_path() {
        let values = vec![1.5f32, -0.25, f32::NAN, 0.0];
        let mut direct = Vec::new();
        encode_embedding(&mut direct, 7, &values);
        let enum_path = Response::Embedding { epoch: 7, values: values.clone() }.encode();
        assert_eq!(direct, enum_path, "borrowed-row path is byte-identical");
    }

    #[test]
    fn oversized_frame_length_is_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(read_frame(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn oversized_payload_is_refused_at_the_writer() {
        let payload = vec![0u8; MAX_FRAME + 1];
        let mut wire = Vec::new();
        let err = write_frame(&mut wire, &payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(wire.is_empty(), "nothing hits the wire on refusal");
        // At the cap exactly is still fine.
        assert!(write_frame(&mut io::sink(), &vec![0u8; MAX_FRAME]).is_ok());
        // The in-place framer refuses the same way and restores the buffer.
        let mut out = vec![0xAB];
        let err = append_frame(&mut out, |buf| buf.extend_from_slice(&vec![0u8; MAX_FRAME + 1]))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert_eq!(out, vec![0xAB], "buffer restored on refusal");
    }

    #[test]
    fn torn_frame_is_an_error_not_eof() {
        let payload = Request::Stats.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        wire.pop();
        let mut r = wire.as_slice();
        assert!(read_frame(&mut r).is_err(), "EOF mid-frame is a torn message");
    }
}
