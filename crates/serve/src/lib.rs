//! # ink-serve — a concurrent serving layer for the InkStream engine
//!
//! Turns a [`StreamSession`](inkstream::StreamSession) into a network
//! service: a threaded TCP server speaking a small length-prefixed binary
//! protocol that multiplexes **edge-update events** and **embedding /
//! top-k queries** from many concurrent clients.
//!
//! The design keeps the engine single-threaded (it is not `Sync`) and moves
//! the concurrency to the edges:
//!
//! * updates flow through a bounded [`IngestQueue`] with pluggable
//!   [`Backpressure`] (block / reject-with-retry-after / drop-oldest) into
//!   the **single writer thread**, which coalesces everything pending via
//!   [`DeltaBatch::coalesce`](ink_graph::DeltaBatch::coalesce) and applies
//!   one net batch through the sharded incremental pipeline,
//! * queries are answered by the connection threads straight from
//!   epoch-versioned, double-buffered
//!   [`EmbeddingSnapshot`](inkstream::snapshot::EmbeddingSnapshot)s —
//!   readers never block on an in-flight update,
//! * a `flush` request inserts a barrier and returns the epoch at which all
//!   previously admitted updates are visible, giving clients
//!   read-your-writes when they want it,
//! * [`ServerHandle::shutdown`] drains the queue, publishes the final
//!   epoch, optionally writes a checkpoint, and hands the session back,
//! * observability rides the same socket: a `metrics` request scrapes the
//!   session's [`MetricsRegistry`](ink_obs::MetricsRegistry) as Prometheus
//!   text, and a `trace_dump` request returns the span ring as Chrome
//!   `trace_event` JSON (see [`InkClient::metrics`] and
//!   [`InkClient::trace_dump`]).
//!
//! Everything is `std::net` + the workspace `crossbeam` channel shim — no
//! async runtime.

#![deny(missing_docs)]

pub mod client;
mod conn;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod shard;

pub use client::{InkClient, ServerHello};
pub use metrics::ServerMetrics;
pub use protocol::{DecodeError, Request, Response, MAX_FRAME, PROTOCOL_VERSION};
pub use queue::{Admission, Backpressure, IngestQueue, QueueItem};
pub use server::{InkServer, PartitionedServerHandle, ServeConfig, ServerHandle};
pub use shard::{Drained, ShardPush, ShardedIngest};
