//! Loopback integration test: a server on an ephemeral port, four concurrent
//! clients mixing updates and queries, and every response checked bitwise
//! against a single-threaded reference replay.
//!
//! The engine runs max aggregation, where incremental outputs are bitwise
//! equal to full recomputation — so after the updater's `i`-th
//! update+flush, epoch `i + 1` must equal the reference engine after `i + 1`
//! raw batches, no matter how the server coalesced or partitioned the work.
//! Query clients race the writer the whole time and verify whatever epoch
//! they observe against the precomputed per-epoch outputs. Shutdown must
//! leave a checkpoint that loads back into a bitwise-identical engine.

use ink_gnn::{Aggregator, Model};
use ink_graph::generators::erdos_renyi;
use ink_graph::{DeltaBatch, DynGraph, EdgeChange};
use ink_serve::protocol::{read_frame, write_frame, Request, Response};
use ink_serve::{Backpressure, InkClient, InkServer, ServeConfig};
use ink_tensor::init::{seeded_rng, sparse_power_law};
use ink_tensor::Matrix;
use inkstream::{InkStream, StreamSession, UpdateConfig};
use rand::RngExt;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const N: usize = 60;
const EDGES: usize = 150;
const FEAT_DIM: usize = 6;
const BATCHES: usize = 24;
const BATCH: usize = 8;
const MODEL_SEED: u64 = 11;
const GRAPH_SEED: u64 = 22;
const FEAT_SEED: u64 = 33;

fn model() -> Model {
    Model::gcn(&mut seeded_rng(MODEL_SEED), &[FEAT_DIM, 8, 4], Aggregator::Max)
}

fn graph() -> DynGraph {
    erdos_renyi(&mut seeded_rng(GRAPH_SEED), N, EDGES)
}

fn engine() -> InkStream {
    let feats = sparse_power_law(&mut seeded_rng(FEAT_SEED), N, FEAT_DIM, 0.2, 0.9);
    InkStream::new(model(), graph(), feats, UpdateConfig::default()).unwrap()
}

/// The deterministic update stream both the server and the reference see.
fn update_batches() -> Vec<Vec<EdgeChange>> {
    let mut rng = seeded_rng(0xB47C);
    (0..BATCHES)
        .map(|_| {
            (0..BATCH)
                .map(|i| {
                    let src = rng.random_range(0..N as u32);
                    let mut dst = rng.random_range(0..N as u32);
                    if dst == src {
                        dst = (dst + 1) % N as u32;
                    }
                    if i % 3 == 0 {
                        EdgeChange::remove(src, dst)
                    } else {
                        EdgeChange::insert(src, dst)
                    }
                })
                .collect()
        })
        .collect()
}

/// Reference outputs per epoch: index 0 is the bootstrap, index `i + 1` the
/// state after raw batches `0..=i` applied by one thread.
fn reference_outputs(batches: &[Vec<EdgeChange>]) -> Vec<Matrix> {
    let mut reference = engine();
    let mut outputs = vec![reference.output().clone()];
    for batch in batches {
        reference.apply_delta(&DeltaBatch::new(batch.clone()));
        outputs.push(reference.output().clone());
    }
    outputs
}

#[test]
fn four_clients_match_single_threaded_reference_bitwise() {
    let batches = update_batches();
    let expected = Arc::new(reference_outputs(&batches));

    let dir = std::env::temp_dir().join(format!("ink-serve-loopback-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("shutdown.ckpt");

    let handle = InkServer::bind(
        "127.0.0.1:0",
        StreamSession::new(engine()),
        ServeConfig {
            queue_capacity: 8,
            backpressure: Backpressure::Block,
            checkpoint_path: Some(ckpt.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind on ephemeral port");
    let addr = handle.local_addr();
    let done = Arc::new(AtomicBool::new(false));

    // Client 1 of 4: the updater, which also queries between updates.
    let updater = {
        let expected = expected.clone();
        let batches = batches.clone();
        std::thread::spawn(move || {
            let mut client = InkClient::connect(addr).unwrap();
            for (i, batch) in batches.iter().enumerate() {
                client.update(batch.clone()).unwrap().expect("block mode never rejects");
                let epoch = client.flush().unwrap();
                assert_eq!(epoch as usize, i + 1, "one epoch per flushed update");
                let v = (i % N) as u32;
                let (e, values) = client.embedding(v).unwrap();
                assert_eq!(e as usize, i + 1, "no other updater is running");
                assert_eq!(values, expected[e as usize].row(v as usize), "bitwise at epoch {e}");
            }
        })
    };

    // Clients 2-4: queriers racing the writer, checking whatever epoch the
    // snapshot hands them against the reference replay.
    let queriers: Vec<_> = (0..3)
        .map(|q| {
            let expected = expected.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut rng = seeded_rng(0x9E + q as u64);
                let mut client = InkClient::connect(addr).unwrap();
                let mut checked = 0u32;
                while !done.load(Ordering::Relaxed) || checked < 50 {
                    let v = rng.random_range(0..N as u32);
                    let (e, values) = client.embedding(v).unwrap();
                    let want = &expected[e as usize];
                    assert_eq!(values, want.row(v as usize), "bitwise at epoch {e}");
                    if checked.is_multiple_of(8) {
                        let (te, items) = client.top_k(v, 5).unwrap();
                        assert_eq!(items.len(), 5);
                        let want = &expected[te as usize];
                        for w in items.windows(2) {
                            assert!(w[0].1 >= w[1].1, "top-k must be sorted descending");
                        }
                        for &(u, score) in &items {
                            let dot: f32 = want
                                .row(v as usize)
                                .iter()
                                .zip(want.row(u as usize))
                                .map(|(a, b)| a * b)
                                .sum();
                            assert_eq!(score, dot, "top-k score is the snapshot dot product");
                        }
                    }
                    checked += 1;
                }
            })
        })
        .collect();

    updater.join().expect("updater thread");
    done.store(true, Ordering::Relaxed);
    for q in queriers {
        q.join().expect("querier thread");
    }

    // Stats must be valid JSON-ish and reflect the workload.
    let mut client = InkClient::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.contains("\"epochs\": 24"), "24 update epochs in {stats}");
    assert!(stats.contains("\"updates_enqueued\": 24"), "all updates admitted in {stats}");
    drop(client);

    let (session, summary) = handle.shutdown().expect("graceful shutdown");
    assert_eq!(summary.serve.epochs, BATCHES as u64);
    assert_eq!(summary.serve.updates_rejected, 0);
    assert_eq!(summary.serve.flushes, BATCHES as u64);
    assert!(summary.serve.queries > 0);
    assert_eq!(
        session.engine().output().as_slice(),
        expected.last().unwrap().as_slice(),
        "final server state equals the reference replay bitwise"
    );

    // The shutdown checkpoint loads back into a bitwise-identical engine.
    let mut f = std::fs::File::open(&ckpt).expect("shutdown wrote a checkpoint");
    let restored =
        inkstream::checkpoint::load(model(), &mut f, UpdateConfig::default(), None).unwrap();
    assert_eq!(restored.output().as_slice(), expected.last().unwrap().as_slice());
    std::fs::remove_dir_all(&dir).ok();
}

/// Round-trip for the observability requests: a `metrics` scrape must parse
/// as valid Prometheus text exposition (with the histogram invariants the
/// parser enforces — cumulative buckets ending in `+Inf`), and a
/// `trace_dump` must validate as Chrome `trace_event` JSON. Both documents
/// must reflect the workload that just ran.
#[test]
fn metrics_and_trace_dump_round_trip_over_the_wire() {
    let handle =
        InkServer::bind("127.0.0.1:0", StreamSession::new(engine()), ServeConfig::default())
            .unwrap();
    let mut client = InkClient::connect(handle.local_addr()).unwrap();
    client.update(vec![EdgeChange::insert(0, 1)]).unwrap().unwrap();
    assert_eq!(client.flush().unwrap(), 1);
    client.embedding(0).unwrap();
    client.top_k(0, 3).unwrap();

    // Prometheus scrape: parser round-trip + workload visibility. One
    // document covers the session, the drift auditor and the serving layer.
    let text = client.metrics().unwrap();
    let families = ink_obs::parse::parse_prometheus(&text).expect("scrape parses as Prometheus");
    let find = |name: &str| {
        families.iter().find(|f| f.name == name).unwrap_or_else(|| panic!("missing {name}"))
    };
    assert_eq!(find("ink_session_ingests_total").samples[0].value, 1.0);
    assert_eq!(find("ink_serve_updates_enqueued_total").samples[0].value, 1.0);
    assert_eq!(find("ink_serve_epochs").samples[0].value, 1.0);
    let latency = find("ink_serve_query_latency_ns");
    assert_eq!(latency.kind, "histogram");
    let count =
        latency.samples.iter().find(|s| s.name == "ink_serve_query_latency_ns_count").unwrap();
    assert_eq!(count.value, 2.0, "embedding + top_k");

    // Chrome trace dump: schema-validates and contains both the serve spans
    // and the synthesized pipeline-phase spans.
    let json = client.trace_dump().unwrap();
    let events = ink_obs::parse::validate_chrome_trace(&json).expect("valid Chrome trace JSON");
    assert!(events > 0, "trace ring captured spans");
    for name in ["\"epoch\"", "\"embedding\"", "\"generate\"", "\"apply\""] {
        assert!(json.contains(name), "trace dump missing {name}");
    }

    handle.shutdown().unwrap();
}

#[test]
fn invalid_updates_are_refused_not_applied() {
    let handle =
        InkServer::bind("127.0.0.1:0", StreamSession::new(engine()), ServeConfig::default())
            .unwrap();
    let mut client = InkClient::connect(handle.local_addr()).unwrap();

    // Out-of-range endpoint and self-loop both come back as protocol errors
    // (the graph would panic on them), leaving the connection usable.
    let err = client.update(vec![EdgeChange::insert(0, N as u32)]).unwrap_err();
    assert!(err.to_string().contains("invalid edge"), "{err}");
    let err = client.update(vec![EdgeChange::insert(3, 3)]).unwrap_err();
    assert!(err.to_string().contains("invalid edge"), "{err}");
    let err = client.embedding(N as u32).unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");

    // A valid update still lands afterwards.
    client.update(vec![EdgeChange::insert(0, 1)]).unwrap().unwrap();
    assert_eq!(client.flush().unwrap(), 1);
    let (session, summary) = handle.shutdown().unwrap();
    assert_eq!(summary.serve.epochs, 1);
    assert!(session.engine().graph().has_edge(0, 1));
}

/// Regression test for the mid-frame desync: a client that stalls for much
/// longer than the server's poll interval *inside* a frame (between the
/// length prefix and the payload, and between payload bytes) must still get
/// a correct response, and the connection must stay usable afterwards.
/// With a per-read socket timeout this dribbled frame would desync the
/// stream — `read_exact` discards the bytes consumed before the timeout.
#[test]
fn slow_mid_frame_writes_do_not_desync_the_connection() {
    let handle = InkServer::bind(
        "127.0.0.1:0",
        StreamSession::new(engine()),
        ServeConfig { poll_interval: Duration::from_millis(5), ..ServeConfig::default() },
    )
    .unwrap();

    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let payload = Request::Embedding(7).encode();
    let mut wire = (payload.len() as u32).to_le_bytes().to_vec();
    wire.extend_from_slice(&payload);
    for byte in wire {
        stream.write_all(&[byte]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(15)); // 3x the poll interval
    }
    let resp = Response::decode(&read_frame(&mut stream).unwrap().unwrap()).unwrap();
    match resp {
        Response::Embedding { epoch: 0, values } => assert_eq!(values.len(), 4),
        other => panic!("dribbled request got {other:?}"),
    }

    // The framing survived: a normally-written request on the same
    // connection still decodes.
    write_frame(&mut stream, &Request::TopK { vertex: 7, k: 3 }.encode()).unwrap();
    let resp = Response::decode(&read_frame(&mut stream).unwrap().unwrap()).unwrap();
    assert!(matches!(resp, Response::TopK { epoch: 0, ref items } if items.len() == 3), "{resp:?}");
    drop(stream);
    handle.shutdown().unwrap();
}

/// Shutdown must complete while clients are connected but idle: handler
/// threads are parked in blocking reads with no timeout, so the server has
/// to wake them by closing their sockets.
#[test]
fn shutdown_unblocks_idle_connections() {
    let handle =
        InkServer::bind("127.0.0.1:0", StreamSession::new(engine()), ServeConfig::default())
            .unwrap();
    let mut idle = InkClient::connect(handle.local_addr()).unwrap();
    let mut active = InkClient::connect(handle.local_addr()).unwrap();
    active.update(vec![EdgeChange::insert(0, 1)]).unwrap().unwrap();
    assert_eq!(active.flush().unwrap(), 1);

    let (session, summary) = handle.shutdown().expect("shutdown with idle connections hangs?");
    assert_eq!(summary.serve.epochs, 1);
    assert!(session.engine().graph().has_edge(0, 1));
    // The idle client's connection was closed by the server.
    assert!(idle.flush().is_err(), "socket should be closed after shutdown");
}

#[test]
fn reject_mode_sheds_load_but_applies_what_it_admits() {
    let handle = InkServer::bind(
        "127.0.0.1:0",
        StreamSession::new(engine()),
        ServeConfig {
            queue_capacity: 1,
            backpressure: Backpressure::Reject { retry_after_ms: 2 },
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = InkClient::connect(handle.local_addr()).unwrap();
    // update_blocking retries through any Rejected responses, so all batches
    // land even against a capacity-1 queue.
    for i in 0..10u32 {
        client.update_blocking(vec![EdgeChange::insert(i, i + 1)]).unwrap();
    }
    client.flush().unwrap();
    let (session, _) = handle.shutdown().unwrap();
    for i in 0..10u32 {
        assert!(session.engine().graph().has_edge(i, i + 1), "admitted update {i} applied");
    }
}

/// Protocol v2 end to end on one connection: the `hello` handshake reports
/// the negotiated version and capacity facts, pipelined `Batch` frames carry
/// the whole update stream without waiting on round trips, in-slot errors
/// do not poison their neighbours, and the final state is bitwise equal to
/// the single-threaded reference replay.
#[test]
fn pipelined_batch_frames_match_reference_bitwise() {
    let batches = update_batches();
    let expected = reference_outputs(&batches);

    let handle = InkServer::bind(
        "127.0.0.1:0",
        StreamSession::new(engine()),
        ServeConfig {
            queue_capacity: 16,
            backpressure: Backpressure::Block,
            shards: 4,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = InkClient::connect(handle.local_addr()).unwrap();

    let hello = client.hello().unwrap();
    assert_eq!(hello.version, ink_serve::PROTOCOL_VERSION);
    assert_eq!(hello.num_vertices, N as u64);
    assert_eq!(hello.feat_dim, 4, "output width of the 2-layer GCN");
    assert_eq!(hello.shards, 4);

    // Queue every update as its own pipelined Batch frame (update + read),
    // then collect: responses must come back in request order, one Batch
    // response per frame with per-slot answers in slot order.
    for batch in &batches {
        let frame =
            Request::Batch(vec![Request::Update(batch.clone()), Request::Embedding(0)]);
        client.queue(&frame).unwrap();
    }
    assert_eq!(client.in_flight(), BATCHES);
    let mut acks = 0;
    for _ in 0..BATCHES {
        match client.recv().unwrap() {
            Response::Batch(slots) => {
                assert_eq!(slots.len(), 2);
                assert!(matches!(slots[0], Response::Ack { .. }), "{:?}", slots[0]);
                // Pipelined updates coalesce, so epochs do not map 1:1 onto
                // raw-batch prefixes mid-stream — the bitwise anchor is the
                // flushed final state below. Here: a well-formed read at a
                // plausible epoch.
                match &slots[1] {
                    Response::Embedding { epoch, values } => {
                        assert!(*epoch as usize <= BATCHES);
                        assert_eq!(values.len(), 4);
                    }
                    other => panic!("read slot got {other:?}"),
                }
                acks += 1;
            }
            other => panic!("expected a Batch response, got {other:?}"),
        }
    }
    assert_eq!(acks, BATCHES);

    // Non-data-plane requests inside a batch answer as in-slot errors and
    // leave their neighbours intact.
    let slots = client
        .batch(&[Request::Embedding(1), Request::Stats, Request::Embedding(2)])
        .unwrap();
    assert!(matches!(slots[0], Response::Embedding { .. }));
    assert!(matches!(slots[1], Response::Error { .. }), "{:?}", slots[1]);
    assert!(matches!(slots[2], Response::Embedding { .. }));

    // After a barrier everything admitted above is visible; the snapshot is
    // bitwise the reference replay of all 24 raw batches.
    let epoch = client.flush().unwrap();
    let want = expected.last().unwrap();
    for v in 0..N as u32 {
        let (e, values) = client.embedding(v).unwrap();
        assert!(e >= epoch);
        assert_eq!(values, want.row(v as usize), "vertex {v} bitwise at the final epoch");
    }

    // The batch instruments saw every frame and slot.
    let families = ink_obs::parse::parse_prometheus(&client.metrics().unwrap()).unwrap();
    let counter = |name: &str| {
        families
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("missing {name}"))
            .samples[0]
            .value
    };
    assert_eq!(counter("ink_serve_batch_frames_total"), BATCHES as f64 + 1.0);
    assert_eq!(counter("ink_serve_batched_requests_total"), 2.0 * BATCHES as f64 + 3.0);
    drop(client);

    let (session, _) = handle.shutdown().unwrap();
    assert_eq!(session.engine().output().as_slice(), want.as_slice());
}

/// Pipelining is a pure overlap optimisation: with `pipelined: false` the
/// writer collapses back to the one-thread loop of record, and both backends
/// must publish exactly the epochs the pipelined writer publishes — which are
/// in turn the single-threaded reference replay, bitwise, with the same
/// one-epoch-per-flushed-update accounting.
#[test]
fn single_writer_mode_matches_reference_bitwise() {
    use ink_partition::{HashPartitioner, PartitionConfig, PartitionedInkStream};

    let batches = update_batches();
    let expected = reference_outputs(&batches);

    let config = || ServeConfig {
        queue_capacity: 8,
        backpressure: Backpressure::Block,
        pipelined: false,
        ..ServeConfig::default()
    };
    let run = |handle_addr: std::net::SocketAddr| {
        let mut client = InkClient::connect(handle_addr).unwrap();
        for (i, batch) in batches.iter().enumerate() {
            client.update(batch.clone()).unwrap().expect("block mode never rejects");
            let epoch = client.flush().unwrap();
            assert_eq!(epoch as usize, i + 1, "one epoch per flushed update");
            let v = (i % N) as u32;
            let (e, values) = client.embedding(v).unwrap();
            assert_eq!(e, epoch);
            assert_eq!(values, expected[e as usize].row(v as usize), "bitwise at epoch {e}");
        }
    };

    let handle =
        InkServer::bind("127.0.0.1:0", StreamSession::new(engine()), config()).unwrap();
    run(handle.local_addr());
    let (session, summary) = handle.shutdown().unwrap();
    assert_eq!(summary.serve.epochs, BATCHES as u64);
    assert_eq!(session.engine().output().as_slice(), expected.last().unwrap().as_slice());

    let feats = sparse_power_law(&mut seeded_rng(FEAT_SEED), N, FEAT_DIM, 0.2, 0.9);
    let parted = PartitionedInkStream::new(
        model,
        graph(),
        feats,
        HashPartitioner,
        PartitionConfig { parts: 3, ..Default::default() },
    )
    .unwrap();
    let handle = InkServer::bind_partitioned("127.0.0.1:0", parted, config()).unwrap();
    run(handle.local_addr());
    let (parted, summary) = handle.shutdown().unwrap();
    assert_eq!(summary.serve.epochs, BATCHES as u64);
    assert_eq!(parted.output().as_slice(), expected.last().unwrap().as_slice());
}

/// The partition-parallel backend behind the same wire protocol: a server
/// bound with [`InkServer::bind_partitioned`] fed the identical update
/// stream must publish epochs bitwise equal to the single-threaded
/// reference (max aggregation makes incremental == full recompute exactly).
#[test]
fn partitioned_backend_matches_single_threaded_reference_bitwise() {
    use ink_partition::{HashPartitioner, PartitionConfig, PartitionedInkStream};

    let batches = update_batches();
    let expected = reference_outputs(&batches);

    let feats = sparse_power_law(&mut seeded_rng(FEAT_SEED), N, FEAT_DIM, 0.2, 0.9);
    let parted = PartitionedInkStream::new(
        model,
        graph(),
        feats,
        HashPartitioner,
        PartitionConfig { parts: 3, ..Default::default() },
    )
    .expect("partitioned bootstrap");
    let handle = InkServer::bind_partitioned(
        "127.0.0.1:0",
        parted,
        ServeConfig { queue_capacity: 8, backpressure: Backpressure::Block, ..ServeConfig::default() },
    )
    .unwrap();

    let mut client = InkClient::connect(handle.local_addr()).unwrap();
    for (i, batch) in batches.iter().enumerate() {
        client.update(batch.clone()).unwrap().expect("block mode never rejects");
        let epoch = client.flush().unwrap();
        assert_eq!(epoch as usize, i + 1, "one epoch per flushed update");
        let v = (i % N) as u32;
        let (e, values) = client.embedding(v).unwrap();
        assert_eq!(e, epoch);
        assert_eq!(values, expected[e as usize].row(v as usize), "bitwise at epoch {e}");
    }
    drop(client);

    let (parted, summary) = handle.shutdown().unwrap();
    assert_eq!(summary.serve.epochs, BATCHES as u64);
    assert_eq!(
        parted.output().as_slice(),
        expected.last().unwrap().as_slice(),
        "partitioned final state equals the reference replay bitwise"
    );
}
