//! Property test for the pipelined writer's ordering contract: under random
//! interleavings of updates, flush barriers and queries, a client must
//! observe **read-your-writes at every flush** — the epoch a flush returns
//! already reflects every update the client admitted before it, bitwise —
//! for both backends (single session and partition-parallel) and in both
//! writer modes (pipelined two-stage and the single-writer loop of record).
//!
//! Max aggregation keeps incremental outputs bitwise equal to full
//! recomputation, so the reference replay is exact, not approximate.

use ink_gnn::{Aggregator, Model};
use ink_graph::generators::erdos_renyi;
use ink_graph::{DeltaBatch, EdgeChange};
use ink_partition::{HashPartitioner, PartitionConfig, PartitionedInkStream};
use ink_serve::{Backpressure, InkClient, InkServer, ServeConfig};
use ink_tensor::init::{seeded_rng, uniform};
use inkstream::{InkStream, StreamSession, UpdateConfig};
use proptest::prelude::*;

const N: usize = 24;
const FEAT_DIM: usize = 5;

fn model(seed: u64) -> Model {
    Model::gcn(&mut seeded_rng(seed ^ 0x5e), &[FEAT_DIM, 6, 3], Aggregator::Max)
}

fn reference(seed: u64) -> InkStream {
    let mut rng = seeded_rng(seed);
    let g = erdos_renyi(&mut rng, N, 55);
    let x = uniform(&mut rng, N, FEAT_DIM, -1.0, 1.0);
    InkStream::new(model(seed), g, x, UpdateConfig::default()).unwrap()
}

/// One interleaving step: a run of update batches admitted back to back
/// (they may coalesce into fewer epochs), then a flush barrier, then a
/// query racing nothing — which therefore must see all of them.
type Step = (Vec<Vec<(u32, u32, bool)>>, u32);

fn to_changes(spec: &[(u32, u32, bool)]) -> Vec<EdgeChange> {
    spec.iter()
        .map(|&(s, d, insert)| {
            let d = if d == s { (d + 1) % N as u32 } else { d };
            if insert {
                EdgeChange::insert(s, d)
            } else {
                EdgeChange::remove(s, d)
            }
        })
        .collect()
}

fn check_interleaving(seed: u64, steps: &[Step], partitioned: bool, pipelined: bool) {
    let config = ServeConfig {
        queue_capacity: 8,
        backpressure: Backpressure::Block,
        pipelined,
        ..ServeConfig::default()
    };
    let mut refeng = reference(seed);
    let (addr, handle_single, handle_part);
    if partitioned {
        let parted = PartitionedInkStream::new(
            move || model(seed),
            refeng.graph().clone(),
            refeng.features().clone(),
            HashPartitioner,
            PartitionConfig { parts: 3, ..Default::default() },
        )
        .unwrap();
        let h = InkServer::bind_partitioned("127.0.0.1:0", parted, config).unwrap();
        addr = h.local_addr();
        handle_part = Some(h);
        handle_single = None;
    } else {
        let session = StreamSession::new(reference(seed));
        let h = InkServer::bind("127.0.0.1:0", session, config).unwrap();
        addr = h.local_addr();
        handle_single = Some(h);
        handle_part = None;
    }

    let mut client = InkClient::connect(addr).unwrap();
    let mut last_epoch = 0u64;
    for (runs, query_v) in steps {
        for spec in runs {
            let batch = to_changes(spec);
            client.update(batch.clone()).unwrap().expect("block mode never rejects");
            refeng.apply_delta(&DeltaBatch::new(batch));
        }
        let epoch = client.flush().unwrap();
        assert!(epoch >= last_epoch, "epochs are monotonic across flushes");
        last_epoch = epoch;
        // Read-your-writes: the post-flush snapshot reflects every update
        // admitted above, bitwise (no other writer is running).
        let (e, values) = client.embedding(*query_v).unwrap();
        assert!(e >= epoch, "a read after the barrier never sees an older epoch");
        assert_eq!(
            values,
            refeng.output().row(*query_v as usize),
            "read-your-writes bitwise, partitioned={partitioned} pipelined={pipelined}"
        );
    }
    drop(client);

    if let Some(h) = handle_single {
        let (session, _) = h.shutdown().unwrap();
        assert_eq!(session.engine().output().as_slice(), refeng.output().as_slice());
    }
    if let Some(h) = handle_part {
        let (parted, _) = h.shutdown().unwrap();
        assert_eq!(parted.output().as_slice(), refeng.output().as_slice());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    #[test]
    fn flush_barriers_observe_read_your_writes(
        seed in 0u64..400,
        steps in proptest::collection::vec(
            (
                proptest::collection::vec(
                    proptest::collection::vec(
                        (0u32..N as u32, 0u32..N as u32, proptest::bool::ANY),
                        1..5,
                    ),
                    1..4,
                ),
                0u32..N as u32,
            ),
            1..6,
        ),
    ) {
        for partitioned in [false, true] {
            for pipelined in [true, false] {
                check_interleaving(seed, &steps, partitioned, pipelined);
            }
        }
    }
}
