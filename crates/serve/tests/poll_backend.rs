//! The server on the portable poll(2) readiness backend: setting
//! `INK_MIO_FORCE_POLL=1` before the first `Poll::new` swaps epoll out for
//! the fallback selector, and the full protocol (handshake, batched
//! updates, flush barrier, reads) must behave identically. Lives in its own
//! test binary so the process-wide variable cannot race other tests.

use ink_gnn::{Aggregator, Model};
use ink_graph::generators::erdos_renyi;
use ink_graph::EdgeChange;
use ink_serve::{InkClient, InkServer, Request, Response, ServeConfig};
use ink_tensor::init::{seeded_rng, sparse_power_law};
use inkstream::{InkStream, StreamSession, UpdateConfig};

#[test]
fn server_works_on_the_forced_poll_backend() {
    std::env::set_var("INK_MIO_FORCE_POLL", "1");

    let n = 40;
    let mut rng = seeded_rng(5);
    let graph = erdos_renyi(&mut rng, n, 100);
    let feats = sparse_power_law(&mut rng, n, 6, 0.2, 0.9);
    let model = Model::gcn(&mut seeded_rng(5), &[6, 8, 4], Aggregator::Max);
    let engine = InkStream::new(model, graph, feats, UpdateConfig::default()).unwrap();

    let handle =
        InkServer::bind("127.0.0.1:0", StreamSession::new(engine), ServeConfig::default())
            .unwrap();
    let mut client = InkClient::connect(handle.local_addr()).unwrap();

    let hello = client.hello().unwrap();
    assert_eq!(hello.version, ink_serve::PROTOCOL_VERSION);

    let slots = client
        .batch(&[
            Request::Update(vec![EdgeChange::insert(0, 1), EdgeChange::insert(1, 2)]),
            Request::Embedding(0),
        ])
        .unwrap();
    assert!(matches!(slots[0], Response::Ack { .. }), "{:?}", slots[0]);
    assert!(matches!(slots[1], Response::Embedding { .. }), "{:?}", slots[1]);

    let epoch = client.flush().unwrap();
    assert!(epoch >= 1);
    let (e, values) = client.embedding(1).unwrap();
    assert!(e >= epoch);
    assert_eq!(values.len(), 4);

    drop(client);
    let (session, summary) = handle.shutdown().unwrap();
    assert!(summary.serve.epochs >= 1);
    assert!(session.engine().graph().has_edge(0, 1));
}
