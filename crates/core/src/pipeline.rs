//! Sharded, arena-backed scratch machinery for the engine's event pipeline.
//!
//! One update round runs each layer through five phases (see DESIGN.md,
//! "Update pipeline"): *generate* → *group* → *apply* → *write* →
//! *next-messages*. This module owns the reusable storage those phases work
//! in, sized once during warm-up and then recycled round after round so the
//! steady-state hot path performs no heap allocation:
//!
//! * [`WorkerScratch`] — one per generation worker: a private
//!   [`PayloadArena`] plus per-shard event buckets. Workers process
//!   *contiguous, ordered* chunks of the work list, and buckets are drained
//!   phase-major then worker-major, so the per-target event order is exactly
//!   the sequential emission order no matter how many workers run.
//! * [`ShardScratch`] — one per target shard (`shard_of(target)`): the
//!   reduced [`GroupEntry`] per target with payloads as slots in a flat
//!   `f32` buffer (no per-group `Vec` allocations), plus the apply phase's
//!   outputs (`alpha_buf`, [`ApplyOutcome`]).
//! * [`OldMsgs`] — the per-layer "old value of every changed message" map,
//!   values stored in per-layer arenas instead of one `Vec<f32>` per entry.
//! * [`ScratchPool`] — the whole bundle, owned by
//!   [`crate::InkStream`] across rounds.
//!
//! Because every target lands in exactly one shard and reduction follows the
//! canonical bucket order, the grouped result — and therefore the whole
//! update — is bitwise identical for *every* worker/shard count, including
//! the sequential 1×1 configuration. `tests/properties.rs` asserts this per
//! aggregator.

use crate::event::{Event, EventOp, PayloadArena, PayloadId};
use crate::hooks::UserEvent;
use crate::monotonic::Condition;
use ink_graph::{FxHashMap, FxHashSet, VertexId};
use ink_gnn::Aggregator;

/// Sentinel for "no payload slot assigned yet" in a [`GroupEntry`].
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// The shard a target's events are reduced in. Multiply-shift hash so that
/// consecutive vertex ids spread across shards instead of striping.
#[inline]
pub(crate) fn shard_of(target: VertexId, num_shards: usize) -> usize {
    (((target as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % num_shards
}

/// The contiguous chunk of `n` work items assigned to worker `w` of `total`.
#[inline]
pub(crate) fn worker_chunk(n: usize, w: usize, total: usize) -> std::ops::Range<usize> {
    let per = n.div_ceil(total.max(1));
    let start = (w * per).min(n);
    start..((w + 1) * per).min(n)
}

/// The payload at `slot` of a flat shard buffer, or `None` for [`NO_SLOT`].
#[inline]
pub(crate) fn slot_in(buf: &[f32], slot: u32, dim: usize) -> Option<&[f32]> {
    if slot == NO_SLOT {
        None
    } else {
        Some(&buf[slot as usize * dim..(slot as usize + 1) * dim])
    }
}

/// Per-target outcome classification of the apply phase.
pub(crate) enum CondKind {
    /// Monotonic target, classified by the evolvability check.
    Mono(Condition),
    /// Accumulative target (always incrementally updated).
    Acc,
    /// Recomputed because incremental updates are disabled (ablation).
    Forced,
}

/// What the apply phase decided for one group entry. The new α lives in the
/// owning shard's `alpha_buf` at the entry's index.
pub(crate) struct ApplyOutcome {
    pub cond: CondKind,
    pub reads: u64,
    pub changed: bool,
}

/// The reduced events heading to one target: payload slots into the owning
/// shard's flat buffer. Monotonic groups use `del`/`add`; accumulative
/// groups keep their running sum in `add`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct GroupEntry {
    pub target: VertexId,
    pub del: u32,
    pub add: u32,
    pub degree_delta: i32,
}

/// The apply phase's split-borrow view of one shard: groups are read while α
/// values, outcomes and the batched-recompute machinery are written.
pub(crate) struct ApplyParts<'a> {
    pub entries: &'a [GroupEntry],
    pub buf: &'a [f32],
    pub alpha_buf: &'a mut Vec<f32>,
    pub outcomes: &'a mut Vec<ApplyOutcome>,
    pub recompute: &'a mut Vec<(u32, u32)>,
    pub apply_comp: &'a mut Vec<f32>,
    pub gemm: &'a mut ink_tensor::GemmScratch,
    pub batched_apply_rows: &'a mut usize,
}

/// One target shard of the group-reduce phase, plus the apply phase's
/// per-entry outputs. All storage is recycled between rounds.
#[derive(Default)]
pub(crate) struct ShardScratch {
    index: FxHashMap<VertexId, u32>,
    pub entries: Vec<GroupEntry>,
    buf: Vec<f32>,
    /// Neumaier compensation channel parallel to `buf`, used only when the
    /// engine runs with [`crate::UpdateConfig::compensated`] on an
    /// accumulative layer. [`ShardScratch::fold_compensation`] folds it into
    /// the sums once all buckets are reduced.
    comp: Vec<f32>,
    pub outcomes: Vec<ApplyOutcome>,
    pub alpha_buf: Vec<f32>,
    pub payload_reads: usize,
    /// Entries deferred to full recomputation by the apply phase's first
    /// pass: `(sort key, entry index)` with the key from
    /// [`crate::grouping::recompute_sort_key`]. Sorting the pairs groups the
    /// panel batches by event kind × degree class; the index tiebreak keeps
    /// the order fully deterministic.
    pub recompute: Vec<(u32, u32)>,
    /// Reusable Neumaier channel for the batched panel folds
    /// ([`Aggregator::aggregate_rows_into`]).
    pub apply_comp: Vec<f32>,
    /// Panel buffer pool for the gathered neighbor rows. Per-shard so the
    /// apply phase stays embarrassingly parallel.
    pub gemm: ink_tensor::GemmScratch,
    /// Neighbor rows this shard folded through the batched path this layer.
    pub batched_apply_rows: usize,
}

impl ShardScratch {
    /// Clears the shard for a new layer, keeping every allocation.
    pub fn begin(&mut self) {
        self.index.clear();
        self.entries.clear();
        self.buf.clear();
        self.comp.clear();
        self.outcomes.clear();
        self.alpha_buf.clear();
        self.payload_reads = 0;
        self.recompute.clear();
        self.apply_comp.clear();
        self.batched_apply_rows = 0;
    }

    /// The payload stored in `slot`, or `None` for [`NO_SLOT`].
    #[cfg(test)]
    pub fn slot(&self, slot: u32, dim: usize) -> Option<&[f32]> {
        slot_in(&self.buf, slot, dim)
    }

    /// Splits the shard into the apply phase's read/write halves so groups
    /// can be read while α values, outcomes and the recompute batching state
    /// are written.
    pub fn apply_parts(&mut self) -> ApplyParts<'_> {
        ApplyParts {
            entries: &self.entries,
            buf: &self.buf,
            alpha_buf: &mut self.alpha_buf,
            outcomes: &mut self.outcomes,
            recompute: &mut self.recompute,
            apply_comp: &mut self.apply_comp,
            gemm: &mut self.gemm,
            batched_apply_rows: &mut self.batched_apply_rows,
        }
    }

    /// Reduces one bucket of events (all targeting this shard) into the
    /// group entries, in bucket order. With `compensated`, accumulative
    /// slots carry a Neumaier error channel in `comp`; call
    /// [`ShardScratch::fold_compensation`] after the last bucket.
    pub fn reduce_bucket(
        &mut self,
        events: &[Event],
        arena: &PayloadArena,
        agg: Aggregator,
        dim: usize,
        compensated: bool,
    ) {
        let mono = agg.is_monotonic();
        let compensated = compensated && !mono;
        for ev in events {
            let payload = arena.get(ev.payload);
            self.payload_reads += dim;
            let idx = match self.index.get(&ev.target) {
                Some(&i) => i as usize,
                None => {
                    let i = self.entries.len() as u32;
                    self.index.insert(ev.target, i);
                    self.entries.push(GroupEntry {
                        target: ev.target,
                        del: NO_SLOT,
                        add: NO_SLOT,
                        degree_delta: 0,
                    });
                    i as usize
                }
            };
            let entry = &mut self.entries[idx];
            entry.degree_delta += ev.degree_delta as i32;
            let slot = if mono {
                match ev.op {
                    EventOp::Del => &mut entry.del,
                    EventOp::Add => &mut entry.add,
                    EventOp::Update => {
                        panic!("Update events are only valid with accumulative aggregation")
                    }
                }
            } else {
                match ev.op {
                    EventOp::Update => &mut entry.add,
                    EventOp::Add | EventOp::Del => {
                        panic!("Add/Del events are only valid with monotonic aggregation")
                    }
                }
            };
            if *slot == NO_SLOT {
                *slot = (self.buf.len() / dim.max(1)) as u32;
                self.buf.extend_from_slice(payload);
                if compensated {
                    self.comp.resize(self.buf.len(), 0.0);
                }
            } else {
                let range = *slot as usize * dim..(*slot as usize + 1) * dim;
                let acc = &mut self.buf[range.clone()];
                if mono {
                    agg.combine_into(acc, payload);
                } else if compensated {
                    ink_tensor::ops::neumaier_add_assign(acc, &mut self.comp[range], payload);
                } else {
                    ink_tensor::ops::add_assign(acc, payload);
                }
            }
        }
    }

    /// Folds the Neumaier error channel into the accumulated sums. Call once
    /// after every bucket of a compensated accumulative layer has been
    /// reduced; a no-op otherwise (`comp` stays empty).
    pub fn fold_compensation(&mut self) {
        for (s, c) in self.buf.iter_mut().zip(&self.comp) {
            *s += c;
        }
    }

    fn bytes(&self) -> usize {
        self.index.capacity() * std::mem::size_of::<(VertexId, u32)>()
            + self.entries.capacity() * std::mem::size_of::<GroupEntry>()
            + (self.buf.capacity() + self.comp.capacity() + self.alpha_buf.capacity())
                * std::mem::size_of::<f32>()
            + self.outcomes.capacity() * std::mem::size_of::<ApplyOutcome>()
            + self.recompute.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.apply_comp.capacity() * std::mem::size_of::<f32>()
            + self.gemm.bytes()
    }
}

/// One generation worker's private output: a payload arena and per-shard
/// event buckets, split by emission phase (ΔG seeding vs effect
/// propagation) so buckets can be concatenated back into canonical order.
#[derive(Default)]
pub(crate) struct WorkerScratch {
    pub arena: PayloadArena,
    /// Degree-rescaled messages staged by this worker: `(vertex, new msg)`.
    pub rescaled: Vec<(VertexId, PayloadId)>,
    /// ΔG-seeding buckets, one per shard.
    pub dg: Vec<Vec<Event>>,
    /// Effect-propagation buckets, one per shard.
    pub fx: Vec<Vec<Event>>,
}

impl WorkerScratch {
    /// Clears the worker for a new layer of `dim`-channel payloads and
    /// `shards` buckets, keeping allocations.
    pub fn begin(&mut self, shards: usize, dim: usize) {
        self.arena.reset(dim);
        self.rescaled.clear();
        for b in [&mut self.dg, &mut self.fx] {
            // Grow-only, like the pool itself: shrinking on an adaptive arm
            // flip would drop bucket allocations just to re-grow them on the
            // flip back. Buckets beyond this round's shard count are cleared
            // too so `events_emitted` never counts a previous round's events.
            if b.len() < shards {
                b.resize_with(shards, Vec::new);
            }
            for bucket in b.iter_mut() {
                bucket.clear();
            }
        }
    }

    /// Events emitted by this worker this layer.
    pub fn events_emitted(&self) -> usize {
        self.dg.iter().chain(&self.fx).map(Vec::len).sum()
    }

    fn bytes(&self) -> usize {
        self.arena.capacity() * std::mem::size_of::<f32>()
            + self.rescaled.capacity() * std::mem::size_of::<(VertexId, PayloadId)>()
            + self
                .dg
                .iter()
                .chain(&self.fx)
                .map(|b| b.capacity() * std::mem::size_of::<Event>())
                .sum::<usize>()
    }
}

/// Old values of the messages that changed this round, per layer. Values are
/// arena slots instead of owned `Vec<f32>`s so steady-state rounds reuse one
/// allocation per layer.
#[derive(Default)]
pub(crate) struct OldMsgs {
    idx: Vec<FxHashMap<VertexId, PayloadId>>,
    vals: Vec<PayloadArena>,
}

impl OldMsgs {
    /// Prepares layer `l` for a new round with `dim`-channel messages.
    pub fn reset_layer(&mut self, l: usize, dim: usize) {
        if self.idx.len() <= l {
            self.idx.resize_with(l + 1, FxHashMap::default);
            self.vals.resize_with(l + 1, PayloadArena::default);
        }
        self.idx[l].clear();
        self.vals[l].reset(dim);
    }

    /// Records the old value of `v`'s layer-`l` message. Each vertex may be
    /// recorded at most once per round.
    pub fn insert(&mut self, l: usize, v: VertexId, old: &[f32]) {
        let id = self.vals[l].push(old);
        let prev = self.idx[l].insert(v, id);
        debug_assert!(prev.is_none(), "message {v} recorded twice in layer {l}");
    }

    /// The recorded old message of `v` at layer `l`, if it changed.
    #[inline]
    pub fn get(&self, l: usize, v: VertexId) -> Option<&[f32]> {
        self.idx[l].get(&v).map(|&id| self.vals[l].get(id))
    }

    /// True when `v`'s layer-`l` message already changed this round.
    #[inline]
    pub fn contains(&self, l: usize, v: VertexId) -> bool {
        self.idx[l].contains_key(&v)
    }

    /// Writes the changed vertices of layer `l` into `out`, ascending — the
    /// canonical effect-propagation order.
    pub fn keys_sorted_into(&self, l: usize, out: &mut Vec<VertexId>) {
        out.clear();
        out.extend(self.idx[l].keys().copied());
        out.sort_unstable();
    }

    fn bytes(&self) -> usize {
        self.idx
            .iter()
            .map(|m| m.capacity() * std::mem::size_of::<(VertexId, PayloadId)>())
            .sum::<usize>()
            + self.vals.iter().map(|a| a.capacity() * std::mem::size_of::<f32>()).sum::<usize>()
    }
}

/// Every reusable buffer of the update pipeline, owned by the engine across
/// rounds. `bytes()` exposes the reserved footprint; the scratch-reuse test
/// asserts it stops growing once the pool is warm.
#[derive(Default)]
pub(crate) struct ScratchPool {
    pub workers: Vec<WorkerScratch>,
    pub shards: Vec<ShardScratch>,
    pub old: OldMsgs,
    /// Sorted changed-message vertices of the current layer.
    pub changed_order: Vec<VertexId>,
    /// Net in-degree change per vertex.
    pub degree_net: FxHashMap<VertexId, i64>,
    /// `degree_net` as sorted `(vertex, net)` pairs.
    pub degree_order: Vec<(VertexId, i64)>,
    /// Degree-rescale candidates of the current layer (subset of
    /// `degree_order`).
    pub rescale_list: Vec<(VertexId, i64)>,
    /// Directed edges covered by ΔG insert events (duplicate-event rule).
    pub covered: FxHashSet<(VertexId, VertexId)>,
    /// User events pending per layer.
    pub pending_user: Vec<Vec<UserEvent>>,
    /// Vertices whose α changed in any layer (the *real affected* set).
    pub affected: FxHashSet<VertexId>,
    /// Targets entering the next-messages phase.
    pub next_targets: Vec<VertexId>,
    /// Flat row-major output of the next-messages phase.
    pub next_buf: Vec<f32>,
    /// Gathered (degree-scaled) α rows of the batched transform.
    pub gather_alpha: Vec<f32>,
    /// Gathered self-message rows of the batched transform.
    pub gather_self: Vec<f32>,
    /// Post-update hidden rows of the batched transform (input of the
    /// next-layer batched message).
    pub hidden_buf: Vec<f32>,
    /// GEMM packing / ping-pong buffer pool shared by the batched transform
    /// and the in-place bootstrap.
    pub gemm: ink_tensor::GemmScratch,
}

impl ScratchPool {
    /// Prepares the pool for a round of `layers` layers with `workers`
    /// generation workers and `shards` target shards.
    ///
    /// Worker and shard vectors only ever *grow*: the adaptive dispatcher
    /// alternates between the sequential 1×1 plan and the configured fan-out,
    /// and shrinking here would drop the idle scratches' warm allocations on
    /// every flip. Excess workers get empty chunks from
    /// [`worker_chunk`] and excess shards receive no targets from
    /// [`shard_of`], so the phases can keep iterating the whole vectors.
    pub fn begin_round(&mut self, layers: usize, workers: usize, shards: usize) {
        if self.workers.len() < workers {
            self.workers.resize_with(workers, WorkerScratch::default);
        }
        if self.shards.len() < shards {
            self.shards.resize_with(shards, ShardScratch::default);
        }
        if self.pending_user.len() < layers {
            self.pending_user.resize_with(layers, Vec::new);
        }
        for p in &mut self.pending_user {
            p.clear();
        }
        self.degree_net.clear();
        self.degree_order.clear();
        self.covered.clear();
        self.affected.clear();
    }

    /// Reserved heap footprint of the pool, in bytes. Capacities only —
    /// the value is stable across steady-state rounds.
    pub fn bytes(&self) -> usize {
        self.workers.iter().map(WorkerScratch::bytes).sum::<usize>()
            + self.shards.iter().map(ShardScratch::bytes).sum::<usize>()
            + self.old.bytes()
            + self.changed_order.capacity() * std::mem::size_of::<VertexId>()
            + self.degree_net.capacity() * std::mem::size_of::<(VertexId, i64)>()
            + (self.degree_order.capacity() + self.rescale_list.capacity())
                * std::mem::size_of::<(VertexId, i64)>()
            + self.covered.capacity() * std::mem::size_of::<(VertexId, VertexId)>()
            + self.affected.capacity() * std::mem::size_of::<VertexId>()
            + self.next_targets.capacity() * std::mem::size_of::<VertexId>()
            + (self.next_buf.capacity()
                + self.gather_alpha.capacity()
                + self.gather_self.capacity()
                + self.hidden_buf.capacity())
                * std::mem::size_of::<f32>()
            + self.gemm.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::{group_events, Group};

    fn ev(op: EventOp, target: VertexId, payload: PayloadId, dd: i8) -> Event {
        Event { op, target, payload, degree_delta: dd }
    }

    /// Random-ish event stream reduced by the sharded path must equal the
    /// reference `group_events` map, for any worker/shard split.
    #[test]
    fn sharded_reduce_matches_reference_grouping() {
        for (agg, num_shards, num_workers) in [
            (Aggregator::Max, 1usize, 1usize),
            (Aggregator::Max, 4, 3),
            (Aggregator::Min, 8, 2),
            (Aggregator::Sum, 4, 4),
            (Aggregator::Mean, 3, 2),
        ] {
            let dim = 3;
            let mono = agg.is_monotonic();
            // Deterministic pseudo-random event stream over 10 targets.
            let mut arena = PayloadArena::new(dim);
            let mut events = Vec::new();
            let mut x = 12345u64;
            for i in 0..200u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let target = (x >> 33) % 10;
                let val = ((x >> 17) % 1000) as f32 * 0.01 - 5.0;
                let payload = arena.push(&[val, -val, val * 0.5]);
                let (op, dd) = if mono {
                    if i % 3 == 0 {
                        (EventOp::Del, -1)
                    } else {
                        (EventOp::Add, if i % 2 == 0 { 1 } else { 0 })
                    }
                } else {
                    (EventOp::Update, [(-1i8), 0, 1][(i % 3) as usize])
                };
                events.push(ev(op, target as VertexId, payload, dd));
            }

            let reference = group_events(&events, &arena, agg);

            // Sharded path: workers get contiguous chunks, buckets are
            // drained worker-major per shard.
            let mut workers: Vec<WorkerScratch> = (0..num_workers)
                .map(|_| WorkerScratch::default())
                .collect();
            for (w, ws) in workers.iter_mut().enumerate() {
                ws.begin(num_shards, dim);
                for e in &events[worker_chunk(events.len(), w, num_workers)] {
                    let payload = ws.arena.push(arena.get(e.payload));
                    ws.dg[shard_of(e.target, num_shards)].push(Event { payload, ..*e });
                }
            }
            let mut shards: Vec<ShardScratch> =
                (0..num_shards).map(|_| ShardScratch::default()).collect();
            let mut total_entries = 0;
            for (s, shard) in shards.iter_mut().enumerate() {
                shard.begin();
                for ws in &workers {
                    shard.reduce_bucket(&ws.dg[s], &ws.arena, agg, dim, false);
                }
                total_entries += shard.entries.len();
                for e in &shard.entries {
                    let expect = &reference.groups[&e.target];
                    match expect {
                        Group::Mono { del, add, degree_delta } => {
                            assert_eq!(shard.slot(e.del, dim), del.as_deref());
                            assert_eq!(shard.slot(e.add, dim), add.as_deref());
                            assert_eq!(e.degree_delta, *degree_delta);
                        }
                        Group::Acc { sum, degree_delta } => {
                            assert_eq!(shard.slot(e.add, dim), Some(sum.as_slice()));
                            assert_eq!(shard.slot(e.del, dim), None);
                            assert_eq!(e.degree_delta, *degree_delta);
                        }
                    }
                }
            }
            assert_eq!(
                total_entries,
                reference.groups.len(),
                "{agg:?} with {num_shards} shards / {num_workers} workers"
            );
            let reads: usize = shards.iter().map(|s| s.payload_reads).sum();
            assert_eq!(reads, reference.payload_values_read);
        }
    }

    /// A cancellation stream (big, tiny, −big) through one accumulative slot:
    /// the plain reduce loses the tiny value to rounding, the compensated
    /// reduce recovers it from the error channel.
    #[test]
    fn compensated_reduce_keeps_cancelled_tail() {
        let dim = 1;
        let tiny = 2.0_f32.powi(-40);
        let mut arena = PayloadArena::new(dim);
        let events: Vec<Event> = [3.0e7f32, tiny, -3.0e7]
            .iter()
            .map(|&v| ev(EventOp::Update, 0, arena.push(&[v]), 0))
            .collect();
        for (compensated, want) in [(false, 0.0f32), (true, tiny)] {
            let mut shard = ShardScratch::default();
            shard.begin();
            shard.reduce_bucket(&events, &arena, Aggregator::Sum, dim, compensated);
            shard.fold_compensation();
            assert_eq!(shard.slot(shard.entries[0].add, dim), Some(&[want][..]));
        }
    }

    #[test]
    fn shard_of_is_total_and_stable() {
        for v in 0..1000u32 {
            let s = shard_of(v, 8);
            assert!(s < 8);
            assert_eq!(s, shard_of(v, 8));
        }
        // All targets land in shard 0 when there is only one shard.
        assert!((0..100u32).all(|v| shard_of(v, 1) == 0));
    }

    #[test]
    fn worker_chunks_tile_the_range() {
        for n in [0usize, 1, 7, 100, 101] {
            for total in [1usize, 2, 3, 8] {
                let mut covered = Vec::new();
                for w in 0..total {
                    covered.extend(worker_chunk(n, w, total));
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} total={total}");
            }
        }
    }

    #[test]
    fn old_msgs_roundtrip_and_sorted_keys() {
        let mut old = OldMsgs::default();
        old.reset_layer(0, 2);
        old.insert(0, 9, &[1.0, 2.0]);
        old.insert(0, 3, &[3.0, 4.0]);
        old.insert(0, 7, &[5.0, 6.0]);
        assert_eq!(old.get(0, 3), Some(&[3.0, 4.0][..]));
        assert_eq!(old.get(0, 4), None);
        assert!(old.contains(0, 9));
        let mut keys = Vec::new();
        old.keys_sorted_into(0, &mut keys);
        assert_eq!(keys, vec![3, 7, 9]);
        old.reset_layer(0, 2);
        assert!(!old.contains(0, 9), "reset clears the layer");
    }

    #[test]
    fn scratch_pool_bytes_stable_after_reuse() {
        let mut pool = ScratchPool::default();
        let fill = |pool: &mut ScratchPool| {
            pool.begin_round(2, 2, 4);
            pool.old.reset_layer(0, 4);
            for v in 0..50u32 {
                pool.old.insert(0, v, &[0.5; 4]);
                pool.degree_net.insert(v, 1);
                pool.covered.insert((v, v + 1));
                pool.next_targets.push(v);
            }
            pool.old.keys_sorted_into(0, &mut pool.changed_order);
            for ws in &mut pool.workers {
                ws.begin(4, 4);
                let p = ws.arena.push(&[1.0; 4]);
                for v in 0..50u32 {
                    ws.dg[shard_of(v, 4)].push(Event {
                        op: EventOp::Add,
                        target: v,
                        payload: p,
                        degree_delta: 0,
                    });
                }
            }
            pool.next_targets.clear();
        };
        fill(&mut pool);
        let warm = pool.bytes();
        assert!(warm > 0);
        for _ in 0..3 {
            fill(&mut pool);
        }
        assert_eq!(pool.bytes(), warm, "steady-state reuse must not grow the pool");
    }
}
