#![warn(missing_docs)]
//! # inkstream
//!
//! A Rust reproduction of **InkStream: Instantaneous GNN Inference on
//! Dynamic Graphs via Incremental Update** (Wu, Li, Mitra — IPDPS 2025).
//!
//! InkStream takes the result of an initial full-graph inference and evolves
//! it through batches of edge/vertex changes, following the paper's design
//! principle: *"Propagate only when necessary. Fetch only the necessary."*
//!
//! * **Inter-layer** ([`engine`]): an event-based computing model prunes the
//!   effect-propagation tree at *resilient* nodes — nodes that could have
//!   been affected but turn out uninfluenced (monotonic aggregation only).
//! * **Intra-layer** ([`monotonic`], [`accumulative`]): node embeddings
//!   evolve incrementally from the previous timestamp's cached messages and
//!   aggregated neighborhoods instead of refetching whole neighborhoods.
//!
//! ## Quick start
//!
//! ```
//! use ink_graph::{DeltaBatch, DynGraph, EdgeChange};
//! use ink_gnn::{Aggregator, Model};
//! use ink_tensor::{init, Matrix};
//! use inkstream::{InkStream, UpdateConfig};
//!
//! let mut rng = init::seeded_rng(7);
//! let graph = DynGraph::undirected_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
//! let features = init::uniform(&mut rng, 5, 8, -1.0, 1.0);
//! let model = Model::gcn(&mut rng, &[8, 16, 4], Aggregator::Max);
//!
//! // Bootstrap with one full inference, then update incrementally.
//! let mut engine = InkStream::new(model, graph, features, UpdateConfig::default()).unwrap();
//! let report = engine.apply_delta(&DeltaBatch::new(vec![EdgeChange::insert(0, 3)]));
//! assert_eq!(engine.output(), &engine.recompute_reference()); // bitwise, for max
//! assert!(report.elapsed.as_secs() < 1);
//! ```

pub mod accumulative;
pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod error;
pub mod event;
pub mod grouping;
pub mod hooks;
pub mod json;
pub mod monotonic;
mod pipeline;
pub mod session;
pub mod snapshot;
pub mod stats;

pub use config::UpdateConfig;
pub use engine::{InkStream, ResyncReport};
pub use error::InkError;
pub use event::{Event, EventOp, PayloadArena};
pub use grouping::{group_events, Group};
pub use hooks::{LinearSelfTerm, UserEvent, UserHooks};
pub use monotonic::Condition;
pub use json::Json;
pub use session::{
    AuditKind, DriftAction, DriftError, DriftPolicy, DriftStats, IngestReport, ServeStats,
    SessionConfig, SessionSummary, StreamSession, DEFAULT_TRACE_CAPACITY,
};
pub use ink_gnn::cost::DispatchArm;
pub use snapshot::{EmbeddingSnapshot, SnapshotPublisher, SnapshotReader};
pub use stats::{ConditionCounts, LayerStats, PhaseTimes, UpdateReport};
