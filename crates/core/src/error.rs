//! Engine error type.

/// Reasons the incremental engine can reject a configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InkError {
    /// The model contains an exact GraphNorm layer — its whole-vertex-set
    /// statistics contradict incremental updates. Capture statistics with a
    /// full inference and freeze them (paper §II-E).
    ExactGraphNorm,
    /// The feature matrix does not match the model input or the graph size.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A vertex id outside the graph was referenced.
    UnknownVertex(ink_graph::VertexId),
}

impl std::fmt::Display for InkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InkError::ExactGraphNorm => write!(
                f,
                "model uses exact GraphNorm; freeze cached statistics before incremental updates"
            ),
            InkError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            InkError::UnknownVertex(v) => write!(f, "unknown vertex {v}"),
        }
    }
}

impl std::error::Error for InkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(InkError::ExactGraphNorm.to_string().contains("GraphNorm"));
        assert!(InkError::ShapeMismatch { detail: "x".into() }.to_string().contains("x"));
        assert!(InkError::UnknownVertex(9).to_string().contains('9'));
    }
}
