//! Engine error type.

/// Reasons the incremental engine can reject a configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InkError {
    /// The model contains an exact GraphNorm layer — its whole-vertex-set
    /// statistics contradict incremental updates. Capture statistics with a
    /// full inference and freeze them (paper §II-E).
    ExactGraphNorm,
    /// The feature matrix does not match the model input or the graph size.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A vertex id outside the graph was referenced.
    UnknownVertex(ink_graph::VertexId),
    /// A checkpoint stream did not start with the expected magic bytes.
    BadMagic,
    /// A checkpoint stream ended before all declared data arrived.
    Truncated,
    /// A checkpoint stream is structurally invalid (e.g. a matrix header
    /// whose element count overflows, or an unloadable graph section).
    Corrupt {
        /// Human-readable description of what was malformed.
        detail: String,
    },
    /// An underlying I/O failure that is not a truncation (disk error,
    /// connection reset, permissions).
    Io {
        /// The rendered `std::io::Error`.
        detail: String,
    },
    /// A partition worker thread panicked mid-round. The worker pool is
    /// poisoned: every subsequent round fails fast with this error until
    /// the session is rebuilt via `resync()`.
    WorkerPanic {
        /// Index of the partition whose worker panicked.
        partition: usize,
        /// Rendered panic payload, when it was a string.
        detail: String,
    },
}

impl InkError {
    /// Classifies an `io::Error` raised while reading a checkpoint stream:
    /// unexpected EOF means the file was cut short, `InvalidData` means a
    /// section parser rejected its bytes, anything else is a real I/O fault.
    pub fn from_read_error(e: std::io::Error) -> InkError {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => InkError::Truncated,
            std::io::ErrorKind::InvalidData => InkError::Corrupt { detail: e.to_string() },
            _ => InkError::Io { detail: e.to_string() },
        }
    }
}

impl std::fmt::Display for InkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InkError::ExactGraphNorm => write!(
                f,
                "model uses exact GraphNorm; freeze cached statistics before incremental updates"
            ),
            InkError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            InkError::UnknownVertex(v) => write!(f, "unknown vertex {v}"),
            InkError::BadMagic => write!(f, "not an InkStream checkpoint (bad magic)"),
            InkError::Truncated => write!(f, "checkpoint truncated: stream ended mid-section"),
            InkError::Corrupt { detail } => write!(f, "corrupt checkpoint: {detail}"),
            InkError::Io { detail } => write!(f, "checkpoint I/O error: {detail}"),
            InkError::WorkerPanic { partition, detail } => write!(
                f,
                "partition {partition} worker panicked ({detail}); pool poisoned until resync"
            ),
        }
    }
}

impl std::error::Error for InkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(InkError::ExactGraphNorm.to_string().contains("GraphNorm"));
        assert!(InkError::ShapeMismatch { detail: "x".into() }.to_string().contains("x"));
        assert!(InkError::UnknownVertex(9).to_string().contains('9'));
        assert!(InkError::BadMagic.to_string().contains("magic"));
        assert!(InkError::Truncated.to_string().contains("truncated"));
        assert!(InkError::Corrupt { detail: "why".into() }.to_string().contains("why"));
        assert!(InkError::Io { detail: "disk".into() }.to_string().contains("disk"));
        let p = InkError::WorkerPanic { partition: 3, detail: "boom".into() }.to_string();
        assert!(p.contains('3') && p.contains("boom") && p.contains("resync"));
    }

    #[test]
    fn read_errors_classify_by_kind() {
        use std::io::{Error, ErrorKind};
        assert_eq!(
            InkError::from_read_error(Error::new(ErrorKind::UnexpectedEof, "eof")),
            InkError::Truncated
        );
        assert!(matches!(
            InkError::from_read_error(Error::new(ErrorKind::InvalidData, "bad")),
            InkError::Corrupt { .. }
        ));
        assert!(matches!(
            InkError::from_read_error(Error::new(ErrorKind::PermissionDenied, "no")),
            InkError::Io { .. }
        ));
    }
}
