//! Engine configuration, including the ablation switches of the paper's
//! Table VI.

/// Tunables of the incremental engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateConfig {
    /// Component 1 (paper Table VI): intra-layer incremental update. When
    /// off, every event target recomputes its aggregated neighborhood from
    /// the full neighborhood (still touching only the affected area).
    pub incremental: bool,
    /// Component 2: inter-layer pruned propagation. When off, resilient
    /// nodes propagate events anyway (monotonic layers lose their savings
    /// and behave like accumulative ones, as in the paper's `InkStream-m (1)`
    /// row).
    pub pruning: bool,
    /// Process independent targets of a layer with rayon once a layer has at
    /// least [`UpdateConfig::parallel_threshold`] of them.
    pub parallel: bool,
    /// Minimum per-layer target count before going parallel.
    pub parallel_threshold: usize,
}

impl Default for UpdateConfig {
    fn default() -> Self {
        Self { incremental: true, pruning: true, parallel: true, parallel_threshold: 512 }
    }
}

impl UpdateConfig {
    /// The full InkStream configuration (components 1 & 2).
    pub fn full() -> Self {
        Self::default()
    }

    /// Ablation: incremental updates only, no pruned propagation —
    /// `InkStream-m (1)` in Table VI.
    pub fn incremental_only() -> Self {
        Self { pruning: false, ..Self::default() }
    }

    /// Ablation: neither component — event-driven recomputation of every
    /// touched node (the engine-internal k-hop-like floor).
    pub fn recompute_all() -> Self {
        Self { incremental: false, pruning: false, ..Self::default() }
    }

    /// Disables rayon (deterministic single-thread profiling runs).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_both_components() {
        let c = UpdateConfig::default();
        assert!(c.incremental && c.pruning && c.parallel);
    }

    #[test]
    fn ablation_presets() {
        assert!(UpdateConfig::incremental_only().incremental);
        assert!(!UpdateConfig::incremental_only().pruning);
        assert!(!UpdateConfig::recompute_all().incremental);
        assert!(!UpdateConfig::recompute_all().pruning);
    }

    #[test]
    fn sequential_turns_off_rayon() {
        assert!(!UpdateConfig::full().sequential().parallel);
    }
}
