//! Engine configuration, including the ablation switches of the paper's
//! Table VI.

/// Tunables of the incremental engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateConfig {
    /// Component 1 (paper Table VI): intra-layer incremental update. When
    /// off, every event target recomputes its aggregated neighborhood from
    /// the full neighborhood (still touching only the affected area).
    pub incremental: bool,
    /// Component 2: inter-layer pruned propagation. When off, resilient
    /// nodes propagate events anyway (monotonic layers lose their savings
    /// and behave like accumulative ones, as in the paper's `InkStream-m (1)`
    /// row).
    pub pruning: bool,
    /// Process independent targets of a layer with rayon once a layer has at
    /// least [`UpdateConfig::parallel_threshold`] of them.
    pub parallel: bool,
    /// Minimum per-layer work-item count before going parallel.
    pub parallel_threshold: usize,
    /// Worker count for the event-generation phase (`0` = one per rayon
    /// thread). The partitioning — and therefore the result, bit for bit —
    /// is identical for every worker count; this knob only tunes load
    /// balance.
    pub num_workers: usize,
    /// Target-shard count for the group-reduce phase (`0` = auto: the next
    /// power of two of 4 × workers). Like `num_workers`, this never changes
    /// results, only how reduction work is distributed.
    pub num_shards: usize,
    /// Compensated (Neumaier) accumulation for the sum/mean incremental
    /// path: the group-reduce phase carries a per-slot error channel and the
    /// α update widens to `f64`, cutting the per-round rounding error that
    /// drift audits exist to bound. Off by default — it costs extra
    /// arithmetic and the monotonic path never needs it.
    pub compensated: bool,
    /// Gather→GEMM→scatter transform in the next-messages phase: affected
    /// rows are gathered into a contiguous scratch matrix, the layer update
    /// and next-layer message run as one batched GEMM per layer, and the
    /// results scatter back. Bitwise identical to the per-node path (the
    /// kernel accumulates every output element in the same k order), so this
    /// is purely a throughput knob.
    pub batched_transform: bool,
    /// Minimum next-target count before the batched transform engages —
    /// below it the per-node path wins (packing the weight panel costs more
    /// than it saves).
    pub batch_threshold: usize,
    /// Batched aggregator recomputation in the apply phase: targets that
    /// fall off the incremental path (exposed resets, empty-old
    /// neighborhoods, forced recomputes) are grouped by event kind × degree
    /// class, their neighbor messages gathered into contiguous panels, and
    /// each panel folded with one batched reduction. Bitwise identical to
    /// the per-target scalar loop (rows fold in the same order with the
    /// same kernels), so this is purely a throughput knob.
    pub batched_apply: bool,
    /// Minimum deferred-recompute count per shard before the batched apply
    /// path engages — below it the scalar per-target loop wins.
    pub apply_batch_threshold: usize,
    /// Adaptive dispatch: pick sequential vs batched vs parallel execution
    /// per update round from a calibrated cost model
    /// ([`ink_gnn::cost::CostModel`]) instead of the static `parallel` /
    /// `batched_*` switches. Every arm is bitwise-identical, so the model
    /// only ever trades wall-clock. Off by default: fixed configurations
    /// stay exactly reproducible run-over-run for benchmarks and tests.
    pub adaptive: bool,
    /// Rounds smaller than this many work items (directed ΔG edges + feature
    /// seeds) skip the cost model and run sequentially — tiny updates must
    /// never pay worker fan-out or panel packing overhead.
    pub adaptive_min_work: usize,
    /// How many observations the dispatcher collects per arm before it
    /// starts exploiting the cost model.
    pub adaptive_probes: u64,
}

impl Default for UpdateConfig {
    fn default() -> Self {
        Self {
            incremental: true,
            pruning: true,
            parallel: true,
            parallel_threshold: 512,
            num_workers: 0,
            num_shards: 0,
            compensated: false,
            batched_transform: true,
            batch_threshold: 8,
            batched_apply: true,
            apply_batch_threshold: 8,
            adaptive: false,
            adaptive_min_work: 64,
            adaptive_probes: 2,
        }
    }
}

impl UpdateConfig {
    /// The full InkStream configuration (components 1 & 2).
    pub fn full() -> Self {
        Self::default()
    }

    /// Ablation: incremental updates only, no pruned propagation —
    /// `InkStream-m (1)` in Table VI.
    pub fn incremental_only() -> Self {
        Self { pruning: false, ..Self::default() }
    }

    /// Ablation: neither component — event-driven recomputation of every
    /// touched node (the engine-internal k-hop-like floor).
    pub fn recompute_all() -> Self {
        Self { incremental: false, pruning: false, ..Self::default() }
    }

    /// Disables rayon (deterministic single-thread profiling runs).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Enables compensated (Neumaier) accumulation on the sum/mean
    /// incremental path.
    pub fn compensated(mut self) -> Self {
        self.compensated = true;
        self
    }

    /// Disables the batched gather→GEMM→scatter transform, forcing the
    /// per-node path in the next-messages phase (equivalence tests, and the
    /// per-node baseline of the kernels bench).
    pub fn per_node_transform(mut self) -> Self {
        self.batched_transform = false;
        self
    }

    /// Disables the batched apply-phase recomputation, forcing the scalar
    /// per-target aggregation loop (equivalence tests, and the per-target
    /// baseline of the pipeline bench).
    pub fn per_target_apply(mut self) -> Self {
        self.batched_apply = false;
        self
    }

    /// Enables per-round adaptive dispatch between the sequential, batched
    /// and parallel execution plans.
    pub fn adaptive(mut self) -> Self {
        self.adaptive = true;
        self
    }

    /// The worker count the pipeline will partition generation work into.
    pub fn worker_count(&self) -> usize {
        if !self.parallel {
            1
        } else if self.num_workers > 0 {
            self.num_workers
        } else {
            rayon::current_num_threads().max(1)
        }
    }

    /// The shard count the pipeline will split group-reduce targets into.
    pub fn shard_count(&self) -> usize {
        if !self.parallel {
            1
        } else if self.num_shards > 0 {
            self.num_shards
        } else {
            (self.worker_count() * 4).next_power_of_two()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_both_components() {
        let c = UpdateConfig::default();
        assert!(c.incremental && c.pruning && c.parallel);
    }

    #[test]
    fn ablation_presets() {
        assert!(UpdateConfig::incremental_only().incremental);
        assert!(!UpdateConfig::incremental_only().pruning);
        assert!(!UpdateConfig::recompute_all().incremental);
        assert!(!UpdateConfig::recompute_all().pruning);
    }

    #[test]
    fn sequential_turns_off_rayon() {
        assert!(!UpdateConfig::full().sequential().parallel);
    }

    #[test]
    fn compensated_is_opt_in() {
        assert!(!UpdateConfig::default().compensated);
        assert!(UpdateConfig::default().compensated().compensated);
    }

    #[test]
    fn batched_transform_is_on_by_default_and_can_be_disabled() {
        assert!(UpdateConfig::default().batched_transform);
        assert!(UpdateConfig::default().batch_threshold >= 1);
        assert!(!UpdateConfig::default().per_node_transform().batched_transform);
    }

    #[test]
    fn batched_apply_is_on_by_default_and_can_be_disabled() {
        assert!(UpdateConfig::default().batched_apply);
        assert!(UpdateConfig::default().apply_batch_threshold >= 1);
        assert!(!UpdateConfig::default().per_target_apply().batched_apply);
    }

    #[test]
    fn adaptive_is_opt_in() {
        let c = UpdateConfig::default();
        assert!(!c.adaptive);
        assert!(c.adaptive().adaptive);
        assert!(c.adaptive_min_work > 0, "tiny rounds must short-circuit to sequential");
        assert!(c.adaptive_probes > 0);
    }

    #[test]
    fn sequential_runs_one_worker_one_shard() {
        let c = UpdateConfig { num_workers: 8, num_shards: 64, ..UpdateConfig::default() };
        assert_eq!(c.sequential().worker_count(), 1);
        assert_eq!(c.sequential().shard_count(), 1);
    }

    #[test]
    fn explicit_worker_and_shard_counts_win() {
        let c = UpdateConfig { num_workers: 3, num_shards: 5, ..UpdateConfig::default() };
        assert_eq!(c.worker_count(), 3);
        assert_eq!(c.shard_count(), 5);
    }

    #[test]
    fn auto_shard_count_is_a_power_of_two() {
        let c = UpdateConfig { num_workers: 3, ..UpdateConfig::default() };
        let s = c.shard_count();
        assert!(s.is_power_of_two());
        assert!(s >= 4 * 3);
    }
}
