//! Minimal JSON writing.
//!
//! The bench binaries and the server's `stats` request all emit JSON; before
//! this module each call site hand-rolled `format!` strings, which drifted
//! in style and was easy to get syntactically wrong. This is the smallest
//! value type + pretty printer that covers those producers — output only,
//! no parsing, no external dependency (the build environment is offline).

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite numbers render as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float, rendered with Rust's shortest round-trip formatting.
    /// Non-finite values render as `null` (JSON has no NaN/Inf).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs.
    ///
    /// ```
    /// use inkstream::json::Json;
    ///
    /// let j = Json::obj([
    ///     ("bench", Json::from("serve")),
    ///     ("clients", Json::from(4u64)),
    ///     ("p50_us", Json::from(12.5)),
    /// ]);
    /// assert!(j.pretty().contains("\"clients\": 4"));
    /// ```
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Appends a field to an object.
    ///
    /// # Panics
    ///
    /// If `self` is not an object.
    pub fn push(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(fields) => fields.push((key.into(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// the house style of the `results/BENCH_*.json` artifacts.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Compact single-line rendering (wire format for the `stats` request).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
            leaf => leaf.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Rounds to `digits` decimal places — benches report microseconds where
/// sub-nano noise is meaningless and bloats the artifact.
pub fn rounded(x: f64, digits: u32) -> Json {
    if !x.is_finite() {
        return Json::Null;
    }
    let scale = 10f64.powi(digits as i32);
    Json::Num((x * scale).round() / scale)
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<f32> for Json {
    fn from(v: f32) -> Json {
        Json::Num(v as f64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaves_render_compactly() {
        assert_eq!(Json::Null.compact(), "null");
        assert_eq!(Json::from(true).compact(), "true");
        assert_eq!(Json::from(-3i64).compact(), "-3");
        assert_eq!(Json::from(1.5f64).compact(), "1.5");
        assert_eq!(Json::from(f64::NAN).compact(), "null");
        assert_eq!(Json::from(f64::INFINITY).compact(), "null");
        assert_eq!(Json::from("a\"b\n").compact(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn pretty_nests_with_two_space_indent() {
        let j = Json::obj([
            ("name", Json::from("x")),
            ("rows", Json::arr([Json::obj([("v", Json::from(1u64))])])),
            ("empty_arr", Json::arr([])),
            ("empty_obj", Json::obj::<String>([])),
        ]);
        let s = j.pretty();
        assert_eq!(
            s,
            "{\n  \"name\": \"x\",\n  \"rows\": [\n    {\n      \"v\": 1\n    }\n  ],\n  \
             \"empty_arr\": [],\n  \"empty_obj\": {}\n}\n"
        );
    }

    #[test]
    fn rounded_truncates_noise() {
        assert_eq!(rounded(1.23456, 3).compact(), "1.235");
        assert_eq!(rounded(f64::NAN, 3), Json::Null);
    }

    #[test]
    fn push_extends_objects() {
        let mut j = Json::obj([("a", Json::from(1u64))]);
        j.push("b", Json::from(2u64));
        assert_eq!(j.compact(), "{\"a\": 1, \"b\": 2}");
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn push_on_array_panics() {
        Json::arr([]).push("a", Json::Null);
    }
}
