//! The InkStream engine — the paper's Algorithm 1.
//!
//! [`InkStream`] owns the model, the current graph, the features, and the
//! cached per-layer state (`m`, `α`, output `h`) from the previous
//! timestamp. Each update round processes layers in order through a five
//! phase pipeline (see DESIGN.md, "Update pipeline"):
//!
//! 1. **generate** — degree rescaling, ΔG event seeding, and effect
//!    propagation, fanned out across workers that write into private
//!    payload arenas and per-shard event buckets;
//! 2. **group** — target-sharded reduction of each shard's events to at
//!    most one deletion/addition payload (monotonic) or one signed sum
//!    (accumulative) per target, payloads living in flat per-shard buffers;
//! 3. **apply** — per-target evolvability check (no reset / covered reset /
//!    exposed reset → recompute) or accumulative update, α values written
//!    into flat per-shard output buffers;
//! 4. **write** — sequential commit of changed α rows, condition stats,
//!    user events, and the merged next-layer target list;
//! 5. **next-messages** — rebuild of next-layer messages (or final outputs)
//!    for every target, emitting the next layer's effect seeds unless
//!    pruned.
//!
//! Workers process contiguous ordered chunks and every target belongs to
//! exactly one shard, so the pipeline's result is bitwise identical for
//! every worker/shard count — including the sequential 1×1 configuration.
//! All scratch storage is pooled in the engine and reused across rounds, so
//! steady-state updates allocate nothing in the generate and group phases.
//!
//! Monotonic updates are bitwise identical to full recomputation; the
//! integration suite asserts that per aggregation function.

use crate::accumulative::apply_accumulative_into;
use crate::config::UpdateConfig;
use crate::error::InkError;
use crate::event::{Event, EventOp};
use crate::grouping::{recompute_sort_key, RecomputeKind};
use crate::hooks::{UserEvent, UserHooks};
use crate::monotonic::{apply_monotonic_into, Condition};
use crate::pipeline::{
    shard_of, slot_in, worker_chunk, ApplyOutcome, ApplyParts, CondKind, ScratchPool,
    ShardScratch, WorkerScratch,
};
use crate::stats::{LayerStats, UpdateReport};
use ink_graph::{DeltaBatch, DynGraph, EdgeChange, EdgeOp, FxHashMap, VertexId};
use ink_gnn::cost::{CostModel, DispatchArm};
use ink_gnn::full::{batch_aggregate_into, batch_message_into};
use ink_gnn::{FullState, Model};
use ink_tensor::gemm::{gather_rows_into, gather_rows_scaled_into};
use ink_tensor::{GemmScratch, Matrix};
use rayon::prelude::*;
use std::time::Instant;

/// What an [`InkStream::resync`] cost: wall time of the bootstrap and the
/// number of `f32` values rewritten (the full cached state).
#[derive(Clone, Copy, Debug, Default)]
pub struct ResyncReport {
    /// Wall-clock time of the in-place rebuild.
    pub elapsed: std::time::Duration,
    /// `f32` values written: every cell of every cached `m`/`α`/`h` matrix.
    pub f32_written: u64,
}

/// In-flight context of one update round while it is stepped layer by layer
/// through the round API ([`InkStream::round_begin`] …
/// [`InkStream::round_finish`]). The scratch pool moves in here for the
/// duration of the round and back into the engine at the end, so the
/// zero-allocation guarantees are unchanged.
struct RoundState {
    directed: Vec<(VertexId, VertexId, EdgeOp)>,
    scratch: ScratchPool,
    report: UpdateReport,
    t0: Instant,
    nw: usize,
    ns: usize,
    par_enabled: bool,
    batched_tf: bool,
    batched_ap: bool,
    arm: Option<DispatchArm>,
    round_work: usize,
    f32_read: u64,
    f32_written: u64,
    /// Wall time of the most recent [`InkStream::round_rescale`], folded
    /// into that layer's generate-phase time by `round_process`.
    rescale_elapsed: std::time::Duration,
}

/// The incremental GNN inference engine.
pub struct InkStream {
    model: Model,
    graph: DynGraph,
    features: Matrix,
    state: FullState,
    config: UpdateConfig,
    hooks: Option<Box<dyn UserHooks>>,
    user_cache: Vec<Option<Matrix>>,
    scratch: ScratchPool,
    /// Per-arm cost fits feeding the adaptive dispatcher
    /// ([`UpdateConfig::adaptive`]). Persists across rounds so the model
    /// keeps learning over the stream.
    cost: CostModel,
    /// Ownership mask for partitioned operation (`None` = this engine owns
    /// every vertex). A non-owned ("ghost") vertex carries cached messages
    /// that mirror its owner's, but this engine never updates its α/h rows
    /// and never generates events targeting it — the owning engine does.
    owned: Option<Vec<bool>>,
    /// The round currently being stepped, if any.
    round: Option<RoundState>,
}

impl InkStream {
    /// Bootstraps the engine with a full-graph inference (the paper's
    /// initial step) and takes ownership of graph and features.
    pub fn new(
        model: Model,
        graph: DynGraph,
        features: Matrix,
        config: UpdateConfig,
    ) -> Result<Self, InkError> {
        Self::with_hooks(model, graph, features, config, None)
    }

    /// Like [`InkStream::new`] with user-defined event hooks (paper §II-D).
    pub fn with_hooks(
        model: Model,
        graph: DynGraph,
        features: Matrix,
        config: UpdateConfig,
        hooks: Option<Box<dyn UserHooks>>,
    ) -> Result<Self, InkError> {
        if !model.supports_incremental() {
            return Err(InkError::ExactGraphNorm);
        }
        if features.cols() != model.in_dim() {
            return Err(InkError::ShapeMismatch {
                detail: format!(
                    "feature dim {} != model input dim {}",
                    features.cols(),
                    model.in_dim()
                ),
            });
        }
        if features.rows() != graph.num_vertices() {
            return Err(InkError::ShapeMismatch {
                detail: format!(
                    "{} feature rows for {} vertices",
                    features.rows(),
                    graph.num_vertices()
                ),
            });
        }
        let (state, user_cache) = bootstrap(&model, &graph, &features, hooks.as_deref());
        Ok(Self {
            model,
            graph,
            features,
            state,
            config,
            hooks,
            user_cache,
            scratch: ScratchPool::default(),
            cost: CostModel::new(),
            owned: None,
            round: None,
        })
    }

    /// Reassembles an engine from previously cached state *without* a full
    /// inference — the checkpoint-resume path (see [`crate::checkpoint`]).
    /// Shapes are validated; user caches are rebuilt from the cached
    /// messages. The caller is responsible for the state actually matching
    /// the graph/features (checkpoints written by [`crate::checkpoint::save`]
    /// do by construction).
    pub fn from_parts(
        model: Model,
        graph: DynGraph,
        features: Matrix,
        state: FullState,
        config: UpdateConfig,
        hooks: Option<Box<dyn UserHooks>>,
    ) -> Result<Self, InkError> {
        if !model.supports_incremental() {
            return Err(InkError::ExactGraphNorm);
        }
        let n = graph.num_vertices();
        let k = model.num_layers();
        if features.shape() != (n, model.in_dim()) {
            return Err(InkError::ShapeMismatch {
                detail: format!("features {:?} for n={n}, in_dim={}", features.shape(), model.in_dim()),
            });
        }
        if state.m.len() != k || state.alpha.len() != k {
            return Err(InkError::ShapeMismatch {
                detail: format!("state has {} layers, model has {k}", state.m.len()),
            });
        }
        for l in 0..k {
            let want = (n, model.msg_dim(l));
            if state.m[l].shape() != want || state.alpha[l].shape() != want {
                return Err(InkError::ShapeMismatch {
                    detail: format!(
                        "layer {l}: m {:?} / alpha {:?}, expected {want:?}",
                        state.m[l].shape(),
                        state.alpha[l].shape()
                    ),
                });
            }
        }
        if state.h.shape() != (n, model.out_dim()) {
            return Err(InkError::ShapeMismatch {
                detail: format!("output {:?}, expected ({n}, {})", state.h.shape(), model.out_dim()),
            });
        }
        let user_cache = (0..k)
            .map(|l| hooks.as_deref().and_then(|h| h.init_cache(l, &state.m[l])))
            .collect();
        Ok(Self {
            model,
            graph,
            features,
            state,
            config,
            hooks,
            user_cache,
            scratch: ScratchPool::default(),
            cost: CostModel::new(),
            owned: None,
            round: None,
        })
    }

    /// The current output embeddings.
    pub fn output(&self) -> &Matrix {
        &self.state.h
    }

    /// The current graph.
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// The current feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// The cached per-layer state (`m`, `α`, `h`).
    pub fn state(&self) -> &FullState {
        &self.state
    }

    /// The model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Replaces the update configuration (e.g. to switch ablation modes).
    pub fn set_config(&mut self, config: UpdateConfig) {
        self.config = config;
    }

    /// The adaptive dispatcher's cost model (sample counts and per-arm
    /// predictions), for observability exports.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Heap bytes reserved by the engine's reusable scratch pool. Stable
    /// across steady-state rounds of similar shape — the zero-allocation
    /// guarantee of the generate/group phases.
    pub fn scratch_bytes(&self) -> usize {
        self.scratch.bytes()
    }

    /// Recomputes the output from scratch (fresh bootstrap) — the reference
    /// the incremental state must match. Intended for verification.
    pub fn recompute_reference(&self) -> Matrix {
        bootstrap(&self.model, &self.graph, &self.features, self.hooks.as_deref()).0.h
    }

    /// Mutable access to the cached state, for fault injection in tests and
    /// drift experiments (e.g. poisoning one α channel with NaN to exercise
    /// the audit path). Production code should never need this: the engine
    /// maintains the state invariants itself, and a hand-edited state is by
    /// definition out of sync until [`InkStream::resync`] runs.
    pub fn state_mut(&mut self) -> &mut FullState {
        &mut self.state
    }

    /// True when any cached matrix (`m`, `α`, `h`) holds a NaN or infinity.
    pub fn state_has_nan(&self) -> bool {
        self.state.m.iter().chain(&self.state.alpha).any(Matrix::has_non_finite)
            || self.state.h.has_non_finite()
    }

    /// Spot-audits one vertex: checks its cached rows for non-finite values,
    /// recomputes `α_l[v]` from the cached neighbor messages, and re-derives
    /// the downstream message / output row from the cached `α`. Returns the
    /// worst absolute deviation across all layers — `NaN` when any involved
    /// value is non-finite (NaN never compares under tolerance, so it always
    /// reads as a breach).
    ///
    /// Cost is `O(deg(v) · dim · layers)` — independent of the graph size,
    /// which is what makes sampled audits cheap (see DESIGN.md, "Drift
    /// auditing and resync").
    pub fn audit_vertex(&self, v: VertexId) -> f32 {
        use ink_tensor::ops::nan_max;
        if (v as usize) >= self.graph.num_vertices() {
            return f32::NAN;
        }
        let k = self.model.num_layers();
        for l in 0..k {
            let finite = |x: &f32| x.is_finite();
            if !self.state.m[l].row(v as usize).iter().all(finite)
                || !self.state.alpha[l].row(v as usize).iter().all(finite)
            {
                return f32::NAN;
            }
        }
        if !self.state.h.row(v as usize).iter().all(|x| x.is_finite()) {
            return f32::NAN;
        }
        let degree = self.graph.in_degree(v);
        let mut dev = 0.0f32;
        for l in 0..k {
            // Aggregation consistency: cached α must equal a fresh aggregate
            // of the cached neighbor messages.
            let agg = self.model.layer(l).conv.aggregator();
            let mut fresh = vec![0.0; self.model.msg_dim(l)];
            agg.aggregate_into(
                self.graph.in_neighbors(v).iter().map(|&u| self.state.m[l].row(u as usize)),
                &mut fresh,
            );
            for (a, b) in fresh.iter().zip(self.state.alpha[l].row(v as usize)) {
                dev = nan_max(dev, (a - b).abs());
            }
            // Chain consistency: the downstream row derived from cached α
            // must equal the cached downstream row.
            let h_next = compute_next_hidden(
                &self.model,
                &self.state,
                self.hooks.as_deref(),
                &self.user_cache,
                l,
                v,
                degree,
            );
            if l + 1 < k {
                let conv = &self.model.layer(l + 1).conv;
                let mut msg = conv.message(&h_next);
                if conv.degree_scaled() {
                    ink_tensor::ops::scale(&mut msg, conv.degree_scale(degree));
                }
                for (a, b) in msg.iter().zip(self.state.m[l + 1].row(v as usize)) {
                    dev = nan_max(dev, (a - b).abs());
                }
            } else {
                for (a, b) in h_next.iter().zip(self.state.h.row(v as usize)) {
                    dev = nan_max(dev, (a - b).abs());
                }
            }
        }
        dev
    }

    /// [`InkStream::audit_vertex`] over a sample, NaN-propagating fold of the
    /// worst deviation.
    pub fn audit_vertices(&self, vs: &[VertexId]) -> f32 {
        vs.iter().fold(0.0, |acc, &v| ink_tensor::ops::nan_max(acc, self.audit_vertex(v)))
    }

    /// Full audit: scans the whole cached state for non-finite values
    /// (returning `NaN` if any), then compares the cached output against a
    /// fresh [`InkStream::recompute_reference`]. This is the expensive,
    /// authoritative drift measurement — `O(bootstrap)`.
    pub fn audit_full(&self) -> f32 {
        if self.state_has_nan() {
            return f32::NAN;
        }
        self.state.h.max_abs_diff(&self.recompute_reference())
    }

    /// Rebuilds all cached state (`m`, `α`, `h`, user caches) in place via
    /// the bootstrap path — the self-healing action of
    /// [`crate::DriftAction::Resync`]. Afterwards the output is bitwise
    /// equal to [`InkStream::recompute_reference`] by construction; the
    /// graph and features are untouched. Every cached matrix is rebuilt
    /// capacity-preserving with temporaries drawn from the engine's scratch
    /// pool, so repeated resyncs of a hook-free engine allocate nothing
    /// after the first.
    pub fn resync(&mut self) -> ResyncReport {
        let t0 = Instant::now();
        bootstrap_into(
            &self.model,
            &self.graph,
            &self.features,
            self.hooks.as_deref(),
            &mut self.state,
            &mut self.user_cache,
            &mut self.scratch.gemm,
        );
        let f32_written = self
            .state
            .m
            .iter()
            .chain(&self.state.alpha)
            .chain(std::iter::once(&self.state.h))
            .map(|m| m.rows() * m.cols())
            .sum::<usize>() as u64;
        ResyncReport { elapsed: t0.elapsed(), f32_written }
    }

    /// Applies `delta`'s effective changes to the graph and expands them into
    /// directed `(src, dst, op)` pairs (both directions for undirected
    /// graphs). Returns the pairs plus the count of skipped no-ops.
    fn stage_delta(&mut self, delta: &DeltaBatch) -> (Vec<(VertexId, VertexId, EdgeOp)>, usize) {
        let mut directed: Vec<(VertexId, VertexId, EdgeOp)> = Vec::with_capacity(delta.len() * 2);
        let mut skipped = 0usize;
        for c in delta.changes() {
            if self.graph.apply(*c) {
                directed.push((c.src, c.dst, c.op));
                if !self.graph.is_directed() {
                    directed.push((c.dst, c.src, c.op));
                }
            } else {
                skipped += 1;
            }
        }
        (directed, skipped)
    }

    /// Writes one feature row and, for an owned vertex whose layer-0 message
    /// actually changes, records the old message as a propagation seed (plus
    /// any user events). Ghost vertices only get the feature row written —
    /// their message refresh arrives from the owning engine.
    fn stage_feature_update(
        &mut self,
        v: VertexId,
        new_feat: &[f32],
        seeds: &mut Vec<(VertexId, Vec<f32>)>,
        user0: &mut Vec<UserEvent>,
    ) -> Result<(), InkError> {
        if (v as usize) >= self.graph.num_vertices() {
            return Err(InkError::UnknownVertex(v));
        }
        if new_feat.len() != self.model.in_dim() {
            return Err(InkError::ShapeMismatch {
                detail: format!("feature len {} != {}", new_feat.len(), self.model.in_dim()),
            });
        }
        self.features.set_row(v as usize, new_feat);
        if !self.owns(v) {
            return Ok(());
        }
        let conv0 = &self.model.layer(0).conv;
        let mut new_m = conv0.message(new_feat);
        if conv0.degree_scaled() {
            ink_tensor::ops::scale(&mut new_m, conv0.degree_scale(self.graph.in_degree(v)));
        }
        let old = self.state.m[0].row(v as usize).to_vec();
        if new_m != old {
            self.state.m[0].set_row(v as usize, &new_m);
            if let Some(hooks) = self.hooks.as_deref() {
                user0.extend(hooks.user_propagate(0, v, &old, &new_m));
            }
            seeds.push((v, old));
        }
        Ok(())
    }

    /// Applies a batch of edge changes and incrementally updates all cached
    /// state. Changes that are no-ops against the current graph (duplicate
    /// inserts, missing removals) are skipped and counted in the report.
    pub fn apply_delta(&mut self, delta: &DeltaBatch) -> UpdateReport {
        let (directed, skipped) = self.stage_delta(delta);
        let mut report = self.run_layers(directed, Vec::new(), Vec::new());
        report.skipped_changes = skipped;
        report
    }

    /// Updates one vertex's input feature (paper §II-F) and propagates the
    /// effect through all layers.
    pub fn update_vertex_feature(
        &mut self,
        v: VertexId,
        new_feat: &[f32],
    ) -> Result<UpdateReport, InkError> {
        let mut seeds = Vec::new();
        let mut user0 = Vec::new();
        self.stage_feature_update(v, new_feat, &mut seeds, &mut user0)?;
        Ok(self.run_layers(Vec::new(), seeds, user0))
    }

    /// Inserts a new vertex with `feat` and undirected/outgoing edges to
    /// `neighbors`, extending all cached state (paper §II-F).
    pub fn add_vertex(
        &mut self,
        feat: &[f32],
        neighbors: &[VertexId],
    ) -> Result<(VertexId, UpdateReport), InkError> {
        if feat.len() != self.model.in_dim() {
            return Err(InkError::ShapeMismatch {
                detail: format!("feature len {} != {}", feat.len(), self.model.in_dim()),
            });
        }
        for &n in neighbors {
            if (n as usize) >= self.graph.num_vertices() {
                return Err(InkError::UnknownVertex(n));
            }
        }
        let v = self.graph.add_vertex();
        self.features.push_row(feat);
        // Build the new vertex's self-consistent isolated chain: empty
        // neighborhood → α = 0 at every layer.
        let k = self.model.num_layers();
        let conv0 = &self.model.layer(0).conv;
        let mut msg = conv0.message(feat);
        if conv0.degree_scaled() {
            ink_tensor::ops::scale(&mut msg, conv0.degree_scale(0));
        }
        for l in 0..k {
            let dim = self.model.msg_dim(l);
            self.state.m[l].push_row(&msg);
            self.state.alpha[l].push_row(&vec![0.0; dim]);
            if let Some(cache) = self.user_cache[l].as_mut() {
                let single = Matrix::from_vec(1, dim, msg.clone());
                let row = self
                    .hooks
                    .as_deref()
                    .and_then(|h| h.init_cache(l, &single))
                    .expect("hooked layer must produce a cache row");
                cache.push_row(row.row(0));
            }
            let h_next = compute_next_hidden(
                &self.model,
                &self.state,
                self.hooks.as_deref(),
                &self.user_cache,
                l,
                v,
                0,
            );
            if l + 1 < k {
                let next_conv = &self.model.layer(l + 1).conv;
                msg = next_conv.message(&h_next);
                if next_conv.degree_scaled() {
                    ink_tensor::ops::scale(&mut msg, next_conv.degree_scale(0));
                }
            } else {
                self.state.h.push_row(&h_next);
            }
        }
        let changes: Vec<EdgeChange> =
            neighbors.iter().map(|&n| EdgeChange::insert(v, n)).collect();
        let report = self.apply_delta(&DeltaBatch::new(changes));
        Ok((v, report))
    }

    /// Removes all edges incident to `v` (the id slot stays, isolated, so
    /// embedding tables keep their indices) and updates the affected area.
    pub fn remove_vertex(&mut self, v: VertexId) -> Result<UpdateReport, InkError> {
        if (v as usize) >= self.graph.num_vertices() {
            return Err(InkError::UnknownVertex(v));
        }
        let mut changes: Vec<EdgeChange> =
            self.graph.out_neighbors(v).iter().map(|&n| EdgeChange::remove(v, n)).collect();
        if self.graph.is_directed() {
            changes.extend(self.graph.in_neighbors(v).iter().map(|&n| EdgeChange::remove(n, v)));
        }
        Ok(self.apply_delta(&DeltaBatch::new(changes)))
    }

    /// The engine's main loop over layers (Algorithm 1), as the sharded
    /// five-phase pipeline described in the module docs. Implemented on top
    /// of the round-stepping API (`round_begin` … `round_finish`) so a
    /// partitioned driver can interleave boundary-row exchanges between
    /// layers; run back to back the steps are bitwise identical to the
    /// monolithic pipeline they were split from.
    fn run_layers(
        &mut self,
        directed: Vec<(VertexId, VertexId, EdgeOp)>,
        seeds0: Vec<(VertexId, Vec<f32>)>,
        user0: Vec<UserEvent>,
    ) -> UpdateReport {
        self.round_start(directed, seeds0, user0);
        for l in 0..self.model.num_layers() {
            self.round_rescale(l);
            self.round_process(l);
        }
        self.round_finish()
    }

    /// Opens a round: picks the execution plan, seeds the scratch pool, and
    /// derives the covered-edge set and per-vertex net degree changes.
    fn round_start(
        &mut self,
        directed: Vec<(VertexId, VertexId, EdgeOp)>,
        seeds0: Vec<(VertexId, Vec<f32>)>,
        user0: Vec<UserEvent>,
    ) {
        assert!(self.round.is_none(), "a round is already in flight");
        let t0 = Instant::now();
        let k = self.model.num_layers();
        let cfg = self.config;

        // Adaptive dispatch: pick this round's execution plan from the cost
        // model. Every arm is bitwise-identical — worker/shard counts and the
        // batched paths never change results — so the choice only trades
        // wall-clock. Tiny rounds short-circuit to the sequential plan inside
        // `choose` and never pay fan-out or panel packing.
        let round_work = directed.len() + seeds0.len();
        let arm = if cfg.adaptive {
            Some(self.cost.choose(round_work, cfg.adaptive_min_work, cfg.adaptive_probes))
        } else {
            None
        };
        // The Sequential arm opts out of fan-out only: one worker, one
        // shard, no rayon. It keeps the configured batched transform and
        // apply paths (with their thresholds) because those win or tie at
        // every round size — forcing them off would make the arm lose to a
        // plain `sequential()` engine on the tiny rounds it exists to win.
        // The Batched arm instead forces both batched paths on, thresholds
        // notwithstanding, so the dispatcher can compare packing against
        // the threshold-gated default.
        let (nw, ns, par_enabled, batched_tf, batched_ap) = match arm {
            Some(DispatchArm::Sequential) => {
                (1, 1, false, cfg.batched_transform, cfg.batched_apply)
            }
            Some(DispatchArm::Batched) => (1, 1, false, true, true),
            Some(DispatchArm::Parallel) | None => (
                cfg.worker_count(),
                cfg.shard_count(),
                cfg.parallel,
                cfg.batched_transform,
                cfg.batched_apply,
            ),
        };

        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.begin_round(k, nw, ns);
        // The pool only ever grows (see `begin_round`), so after an adaptive
        // arm switch there may be more pooled workers/shards than this
        // round's `nw`/`ns`. Every phase below iterates only the first
        // `nw` workers and `ns` shards — a sequential round must not pay
        // per-shard walks over pool capacity left behind by a parallel one.
        for l in 0..k {
            scratch.old.reset_layer(l, self.model.msg_dim(l));
        }
        for (v, old) in &seeds0 {
            scratch.old.insert(0, *v, old);
            scratch.affected.insert(*v);
        }
        scratch.pending_user[0].extend(user0);

        // Edges covered by ΔG insert events (the duplicate-event rule) and
        // the net in-degree change per vertex (degree-scaled layers must
        // rescale the cached messages of these vertices).
        for &(s, t, op) in &directed {
            if op == EdgeOp::Insert {
                scratch.covered.insert((s, t));
            }
            *scratch.degree_net.entry(t).or_insert(0) += if op == EdgeOp::Insert { 1 } else { -1 };
        }
        scratch.degree_order.extend(scratch.degree_net.iter().map(|(&v, &net)| (v, net)));
        scratch.degree_order.sort_unstable();

        self.round = Some(RoundState {
            directed,
            scratch,
            report: UpdateReport::default(),
            t0,
            nw,
            ns,
            par_enabled,
            batched_tf,
            batched_ap,
            arm,
            round_work,
            f32_read: 0,
            f32_written: 0,
            rescale_elapsed: std::time::Duration::ZERO,
        });
    }

    /// Opens a round from a delta plus feature updates — the entry point for
    /// partitioned drivers that step the round layer by layer themselves
    /// ([`InkStream::round_rescale`], [`InkStream::round_process`] per layer,
    /// then [`InkStream::round_finish`]). Applies the delta to the graph,
    /// writes the feature rows, and seeds propagation for *owned* vertices
    /// only. Returns the number of skipped no-op changes.
    ///
    /// # Errors
    ///
    /// A feature update for an unknown vertex or with the wrong width fails
    /// before any state is touched.
    pub fn round_begin(
        &mut self,
        delta: &DeltaBatch,
        feature_updates: &[(VertexId, Vec<f32>)],
    ) -> Result<usize, InkError> {
        assert!(self.round.is_none(), "a round is already in flight");
        for (v, feat) in feature_updates {
            if (*v as usize) >= self.graph.num_vertices() {
                return Err(InkError::UnknownVertex(*v));
            }
            if feat.len() != self.model.in_dim() {
                return Err(InkError::ShapeMismatch {
                    detail: format!("feature len {} != {}", feat.len(), self.model.in_dim()),
                });
            }
        }
        let (directed, skipped) = self.stage_delta(delta);
        let mut seeds = Vec::new();
        let mut user0 = Vec::new();
        for (v, feat) in feature_updates {
            self.stage_feature_update(*v, feat, &mut seeds, &mut user0)
                .expect("feature updates validated above");
        }
        self.round_start(directed, seeds, user0);
        if let Some(rs) = self.round.as_mut() {
            rs.report.skipped_changes = skipped;
        }
        Ok(skipped)
    }

    /// Degree-rescaling sub-step of layer `l` (a no-op for layers without
    /// degree-scaled messages). Must run before [`InkStream::round_process`]
    /// of the same layer; it is split out so a partitioned driver can
    /// exchange the rescaled boundary rows before event generation reads
    /// them. Only owned vertices are rescaled — ghosts receive the result
    /// via [`InkStream::round_ingest_refresh`].
    pub fn round_rescale(&mut self, l: usize) {
        let mut rs = self.round.take().expect("round_rescale requires an active round");
        let t_rescale = Instant::now();
        let cfg = self.config;
        let (nw, par_enabled) = (rs.nw, rs.par_enabled);
        let ns = rs.ns;
        let scratch = &mut rs.scratch;
        let degree_scaled = self.model.layer(l).conv.degree_scaled();
        let dim = self.model.msg_dim(l);
        // Workers begin here (not in `round_process`) so the rescale stage
        // can already stage rows into their arenas.
        for ws in &mut scratch.workers[..nw] {
            ws.begin(ns, dim);
        }

        if degree_scaled {
            // Degree-scaled layers (LightGCN-style): a vertex whose
            // degree changed has a changed message at this layer even if
            // nothing else touched it. Candidates iterate in sorted
            // vertex order so the recorded changes are deterministic.
            {
                let ScratchPool { rescale_list, degree_order, old, .. } = &mut *scratch;
                let owned = self.owned.as_deref();
                rescale_list.clear();
                rescale_list.extend(
                    degree_order
                        .iter()
                        .filter(|&&(v, net)| {
                            net != 0 && !old.contains(l, v) && owns_in(owned, v)
                        })
                        .copied(),
                );
            }
            let par = par_enabled && scratch.rescale_list.len() >= cfg.parallel_threshold;
            {
                let ScratchPool { workers, rescale_list, .. } = &mut *scratch;
                let workers = &mut workers[..nw];
                let rescale_list = &*rescale_list;
                let this = &*self;
                // Stage the new message (old scaled by the weight ratio,
                // or rebuilt from upstream state when the old degree was
                // 0 and the cached message is the zero convention).
                let run = |(w, ws): (usize, &mut WorkerScratch)| {
                    let conv = &this.model.layer(l).conv;
                    for &(v, net) in
                        &rescale_list[worker_chunk(rescale_list.len(), w, nw)]
                    {
                        let d_new = this.graph.in_degree(v);
                        let d_old = (d_new as i64 - net).max(0) as usize;
                        let pid = if d_old == 0 {
                            let base_h = if l == 0 {
                                this.features.row(v as usize).to_vec()
                            } else {
                                compute_next_hidden(
                                    &this.model,
                                    &this.state,
                                    this.hooks.as_deref(),
                                    &this.user_cache,
                                    l - 1,
                                    v,
                                    d_new,
                                )
                            };
                            let msg = conv.message(&base_h);
                            ws.arena.push_scaled(&msg, conv.degree_scale(d_new))
                        } else {
                            let ratio =
                                conv.degree_scale(d_new) / conv.degree_scale(d_old);
                            ws.arena.push_scaled(this.state.m[l].row(v as usize), ratio)
                        };
                        ws.rescaled.push((v, pid));
                    }
                };
                if par {
                    workers.par_iter_mut().enumerate().for_each(run);
                } else {
                    workers.iter_mut().enumerate().for_each(run);
                }
            }
            // Commit in worker order (= candidate order): vertices whose
            // message really changed record their old value and hooks.
            {
                let ScratchPool { workers, old, pending_user, .. } = &mut *scratch;
                for ws in workers[..nw].iter() {
                    for &(v, pid) in &ws.rescaled {
                        let new = ws.arena.get(pid);
                        if new != self.state.m[l].row(v as usize) {
                            old.insert(l, v, self.state.m[l].row(v as usize));
                            if let Some(hooks) = self.hooks.as_deref() {
                                pending_user[l].extend(hooks.user_propagate(
                                    l,
                                    v,
                                    old.get(l, v).expect("just inserted"),
                                    new,
                                ));
                            }
                            self.state.m[l].set_row(v as usize, new);
                        }
                    }
                }
            }
        }
        rs.rescale_elapsed = t_rescale.elapsed();
        self.round = Some(rs);
    }

    /// Exports the owned vertices whose layer-`l` message was recorded this
    /// round (changed by seeds, rescale, a ghost-independent refresh, or the
    /// previous layer's commit — plus unchanged-but-recorded rows when
    /// pruning is off), each with its *current* row, in ascending vertex
    /// order. A partitioned driver forwards the boundary subset to every
    /// mirror via [`InkStream::round_ingest_refresh`] between
    /// [`InkStream::round_rescale`] and [`InkStream::round_process`].
    pub fn round_changed_rows(&self, l: usize, out: &mut Vec<(VertexId, Vec<f32>)>) {
        let rs = self.round.as_ref().expect("round_changed_rows requires an active round");
        let mut keys = Vec::new();
        rs.scratch.old.keys_sorted_into(l, &mut keys);
        let owned = self.owned.as_deref();
        out.extend(keys.into_iter().filter(|&v| owns_in(owned, v)).map(|v| {
            (v, self.state.m[l].row(v as usize).to_vec())
        }));
    }

    /// Ingests a refreshed layer-`l` message row for a ghost vertex from its
    /// owning engine: records the current row as the round's "old" value (so
    /// this engine re-generates the same propagation events the owner's
    /// change implies for locally-owned targets) and commits the new row.
    /// Must run before [`InkStream::round_process`] of layer `l`.
    pub fn round_ingest_refresh(&mut self, l: usize, v: VertexId, new_row: &[f32]) {
        let mut rs = self.round.take().expect("round_ingest_refresh requires an active round");
        let changed = {
            let cur = self.state.m[l].row(v as usize);
            rs.scratch.old.insert(l, v, cur);
            new_row != cur
        };
        if changed {
            if let Some(hooks) = self.hooks.as_deref() {
                let old = rs.scratch.old.get(l, v).expect("just recorded");
                rs.scratch.pending_user[l].extend(hooks.user_propagate(l, v, old, new_row));
            }
            self.state.m[l].set_row(v as usize, new_row);
        }
        self.round = Some(rs);
    }

    /// Runs the five pipeline phases of layer `l` for the current round.
    /// [`InkStream::round_rescale`] for the same layer must have run first.
    /// With an ownership mask installed, events and commits are restricted
    /// to owned targets; ghost vertices only *source* events (from rows
    /// refreshed by their owner).
    pub fn round_process(&mut self, l: usize) {
        let mut rs = self.round.take().expect("round_process requires an active round");
        let k = self.model.num_layers();
        let cfg = self.config;
        let (nw, ns) = (rs.nw, rs.ns);
        let (par_enabled, batched_tf, batched_ap) = (rs.par_enabled, rs.batched_tf, rs.batched_ap);
        let rescale_elapsed = std::mem::take(&mut rs.rescale_elapsed);
        let mut f32_read: u64 = 0;
        let mut f32_written: u64 = 0;
        let scratch = &mut rs.scratch;
        let directed = &rs.directed;
        let report = &mut rs.report;
        {
            let agg = self.model.layer(l).conv.aggregator();
            let mono = agg.is_monotonic();
            let dim = self.model.msg_dim(l);
            let degree_scaled = self.model.layer(l).conv.degree_scaled();
            let self_dependent = self.model.layer(l).conv.self_dependent();
            let out_dim = self.model.layer(l).conv.out_dim();
            let is_last = l + 1 == k;
            let prod_dim = if is_last { out_dim } else { self.model.msg_dim(l + 1) };
            let mut layer_stats = LayerStats::default();

            // ── Phase 1: generate ─────────────────────────────────────────
            // ΔG seeding and effect propagation, fanned out over workers
            // (degree rescaling already ran in `round_rescale`). Each worker
            // owns a contiguous ordered chunk of the work lists and writes
            // into its private arena/buckets.
            let t_generate = Instant::now();

            // Changed messages propagate in sorted vertex order — the
            // canonical event order every worker/shard split reproduces.
            {
                let ScratchPool { old, changed_order, .. } = &mut *scratch;
                old.keys_sorted_into(l, changed_order);
            }

            let gen_work = directed.len() + scratch.changed_order.len();
            let par_generate = par_enabled && gen_work >= cfg.parallel_threshold;
            {
                let ScratchPool { workers, old, changed_order, covered, .. } = &mut *scratch;
                let workers = &mut workers[..nw];
                let old = &*old;
                let changed_order = &*changed_order;
                let covered = &*covered;
                let directed = &directed[..];
                let this = &*self;
                let run = |(w, ws): (usize, &mut WorkerScratch)| {
                    // ΔG events for this layer. Events targeting non-owned
                    // vertices are the owning engine's job — skip them.
                    for &(s, t, op) in &directed[worker_chunk(directed.len(), w, nw)] {
                        if !this.owns(t) {
                            continue;
                        }
                        match op {
                            EdgeOp::Remove => {
                                let old_row = old
                                    .get(l, s)
                                    .unwrap_or_else(|| this.state.m[l].row(s as usize));
                                let (ev_op, payload) = if mono {
                                    (EventOp::Del, ws.arena.push(old_row))
                                } else {
                                    (EventOp::Update, ws.arena.push_negated(old_row))
                                };
                                ws.dg[shard_of(t, ns)].push(Event {
                                    op: ev_op,
                                    target: t,
                                    payload,
                                    degree_delta: -1,
                                });
                            }
                            EdgeOp::Insert => {
                                let payload = ws.arena.push(this.state.m[l].row(s as usize));
                                let ev_op = if mono { EventOp::Add } else { EventOp::Update };
                                ws.dg[shard_of(t, ns)].push(Event {
                                    op: ev_op,
                                    target: t,
                                    payload,
                                    degree_delta: 1,
                                });
                            }
                        }
                    }
                    // Effect propagation from messages changed at this
                    // layer, skipping edges already covered by ΔG events.
                    for &v in &changed_order[worker_chunk(changed_order.len(), w, nw)] {
                        let old_row = old.get(l, v).expect("changed_order lists recorded rows");
                        let new = this.state.m[l].row(v as usize);
                        if mono {
                            let del_id = ws.arena.push(old_row);
                            let add_id = ws.arena.push(new);
                            for &x in this.graph.out_neighbors(v) {
                                if covered.contains(&(v, x)) || !this.owns(x) {
                                    continue;
                                }
                                let sh = shard_of(x, ns);
                                ws.fx[sh].push(Event {
                                    op: EventOp::Del,
                                    target: x,
                                    payload: del_id,
                                    degree_delta: 0,
                                });
                                ws.fx[sh].push(Event {
                                    op: EventOp::Add,
                                    target: x,
                                    payload: add_id,
                                    degree_delta: 0,
                                });
                            }
                        } else {
                            let diff_id = ws.arena.push_diff(new, old_row);
                            for &x in this.graph.out_neighbors(v) {
                                if covered.contains(&(v, x)) || !this.owns(x) {
                                    continue;
                                }
                                ws.fx[shard_of(x, ns)].push(Event {
                                    op: EventOp::Update,
                                    target: x,
                                    payload: diff_id,
                                    degree_delta: 0,
                                });
                            }
                        }
                    }
                };
                if par_generate {
                    workers.par_iter_mut().enumerate().for_each(run);
                } else {
                    workers.iter_mut().enumerate().for_each(run);
                }
            }
            layer_stats.events_created =
                scratch.workers[..nw].iter().map(WorkerScratch::events_emitted).sum();
            f32_written +=
                scratch.workers[..nw].iter().map(|ws| ws.arena.len() * dim).sum::<usize>() as u64;
            layer_stats.phases.generate = t_generate.elapsed() + rescale_elapsed;

            // ── Phase 2: group ────────────────────────────────────────────
            // Each shard reduces its buckets phase-major then worker-major —
            // exactly the sequential emission order restricted to the shard.
            let t_group = Instant::now();
            let par_group = par_enabled && layer_stats.events_created >= cfg.parallel_threshold;
            {
                let ScratchPool { workers, shards, .. } = &mut *scratch;
                let workers = &workers[..nw];
                let shards = &mut shards[..ns];
                let run = |(s, shard): (usize, &mut ShardScratch)| {
                    shard.begin();
                    for ws in workers {
                        shard.reduce_bucket(&ws.dg[s], &ws.arena, agg, dim, cfg.compensated);
                    }
                    for ws in workers {
                        shard.reduce_bucket(&ws.fx[s], &ws.arena, agg, dim, cfg.compensated);
                    }
                    if cfg.compensated && !mono {
                        shard.fold_compensation();
                    }
                };
                if par_group {
                    shards.par_iter_mut().enumerate().for_each(run);
                } else {
                    shards.iter_mut().enumerate().for_each(run);
                }
            }
            let total_targets: usize = scratch.shards[..ns].iter().map(|s| s.entries.len()).sum();
            layer_stats.targets = total_targets;
            f32_read += scratch.shards[..ns].iter().map(|s| s.payload_reads).sum::<usize>() as u64;
            layer_stats.phases.group = t_group.elapsed();

            // ── Phase 3: apply ────────────────────────────────────────────
            // Per-target incremental update / recomputation, α written into
            // each shard's flat output buffer. Two passes per shard: pass 1
            // classifies every entry and applies the cheap incremental
            // updates in place; entries that need a full neighborhood
            // recomputation are deferred, grouped by event kind × degree
            // class, gathered into contiguous panels and folded with the
            // batched reduction kernels in pass 2.
            let t_apply = Instant::now();
            let par_apply = par_enabled && total_targets >= cfg.parallel_threshold;
            {
                let this = &*self;
                let ScratchPool { shards, .. } = &mut *scratch;
                let shards = &mut shards[..ns];
                let run = |(_, shard): (usize, &mut ShardScratch)| {
                    let ApplyParts {
                        entries,
                        buf,
                        alpha_buf,
                        outcomes,
                        recompute,
                        apply_comp,
                        gemm,
                        batched_apply_rows,
                    } = shard.apply_parts();
                    alpha_buf.resize(entries.len() * dim, 0.0);
                    // Pass 1: classify and update incrementally.
                    for (i, e) in entries.iter().enumerate() {
                        let out = &mut alpha_buf[i * dim..(i + 1) * dim];
                        let u = e.target;
                        let alpha_old = this.state.alpha[l].row(u as usize);
                        let mut reads = dim as u64;
                        let mut deferred = None;
                        let cond = if !cfg.incremental {
                            deferred = Some(RecomputeKind::Forced);
                            CondKind::Forced
                        } else if mono {
                            // A target whose *old* neighborhood was empty has
                            // α⁻ = 0 by convention, not as a real aggregate:
                            // the incremental rules don't apply there.
                            let old_deg = this.graph.in_degree(u) as i64 - e.degree_delta as i64;
                            if old_deg <= 0 {
                                deferred = Some(RecomputeKind::EmptyOld);
                                CondKind::Mono(Condition::ExposedReset)
                            } else {
                                match apply_monotonic_into(
                                    agg,
                                    alpha_old,
                                    slot_in(buf, e.del, dim),
                                    slot_in(buf, e.add, dim),
                                    out,
                                ) {
                                    Some(condition) => CondKind::Mono(condition),
                                    None => {
                                        deferred = Some(RecomputeKind::Exposed);
                                        CondKind::Mono(Condition::ExposedReset)
                                    }
                                }
                            }
                        } else {
                            let sum =
                                slot_in(buf, e.add, dim).expect("acc group always has a sum");
                            apply_accumulative_into(
                                agg,
                                alpha_old,
                                sum,
                                this.graph.in_degree(u),
                                e.degree_delta,
                                cfg.compensated,
                                out,
                            );
                            CondKind::Acc
                        };
                        if let Some(kind) = deferred {
                            recompute
                                .push((recompute_sort_key(kind, this.graph.in_degree(u)), i as u32));
                            reads += (this.graph.in_degree(u) * dim) as u64;
                        }
                        // `changed` of deferred entries is backfilled once
                        // their α is actually recomputed below.
                        let changed = deferred.is_none() && &*out != alpha_old;
                        outcomes.push(ApplyOutcome { cond, reads, changed });
                    }
                    if recompute.is_empty() {
                        return;
                    }
                    // Pass 2: full recomputations. Each equal-key run gathers
                    // its targets' neighbor rows (in neighbor order) into one
                    // contiguous panel from the shard's buffer pool and folds
                    // it with the batched kernels — bitwise identical to the
                    // scalar loop because every target's rows still fold in
                    // the same order with the same kernels.
                    if batched_ap && dim > 0 && recompute.len() >= cfg.apply_batch_threshold.max(1)
                    {
                        recompute.sort_unstable();
                        let mut g = 0;
                        while g < recompute.len() {
                            let key = recompute[g].0;
                            let mut end = g;
                            let mut rows = 0usize;
                            while end < recompute.len() && recompute[end].0 == key {
                                rows +=
                                    this.graph.in_degree(entries[recompute[end].1 as usize].target);
                                end += 1;
                            }
                            let mut panel = gemm.take(rows * dim);
                            let mut off = 0usize;
                            for &(_, idx) in &recompute[g..end] {
                                let u = entries[idx as usize].target;
                                let deg = this.graph.in_degree(u);
                                gather_rows_into(
                                    &this.state.m[l],
                                    this.graph.in_neighbors(u).iter().map(|&v| v as usize),
                                    &mut panel[off * dim..(off + deg) * dim],
                                );
                                off += deg;
                            }
                            let mut off = 0usize;
                            for &(_, idx) in &recompute[g..end] {
                                let i = idx as usize;
                                let deg = this.graph.in_degree(entries[i].target);
                                agg.aggregate_rows_into(
                                    &panel[off * dim..(off + deg) * dim],
                                    &mut alpha_buf[i * dim..(i + 1) * dim],
                                    apply_comp,
                                );
                                off += deg;
                            }
                            gemm.put(panel);
                            *batched_apply_rows += rows;
                            g = end;
                        }
                    } else {
                        for &(_, idx) in recompute.iter() {
                            let i = idx as usize;
                            let u = entries[i].target;
                            agg.aggregate_into(
                                this.graph
                                    .in_neighbors(u)
                                    .iter()
                                    .map(|&v| this.state.m[l].row(v as usize)),
                                &mut alpha_buf[i * dim..(i + 1) * dim],
                            );
                        }
                    }
                    for &(_, idx) in recompute.iter() {
                        let i = idx as usize;
                        let u = entries[i].target;
                        outcomes[i].changed = alpha_buf[i * dim..(i + 1) * dim]
                            != *this.state.alpha[l].row(u as usize);
                    }
                };
                if par_apply {
                    shards.par_iter_mut().enumerate().for_each(run);
                } else {
                    shards.iter_mut().enumerate().for_each(run);
                }
            }
            layer_stats.batched_apply_rows =
                scratch.shards[..ns].iter().map(|s| s.batched_apply_rows).sum();
            layer_stats.phases.apply = t_apply.elapsed();

            // ── Phase 4: write ────────────────────────────────────────────
            // Sequential commit: changed α rows, condition stats, user
            // events, and the merged + sorted next-layer target list.
            let t_write = Instant::now();
            {
                let ScratchPool { shards, affected, next_targets, .. } = &mut *scratch;
                next_targets.clear();
                for shard in shards[..ns].iter() {
                    for (i, (e, o)) in shard.entries.iter().zip(&shard.outcomes).enumerate() {
                        f32_read += o.reads;
                        match o.cond {
                            CondKind::Mono(c) => {
                                layer_stats.conditions.record(c);
                                report
                                    .per_node_condition
                                    .entry(e.target)
                                    .and_modify(|worst| {
                                        if c.severity() > worst.severity() {
                                            *worst = c;
                                        }
                                    })
                                    .or_insert(c);
                            }
                            CondKind::Acc => layer_stats.conditions.accumulative += 1,
                            CondKind::Forced => {
                                layer_stats.conditions.forced_recompute += 1;
                                report
                                    .per_node_condition
                                    .insert(e.target, Condition::ExposedReset);
                            }
                        }
                        // Accumulative targets always propagate (Algorithm 1
                        // l.18-21).
                        let propagates = matches!(o.cond, CondKind::Acc) || o.changed;
                        if o.changed {
                            self.state.alpha[l].set_row(
                                e.target as usize,
                                &shard.alpha_buf[i * dim..(i + 1) * dim],
                            );
                            f32_written += dim as u64;
                            layer_stats.alpha_changed += 1;
                            affected.insert(e.target);
                        }
                        if propagates || !cfg.pruning {
                            next_targets.push(e.target);
                        }
                    }
                }
            }

            // User events targeting this layer's update phase. Events whose
            // target this engine does not own are dropped — the owning
            // engine derives the same events from its own copy of the
            // change (hooks must only target vertices they were fired for).
            let user_events = std::mem::take(&mut scratch.pending_user[l]);
            if !user_events.is_empty() {
                let owned = self.owned.as_deref();
                let hooks = self.hooks.as_deref().expect("user events require hooks");
                let cache =
                    self.user_cache[l].as_mut().expect("user events require a hooked layer");
                let mut by_target: FxHashMap<VertexId, Vec<UserEvent>> = FxHashMap::default();
                for e in user_events {
                    if !owns_in(owned, e.target) {
                        continue;
                    }
                    by_target.entry(e.target).or_default().push(e);
                }
                for (target, evs) in by_target {
                    let reduced = hooks.user_grouping(l, evs);
                    hooks.user_apply(l, target, cache.row_mut(target as usize), &reduced);
                    scratch.affected.insert(target);
                    scratch.next_targets.push(target);
                }
            }

            // Self-dependence: nodes whose own message changed re-enter —
            // owned ones only; a ghost's owner re-enters it on its side.
            if self_dependent {
                let owned = self.owned.as_deref();
                scratch.next_targets.extend(
                    scratch.changed_order.iter().copied().filter(|&v| owns_in(owned, v)),
                );
            }
            scratch.next_targets.sort_unstable();
            scratch.next_targets.dedup();
            layer_stats.targets = layer_stats.targets.max(scratch.next_targets.len());
            report.nodes_visited += scratch.next_targets.len() as u64;
            layer_stats.phases.write = t_write.elapsed();

            // ── Phase 5: next-messages ────────────────────────────────────
            // Rebuild next-layer messages / final outputs into the flat
            // production buffer — gather→GEMM→scatter when the target set is
            // big enough, per-node otherwise — then commit sequentially.
            let t_next = Instant::now();
            let nt = scratch.next_targets.len();
            let par_next = par_enabled && nt >= cfg.parallel_threshold;
            let batched = batched_tf
                && nt >= cfg.batch_threshold.max(1)
                && dim > 0
                && out_dim > 0
                && prod_dim > 0;
            if batched {
                layer_stats.batched_rows = nt;
                let ScratchPool {
                    next_targets, next_buf, gather_alpha, gather_self, hidden_buf, gemm, ..
                } = &mut *scratch;
                next_buf.clear();
                next_buf.resize(nt * prod_dim, 0.0);
                let next_targets = &*next_targets;
                let this = &*self;
                let layer = this.model.layer(l);
                let conv = &layer.conv;
                // Gather the targets' α rows into a contiguous strip, folding
                // in the target-side degree weight of scaled layers (the same
                // `a[j] * s` the per-node path computes before its update).
                gather_alpha.clear();
                gather_alpha.resize(nt * dim, 0.0);
                if degree_scaled {
                    gather_rows_scaled_into(
                        &this.state.alpha[l],
                        next_targets
                            .iter()
                            .map(|&u| (u as usize, conv.update_scale(this.graph.in_degree(u)))),
                        gather_alpha,
                    );
                } else {
                    gather_rows_into(
                        &this.state.alpha[l],
                        next_targets.iter().map(|&u| u as usize),
                        gather_alpha,
                    );
                }
                let self_msg: &[f32] = if self_dependent {
                    gather_self.clear();
                    gather_self.resize(nt * dim, 0.0);
                    gather_rows_into(
                        &this.state.m[l],
                        next_targets.iter().map(|&u| u as usize),
                        gather_self,
                    );
                    gather_self
                } else {
                    &[]
                };
                // One batched update GEMM for the whole target set. The last
                // layer writes straight into the production buffer
                // (`prod_dim == out_dim` there).
                let h_rows: &mut [f32] = if is_last {
                    next_buf.as_mut_slice()
                } else {
                    hidden_buf.clear();
                    hidden_buf.resize(nt * out_dim, 0.0);
                    hidden_buf.as_mut_slice()
                };
                report.gemm_flops +=
                    conv.update_batch_into(nt, gather_alpha, self_msg, h_rows, gemm);
                // Per-row epilogue: user contribution, norm, activation.
                {
                    let hooks = this.hooks.as_deref();
                    let cache = this.user_cache.get(l).and_then(Option::as_ref);
                    let run = |(i, row): (usize, &mut [f32])| {
                        let u = next_targets[i];
                        if let (Some(hk), Some(c)) = (hooks, cache) {
                            hk.contribute(l, u, row, c.row(u as usize));
                        }
                        if let Some(norm) = &layer.norm {
                            norm.apply_cached(row);
                        }
                        layer.act.apply(row);
                    };
                    if par_next {
                        h_rows.par_chunks_mut(out_dim).enumerate().for_each(run);
                    } else {
                        h_rows.chunks_mut(out_dim).enumerate().for_each(run);
                    }
                }
                if !is_last {
                    // One batched message GEMM into the production buffer,
                    // then the source-side degree weight per row.
                    let next_conv = &this.model.layer(l + 1).conv;
                    report.gemm_flops +=
                        next_conv.message_batch_into(nt, hidden_buf, next_buf, gemm);
                    if next_conv.degree_scaled() {
                        let run = |(i, row): (usize, &mut [f32])| {
                            let s = next_conv.degree_scale(this.graph.in_degree(next_targets[i]));
                            ink_tensor::ops::scale(row, s);
                        };
                        if par_next {
                            next_buf.par_chunks_mut(prod_dim).enumerate().for_each(run);
                        } else {
                            next_buf.chunks_mut(prod_dim).enumerate().for_each(run);
                        }
                    }
                }
            } else {
                let ScratchPool { next_targets, next_buf, .. } = &mut *scratch;
                next_buf.clear();
                next_buf.resize(nt * prod_dim, 0.0);
                let next_targets = &*next_targets;
                let this = &*self;
                let run = |(i, chunk): (usize, &mut [f32])| {
                    let u = next_targets[i];
                    let h_new = compute_next_hidden(
                        &this.model,
                        &this.state,
                        this.hooks.as_deref(),
                        &this.user_cache,
                        l,
                        u,
                        this.graph.in_degree(u),
                    );
                    if is_last {
                        chunk.copy_from_slice(&h_new);
                    } else {
                        let next_conv = &this.model.layer(l + 1).conv;
                        let mut msg = next_conv.message(&h_new);
                        if next_conv.degree_scaled() {
                            ink_tensor::ops::scale(
                                &mut msg,
                                next_conv.degree_scale(this.graph.in_degree(u)),
                            );
                        }
                        chunk.copy_from_slice(&msg);
                    }
                };
                if par_next {
                    next_buf.par_chunks_mut(prod_dim.max(1)).enumerate().for_each(run);
                } else {
                    next_buf.chunks_mut(prod_dim.max(1)).enumerate().for_each(run);
                }
            }
            f32_read += (nt * 2 * dim) as u64;
            f32_written += (nt * out_dim) as u64;

            {
                let ScratchPool { next_targets, next_buf, old, pending_user, .. } = &mut *scratch;
                for (&u, chunk) in next_targets.iter().zip(next_buf.chunks(prod_dim.max(1))) {
                    if is_last {
                        if chunk != self.state.h.row(u as usize) {
                            self.state.h.set_row(u as usize, chunk);
                            report.output_changed += 1;
                        }
                    } else {
                        let changed = chunk != self.state.m[l + 1].row(u as usize);
                        if changed || !cfg.pruning {
                            old.insert(l + 1, u, self.state.m[l + 1].row(u as usize));
                            if changed {
                                if let Some(hooks) = self.hooks.as_deref() {
                                    pending_user[l + 1].extend(hooks.user_propagate(
                                        l + 1,
                                        u,
                                        old.get(l + 1, u).expect("just inserted"),
                                        chunk,
                                    ));
                                }
                                self.state.m[l + 1].set_row(u as usize, chunk);
                            }
                        }
                    }
                }
            }
            layer_stats.phases.next_messages = t_next.elapsed();

            report.per_layer.push(layer_stats);
        }
        rs.f32_read += f32_read;
        rs.f32_written += f32_written;
        self.round = Some(rs);
    }

    /// Closes the round: folds the totals into the report, feeds the
    /// adaptive cost model, and returns the scratch pool to the engine.
    pub fn round_finish(&mut self) -> UpdateReport {
        let mut rs = self.round.take().expect("round_finish requires an active round");
        let mut report = std::mem::take(&mut rs.report);
        report.real_affected = rs.scratch.affected.len() as u64;
        report.f32_read = rs.f32_read;
        report.f32_written = rs.f32_written;
        report.elapsed = rs.t0.elapsed();
        if let Some(arm) = rs.arm {
            self.cost.observe(arm, rs.round_work, report.elapsed.as_nanos() as u64);
            report.dispatch = Some(arm);
        }
        self.scratch = rs.scratch;
        report
    }

    /// Abandons an in-flight round without folding a report, reclaiming the
    /// scratch pool when possible. Used by the partitioned driver to restore
    /// the "no active round" invariant after a sibling worker panicked
    /// mid-step — the cached state is then stale and must be rebuilt with
    /// [`InkStream::adopt_state`] (or a full resync) before the next update.
    /// No-op when no round is active (e.g. on the engine that panicked, whose
    /// round state was consumed by the unwind).
    pub fn round_abort(&mut self) {
        if let Some(rs) = self.round.take() {
            self.scratch = rs.scratch;
        }
    }

    /// Whether a BSP round is currently in flight.
    #[inline]
    pub fn round_active(&self) -> bool {
        self.round.is_some()
    }

    /// Installs (or clears, with `None`) the ownership mask for partitioned
    /// operation. With a mask, this engine updates α/h rows and generates
    /// events only for vertices marked `true`; everything else is a ghost
    /// whose messages are kept fresh by its owner through
    /// [`InkStream::round_ingest_refresh`]. The mask must have one entry per
    /// vertex. Not allowed mid-round.
    pub fn set_ownership(&mut self, owned: Option<Vec<bool>>) {
        assert!(self.round.is_none(), "cannot change ownership mid-round");
        if let Some(o) = &owned {
            assert_eq!(o.len(), self.graph.num_vertices(), "one ownership flag per vertex");
        }
        self.owned = owned;
    }

    /// Appends one ownership flag after a vertex insertion
    /// ([`InkStream::add_vertex`]). No-op when no mask is installed.
    pub fn push_ownership(&mut self, owns: bool) {
        if let Some(o) = self.owned.as_mut() {
            o.push(owns);
            assert_eq!(o.len(), self.graph.num_vertices(), "one ownership flag per vertex");
        }
    }

    /// Whether this engine owns `v` (always true without an ownership mask).
    #[inline]
    pub fn owns(&self, v: VertexId) -> bool {
        owns_in(self.owned.as_deref(), v)
    }

    /// Overwrites one cached layer-`l` message row *without* recording a
    /// change — the replica-seeding path: when a cut edge makes a vertex
    /// newly visible to this engine as a ghost, the partitioned driver
    /// copies the owner's current rows in before the round begins. Outside
    /// a round only.
    pub fn set_message_row(&mut self, l: usize, v: VertexId, row: &[f32]) {
        assert!(self.round.is_none(), "cannot seed replica rows mid-round");
        self.state.m[l].set_row(v as usize, row);
    }

    /// Replaces all cached state with `state` (shape-checked against the
    /// current graph and model) and rebuilds the user caches from its
    /// messages. This is the partitioned resync path: one engine bootstraps
    /// the *global* graph and every partition adopts a clone, so ghosts and
    /// owned rows alike come out bitwise-identical to full recomputation —
    /// a per-partition [`InkStream::resync`] would wrongly bootstrap the
    /// local subgraph instead.
    pub fn adopt_state(&mut self, state: FullState) -> Result<(), InkError> {
        assert!(self.round.is_none(), "cannot adopt state mid-round");
        let n = self.graph.num_vertices();
        let k = self.model.num_layers();
        if state.m.len() != k || state.alpha.len() != k {
            return Err(InkError::ShapeMismatch {
                detail: format!("state has {} layers, model has {k}", state.m.len()),
            });
        }
        for l in 0..k {
            let want = (n, self.model.msg_dim(l));
            if state.m[l].shape() != want || state.alpha[l].shape() != want {
                return Err(InkError::ShapeMismatch {
                    detail: format!(
                        "layer {l}: m {:?} / alpha {:?}, expected {want:?}",
                        state.m[l].shape(),
                        state.alpha[l].shape()
                    ),
                });
            }
        }
        if state.h.shape() != (n, self.model.out_dim()) {
            return Err(InkError::ShapeMismatch {
                detail: format!(
                    "output {:?}, expected ({n}, {})",
                    state.h.shape(),
                    self.model.out_dim()
                ),
            });
        }
        self.user_cache = (0..k)
            .map(|l| self.hooks.as_deref().and_then(|h| h.init_cache(l, &state.m[l])))
            .collect();
        self.state = state;
        Ok(())
    }
}

/// Shared ownership predicate: no mask means the engine owns everything;
/// with a mask, out-of-range vertices are not owned (the driver keeps the
/// mask sized to the graph).
#[inline]
fn owns_in(owned: Option<&[bool]>, v: VertexId) -> bool {
    owned.is_none_or(|o| o.get(v as usize).copied().unwrap_or(false))
}

/// `h_{l+1,u} = act(norm(T(α_{l,u}, m_{l,u}) + user_contribution))` for one
/// node, from the *current* cached state. `degree` feeds the target-side
/// weight of degree-scaled layers.
fn compute_next_hidden(
    model: &Model,
    state: &FullState,
    hooks: Option<&dyn UserHooks>,
    user_cache: &[Option<Matrix>],
    l: usize,
    u: VertexId,
    degree: usize,
) -> Vec<f32> {
    let layer = model.layer(l);
    let mut out = vec![0.0; layer.conv.out_dim()];
    if layer.conv.degree_scaled() {
        let mut a = state.alpha[l].row(u as usize).to_vec();
        ink_tensor::ops::scale(&mut a, layer.conv.update_scale(degree));
        layer.conv.update_into(&a, state.m[l].row(u as usize), &mut out);
    } else {
        layer.conv.update_into(
            state.alpha[l].row(u as usize),
            state.m[l].row(u as usize),
            &mut out,
        );
    }
    if let (Some(hk), Some(cache)) = (hooks, user_cache.get(l).and_then(Option::as_ref)) {
        hk.contribute(l, u, &mut out, cache.row(u as usize));
    }
    if let Some(norm) = &layer.norm {
        norm.apply_cached(&mut out);
    }
    layer.act.apply(&mut out);
    out
}

/// Full-graph bootstrap into caller-owned state, one batched GEMM chain per
/// layer. Also initialises the user caches — and therefore supports
/// hook-based models, which `ink_gnn::full_inference` knows nothing about
/// (the hook contribution slots between the transform and the norm, so this
/// can't reuse `batch_update_into`, which fuses norm/act).
///
/// Every cached matrix is reshaped capacity-preserving and all temporaries
/// (inter-layer hidden buffers, GEMM packing, MLP ping-pong) come from
/// `scratch`, so repeated in-place rebuilds over same-shaped inputs allocate
/// nothing after the first — hook caches excepted, as `init_cache` returns
/// fresh matrices by contract.
fn bootstrap_into(
    model: &Model,
    graph: &DynGraph,
    features: &Matrix,
    hooks: Option<&dyn UserHooks>,
    state: &mut FullState,
    user_cache: &mut Vec<Option<Matrix>>,
    scratch: &mut GemmScratch,
) {
    let n = graph.num_vertices();
    let k = model.num_layers();
    state.m.resize_with(k, || Matrix::zeros(0, 0));
    state.alpha.resize_with(k, || Matrix::zeros(0, 0));
    state.norm_stats.clear();
    state.norm_stats.resize(k, None);
    user_cache.clear();
    user_cache.resize_with(k, || None);
    if k == 0 {
        state.h.resize_to(n, features.cols());
        state.h.as_mut_slice().copy_from_slice(features.as_slice());
        return;
    }
    let FullState { m, alpha, h, .. } = state;
    // `cur` carries h_l between layers; layer 0 reads the features directly.
    let mut cur = scratch.take(0);

    for l in 0..k {
        let layer = model.layer(l);
        let conv = &layer.conv;
        let out_dim = conv.out_dim();
        let dim = conv.msg_dim();
        let h_slice: &[f32] = if l == 0 { features.as_slice() } else { &cur };
        batch_message_into(model, l, h_slice, graph, &mut m[l], scratch);
        user_cache[l] = hooks.and_then(|hk| hk.init_cache(l, &m[l]));
        batch_aggregate_into(model, l, graph, &m[l], &mut alpha[l]);

        let mut nxt = scratch.take(n * out_dim);
        let self_msg: &[f32] = if conv.self_dependent() { m[l].as_slice() } else { &[] };
        if conv.degree_scaled() {
            // Fold the target-side degree weight into a scaled copy of α —
            // the same `a[j] * s` the per-node path computes.
            let mut scaled = scratch.take(n * dim);
            gather_rows_scaled_into(
                &alpha[l],
                (0..n).map(|u| (u, conv.update_scale(graph.in_degree(u as VertexId)))),
                &mut scaled,
            );
            conv.update_batch_into(n, &scaled, self_msg, &mut nxt, scratch);
            scratch.put(scaled);
        } else {
            conv.update_batch_into(n, alpha[l].as_slice(), self_msg, &mut nxt, scratch);
        }
        let cache = user_cache[l].as_ref();
        nxt.par_chunks_mut(out_dim.max(1)).enumerate().for_each(|(u, out)| {
            if let (Some(hk), Some(c)) = (hooks, cache) {
                hk.contribute(l, u as VertexId, out, c.row(u));
            }
            if let Some(norm) = &layer.norm {
                norm.apply_cached(out);
            }
            layer.act.apply(out);
        });
        if l + 1 == k {
            h.resize_to(n, out_dim);
            h.as_mut_slice().copy_from_slice(&nxt);
            scratch.put(nxt);
        } else {
            scratch.put(std::mem::replace(&mut cur, nxt));
        }
    }
    scratch.put(cur);
}

/// Allocating [`bootstrap_into`] wrapper — the construction-time path, where
/// there is no state to reuse yet.
fn bootstrap(
    model: &Model,
    graph: &DynGraph,
    features: &Matrix,
    hooks: Option<&dyn UserHooks>,
) -> (FullState, Vec<Option<Matrix>>) {
    let mut state = FullState::empty();
    let mut user_cache = Vec::new();
    bootstrap_into(
        model,
        graph,
        features,
        hooks,
        &mut state,
        &mut user_cache,
        &mut GemmScratch::new(),
    );
    (state, user_cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ink_gnn::{full_inference, Aggregator};
    use ink_tensor::init::seeded_rng;

    fn ring(n: usize) -> DynGraph {
        let edges: Vec<_> =
            (0..n).map(|i| (i as VertexId, ((i + 1) % n) as VertexId)).collect();
        DynGraph::undirected_from_edges(n, &edges)
    }

    fn feats(n: usize, d: usize) -> Matrix {
        Matrix::from_fn(n, d, |r, c| ((r * 17 + c * 5) % 11) as f32 * 0.25 - 1.0)
    }

    #[test]
    fn bootstrap_matches_reference_inference() {
        let mut rng = seeded_rng(1);
        let model = Model::gcn(&mut rng, &[4, 5, 3], Aggregator::Max);
        let g = ring(10);
        let x = feats(10, 4);
        let reference = full_inference(&model, &g, &x, None);
        let engine = InkStream::new(model, g, x, UpdateConfig::default()).unwrap();
        assert_eq!(engine.output(), &reference.h);
        assert_eq!(engine.state().alpha[0], reference.alpha[0]);
        assert_eq!(engine.state().m[1], reference.m[1]);
    }

    #[test]
    fn single_insert_matches_full_recompute_bitwise_for_max() {
        let mut rng = seeded_rng(2);
        let model = Model::gcn(&mut rng, &[4, 5, 3], Aggregator::Max);
        let g = ring(12);
        let x = feats(12, 4);
        let mut engine = InkStream::new(model, g, x, UpdateConfig::default()).unwrap();
        let delta = DeltaBatch::new(vec![EdgeChange::insert(0, 6)]);
        let report = engine.apply_delta(&delta);
        assert_eq!(report.skipped_changes, 0);
        let reference = engine.recompute_reference();
        assert_eq!(engine.output(), &reference, "monotonic path must be bitwise identical");
    }

    #[test]
    fn single_remove_matches_full_recompute_bitwise_for_max() {
        let mut rng = seeded_rng(3);
        let model = Model::gcn(&mut rng, &[4, 5, 3], Aggregator::Max);
        let g = ring(12);
        let x = feats(12, 4);
        let mut engine = InkStream::new(model, g, x, UpdateConfig::default()).unwrap();
        engine.apply_delta(&DeltaBatch::new(vec![EdgeChange::remove(3, 4)]));
        assert_eq!(engine.output(), &engine.recompute_reference());
    }

    #[test]
    fn accumulative_updates_track_reference_within_tolerance() {
        for agg in [Aggregator::Sum, Aggregator::Mean] {
            let mut rng = seeded_rng(4);
            let model = Model::gcn(&mut rng, &[4, 5, 3], agg);
            let g = ring(12);
            let x = feats(12, 4);
            let mut engine = InkStream::new(model, g, x, UpdateConfig::default()).unwrap();
            engine.apply_delta(&DeltaBatch::new(vec![
                EdgeChange::insert(0, 6),
                EdgeChange::remove(2, 3),
            ]));
            let reference = engine.recompute_reference();
            assert!(
                engine.output().allclose(&reference, 1e-4),
                "{agg:?}: max diff {}",
                engine.output().max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn duplicate_insert_is_skipped() {
        let mut rng = seeded_rng(5);
        let model = Model::gcn(&mut rng, &[4, 4], Aggregator::Max);
        let g = ring(8);
        let x = feats(8, 4);
        let mut engine = InkStream::new(model, g, x, UpdateConfig::default()).unwrap();
        let report = engine.apply_delta(&DeltaBatch::new(vec![EdgeChange::insert(0, 1)]));
        assert_eq!(report.skipped_changes, 1, "edge 0-1 already exists in the ring");
        assert_eq!(engine.output(), &engine.recompute_reference());
    }

    #[test]
    fn report_counts_events_and_conditions() {
        let mut rng = seeded_rng(6);
        let model = Model::gcn(&mut rng, &[4, 5, 3], Aggregator::Max);
        let g = ring(16);
        let x = feats(16, 4);
        let mut engine = InkStream::new(model, g, x, UpdateConfig::default()).unwrap();
        let report = engine.apply_delta(&DeltaBatch::new(vec![EdgeChange::insert(0, 8)]));
        assert!(report.events_created() > 0);
        assert!(report.conditions().total() > 0);
        assert!(report.traffic() > 0);
        assert_eq!(report.per_layer.len(), 2);
        assert!(report.phase_times().total() > std::time::Duration::ZERO);
    }

    #[test]
    fn worker_and_shard_counts_do_not_change_results() {
        for agg in [Aggregator::Max, Aggregator::Min, Aggregator::Sum, Aggregator::Mean] {
            let make = |cfg: UpdateConfig| {
                let mut rng = seeded_rng(7);
                let model = Model::gcn(&mut rng, &[4, 6, 3], agg);
                InkStream::new(model, ring(20), feats(20, 4), cfg).unwrap()
            };
            let delta = DeltaBatch::new(vec![
                EdgeChange::insert(0, 10),
                EdgeChange::insert(3, 17),
                EdgeChange::remove(5, 6),
                EdgeChange::insert(2, 8),
                EdgeChange::remove(12, 13),
            ]);
            let mut reference = make(UpdateConfig::default().sequential());
            reference.apply_delta(&delta);
            for (w, s) in [(1, 1), (2, 3), (4, 8), (3, 16)] {
                let mut engine = make(UpdateConfig {
                    num_workers: w,
                    num_shards: s,
                    parallel_threshold: 0,
                    ..UpdateConfig::default()
                });
                engine.apply_delta(&delta);
                assert_eq!(
                    engine.output(),
                    reference.output(),
                    "{agg:?} must be bitwise stable under {w} workers / {s} shards"
                );
                assert_eq!(engine.state().alpha[1], reference.state().alpha[1]);
            }
        }
    }

    #[test]
    fn audits_are_zero_on_a_clean_engine() {
        for agg in [Aggregator::Max, Aggregator::Min, Aggregator::Sum, Aggregator::Mean] {
            let mut rng = seeded_rng(9);
            let model = Model::gcn(&mut rng, &[4, 5, 3], agg);
            let mut engine =
                InkStream::new(model, ring(12), feats(12, 4), UpdateConfig::default()).unwrap();
            // Fresh off the bootstrap, every audit is exactly zero.
            for v in 0..12u32 {
                assert_eq!(engine.audit_vertex(v), 0.0, "{agg:?}: vertex {v} after bootstrap");
            }
            engine.apply_delta(&DeltaBatch::new(vec![EdgeChange::insert(0, 6)]));
            for v in 0..12u32 {
                let d = engine.audit_vertex(v);
                if agg.is_monotonic() {
                    assert_eq!(d, 0.0, "{agg:?}: vertex {v} deviates by {d} after an update");
                } else {
                    // Accumulative updates drift — the audit's job is to
                    // measure it, and it must stay tiny and finite.
                    assert!(d.is_finite() && d < 1e-5, "{agg:?}: vertex {v} drift {d}");
                }
            }
            assert!(!engine.state_has_nan());
            if agg.is_monotonic() {
                assert_eq!(engine.audit_full(), 0.0, "{agg:?}");
            } else {
                let d = engine.audit_full();
                assert!(d.is_finite() && d < 1e-4, "{agg:?}: full audit drift {d}");
            }
        }
    }

    #[test]
    fn audit_detects_poisoned_state() {
        let mut rng = seeded_rng(10);
        let model = Model::gcn(&mut rng, &[4, 5, 3], Aggregator::Max);
        let mut engine =
            InkStream::new(model, ring(12), feats(12, 4), UpdateConfig::default()).unwrap();
        engine.state_mut().alpha[0].set(5, 1, f32::NAN);
        assert!(engine.state_has_nan());
        assert!(engine.audit_vertex(5).is_nan(), "spot audit at the poisoned vertex");
        assert!(engine.audit_vertices(&[0, 5, 7]).is_nan(), "a NaN sample poisons the fold");
        assert!(engine.audit_full().is_nan(), "full audit must not report a finite drift");
        // A silent (finite) corruption is caught too.
        let mut engine2 = {
            let mut rng = seeded_rng(10);
            let model = Model::gcn(&mut rng, &[4, 5, 3], Aggregator::Max);
            InkStream::new(model, ring(12), feats(12, 4), UpdateConfig::default()).unwrap()
        };
        let old = engine2.state().alpha[0].row(5)[1];
        engine2.state_mut().alpha[0].set(5, 1, old + 0.5);
        assert!(engine2.audit_vertex(5) >= 0.5, "finite corruption shows as deviation");
    }

    #[test]
    fn resync_restores_reference_bitwise() {
        let mut rng = seeded_rng(11);
        let model = Model::gcn(&mut rng, &[4, 5, 3], Aggregator::Mean);
        let mut engine =
            InkStream::new(model, ring(12), feats(12, 4), UpdateConfig::default()).unwrap();
        engine.apply_delta(&DeltaBatch::new(vec![EdgeChange::insert(0, 6)]));
        engine.state_mut().alpha[1].set(3, 0, f32::NAN);
        engine.state_mut().h.set(3, 0, f32::NAN);
        let report = engine.resync();
        assert!(report.f32_written > 0);
        assert!(!engine.state_has_nan());
        assert_eq!(engine.output(), &engine.recompute_reference());
        assert_eq!(engine.audit_full(), 0.0, "resync leaves zero drift by construction");
    }

    #[test]
    fn compensated_engine_matches_plain_on_monotonic_bitwise() {
        let make = |cfg: UpdateConfig| {
            let mut rng = seeded_rng(12);
            let model = Model::gcn(&mut rng, &[4, 5, 3], Aggregator::Max);
            InkStream::new(model, ring(16), feats(16, 4), cfg).unwrap()
        };
        let delta = DeltaBatch::new(vec![EdgeChange::insert(0, 8), EdgeChange::remove(3, 4)]);
        let mut plain = make(UpdateConfig::default());
        let mut comp = make(UpdateConfig::default().compensated());
        plain.apply_delta(&delta);
        comp.apply_delta(&delta);
        assert_eq!(plain.output(), comp.output(), "compensation must not touch max/min");
    }

    #[test]
    fn compensated_engine_stays_within_tolerance_on_accumulative() {
        for agg in [Aggregator::Sum, Aggregator::Mean] {
            let mut rng = seeded_rng(13);
            let model = Model::gcn(&mut rng, &[4, 5, 3], agg);
            let mut engine =
                InkStream::new(model, ring(16), feats(16, 4), UpdateConfig::default().compensated())
                    .unwrap();
            for i in 0..8u32 {
                engine.apply_delta(&DeltaBatch::new(vec![EdgeChange::insert(i, i + 8)]));
                engine.apply_delta(&DeltaBatch::new(vec![EdgeChange::remove(i, i + 8)]));
            }
            let d = engine.audit_full();
            assert!(d.is_finite() && d < 1e-4, "{agg:?}: drift {d} after 16 rounds");
        }
    }

    #[test]
    fn batched_transform_is_bitwise_equal_to_per_node() {
        for agg in [Aggregator::Max, Aggregator::Min, Aggregator::Sum, Aggregator::Mean] {
            let make = |cfg: UpdateConfig| {
                let mut rng = seeded_rng(30);
                let model = Model::sage(&mut rng, &[4, 6, 3], agg);
                InkStream::new(model, ring(24), feats(24, 4), cfg).unwrap()
            };
            let delta = DeltaBatch::new(vec![
                EdgeChange::insert(0, 12),
                EdgeChange::insert(3, 19),
                EdgeChange::remove(5, 6),
                EdgeChange::insert(2, 8),
            ]);
            let mut per_node = make(UpdateConfig::default().per_node_transform());
            let mut batched =
                make(UpdateConfig { batch_threshold: 1, ..UpdateConfig::default() });
            let rp = per_node.apply_delta(&delta);
            let rb = batched.apply_delta(&delta);
            assert_eq!(batched.output(), per_node.output(), "{agg:?}");
            assert_eq!(batched.state().m[1], per_node.state().m[1], "{agg:?}");
            assert_eq!(rp.batched_rows(), 0, "{agg:?}: per-node engine must not batch");
            assert_eq!(rp.gemm_flops, 0, "{agg:?}");
            assert!(rb.batched_rows() > 0, "{agg:?}: batched path must engage");
            assert!(rb.gemm_flops > 0, "{agg:?}: SAGE updates run GEMMs");
        }
    }

    #[test]
    fn batched_apply_is_bitwise_equal_to_per_target() {
        for agg in [Aggregator::Max, Aggregator::Min, Aggregator::Sum, Aggregator::Mean] {
            // Default config exercises the exposed-reset recomputes of the
            // monotonic path; recompute_all forces every target (including
            // accumulative ones) through the recompute pass.
            for base in [UpdateConfig::default(), UpdateConfig::recompute_all()] {
                let make = |cfg: UpdateConfig| {
                    let mut rng = seeded_rng(41);
                    let model = Model::gcn(&mut rng, &[4, 6, 3], agg);
                    InkStream::new(model, ring(24), feats(24, 4), cfg).unwrap()
                };
                // Removals drive monotonic exposed resets; the insert into a
                // fresh target adds an empty-old recompute.
                let delta = DeltaBatch::new(vec![
                    EdgeChange::remove(0, 1),
                    EdgeChange::remove(5, 6),
                    EdgeChange::remove(12, 13),
                    EdgeChange::insert(2, 18),
                ]);
                let mut scalar = make(base.per_target_apply());
                let mut batched = make(UpdateConfig { apply_batch_threshold: 1, ..base });
                let mut sharded = make(UpdateConfig {
                    apply_batch_threshold: 1,
                    num_workers: 3,
                    num_shards: 8,
                    parallel_threshold: 0,
                    ..base
                });
                let rs = scalar.apply_delta(&delta);
                let rb = batched.apply_delta(&delta);
                let rp = sharded.apply_delta(&delta);
                assert_eq!(batched.output(), scalar.output(), "{agg:?} {base:?}");
                assert_eq!(sharded.output(), scalar.output(), "{agg:?} {base:?} sharded");
                assert_eq!(batched.state().alpha[1], scalar.state().alpha[1], "{agg:?}");
                assert_eq!(rs.batched_apply_rows(), 0, "{agg:?}: scalar engine must not batch");
                if !base.incremental {
                    assert!(
                        rb.batched_apply_rows() > 0 && rp.batched_apply_rows() > 0,
                        "{agg:?}: forced recomputes must take the panel path"
                    );
                }
            }
        }
    }

    #[test]
    fn adaptive_dispatch_is_bitwise_equal_and_exercises_every_arm() {
        for agg in [Aggregator::Max, Aggregator::Mean] {
            let make = |cfg: UpdateConfig| {
                let mut rng = seeded_rng(42);
                let model = Model::gcn(&mut rng, &[4, 6, 3], agg);
                InkStream::new(model, ring(32), feats(32, 4), cfg).unwrap()
            };
            let mut reference = make(UpdateConfig::default().sequential());
            let mut adaptive = make(UpdateConfig {
                adaptive_min_work: 0,
                adaptive_probes: 1,
                parallel_threshold: 0,
                num_workers: 2,
                num_shards: 4,
                ..UpdateConfig::default().adaptive()
            });
            let mut seen = std::collections::HashSet::new();
            for i in 0..8u32 {
                let delta = DeltaBatch::new(vec![
                    EdgeChange::insert(i, i + 16),
                    EdgeChange::remove(i + 8, i + 9),
                ]);
                reference.apply_delta(&delta);
                let r = adaptive.apply_delta(&delta);
                seen.insert(r.dispatch.expect("adaptive rounds must report their arm"));
                assert_eq!(
                    adaptive.output(),
                    reference.output(),
                    "{agg:?}: round {i} diverged under adaptive dispatch"
                );
            }
            assert_eq!(seen.len(), 3, "{agg:?}: probing must exercise every arm, saw {seen:?}");
        }
    }

    #[test]
    fn adaptive_min_work_short_circuits_small_rounds_to_sequential() {
        let mut rng = seeded_rng(43);
        let model = Model::gcn(&mut rng, &[4, 5, 3], Aggregator::Max);
        let mut engine = InkStream::new(
            model,
            ring(16),
            feats(16, 4),
            UpdateConfig::default().adaptive(),
        )
        .unwrap();
        // One undirected insert = two directed work items, far below the
        // default `adaptive_min_work`.
        for i in 0..4u32 {
            let r = engine.apply_delta(&DeltaBatch::new(vec![EdgeChange::insert(i, i + 8)]));
            assert_eq!(r.dispatch, Some(ink_gnn::cost::DispatchArm::Sequential));
        }
        assert_eq!(engine.output(), &engine.recompute_reference());
        // Non-adaptive engines never report a dispatch arm.
        let mut rng = seeded_rng(43);
        let model = Model::gcn(&mut rng, &[4, 5, 3], Aggregator::Max);
        let mut fixed =
            InkStream::new(model, ring(16), feats(16, 4), UpdateConfig::default()).unwrap();
        let r = fixed.apply_delta(&DeltaBatch::new(vec![EdgeChange::insert(0, 8)]));
        assert_eq!(r.dispatch, None);
    }

    #[test]
    fn repeated_resync_is_allocation_free_in_steady_state() {
        let mut rng = seeded_rng(31);
        let model = Model::gcn(&mut rng, &[4, 6, 3], Aggregator::Mean);
        let mut engine =
            InkStream::new(model, ring(32), feats(32, 4), UpdateConfig::default()).unwrap();
        engine.resync(); // warm the pooled temporaries
        let reserved = engine.state().reserved_bytes() + engine.scratch_bytes();
        assert!(reserved > 0);
        for _ in 0..4 {
            let r = engine.resync();
            assert!(r.f32_written > 0);
        }
        assert_eq!(
            engine.state().reserved_bytes() + engine.scratch_bytes(),
            reserved,
            "steady-state resyncs must reuse cached matrices and pooled temporaries"
        );
        assert_eq!(engine.output(), &engine.recompute_reference());
    }

    #[test]
    fn scratch_pool_stops_growing_after_warmup() {
        let mut rng = seeded_rng(8);
        let model = Model::gcn(&mut rng, &[4, 6, 3], Aggregator::Max);
        let mut engine =
            InkStream::new(model, ring(64), feats(64, 4), UpdateConfig::default()).unwrap();
        let insert = DeltaBatch::new(vec![EdgeChange::insert(0, 32), EdgeChange::insert(5, 40)]);
        let remove = DeltaBatch::new(vec![EdgeChange::remove(0, 32), EdgeChange::remove(5, 40)]);
        // Warm up: the first rounds grow the pool to the workload's size.
        for _ in 0..2 {
            engine.apply_delta(&insert);
            engine.apply_delta(&remove);
        }
        let warm = engine.scratch_bytes();
        assert!(warm > 0, "the pool must retain capacity between rounds");
        for _ in 0..4 {
            engine.apply_delta(&insert);
            engine.apply_delta(&remove);
        }
        assert_eq!(
            engine.scratch_bytes(),
            warm,
            "steady-state rounds must not allocate in the pooled phases"
        );
    }
}
