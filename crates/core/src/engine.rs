//! The InkStream engine — the paper's Algorithm 1.
//!
//! [`InkStream`] owns the model, the current graph, the features, and the
//! cached per-layer state (`m`, `α`, output `h`) from the previous
//! timestamp. Each update round processes layers in order:
//!
//! 1. seed events for ΔG (edge changes hit *every* layer's aggregation);
//! 2. merge effect-propagation events from the previous layer, skipping
//!    edges already covered by ΔG events (the duplicate-event rule);
//! 3. group + reduce events per target;
//! 4. apply: monotonic targets go through the evolvability check
//!    (no reset / covered reset / exposed reset → recompute), accumulative
//!    targets always update incrementally;
//! 5. rebuild next-layer messages for every node whose `α` changed — plus,
//!    for self-dependent models, every node whose own message changed — and
//!    emit events for the next layer unless pruned.
//!
//! Monotonic updates are bitwise identical to full recomputation; the
//! integration suite asserts that per aggregation function.

use crate::accumulative::apply_accumulative;
use crate::config::UpdateConfig;
use crate::error::InkError;
use crate::event::{Event, EventOp, PayloadArena};
use crate::grouping::{group_events, Group};
use crate::hooks::{UserEvent, UserHooks};
use crate::monotonic::{apply_monotonic, Condition, MonoOutcome};
use crate::stats::{LayerStats, UpdateReport};
use ink_graph::{DeltaBatch, DynGraph, EdgeChange, EdgeOp, FxHashMap, FxHashSet, VertexId};
use ink_gnn::full::{batch_aggregate, batch_message};
use ink_gnn::{FullState, Model};
use ink_tensor::Matrix;
use rayon::prelude::*;
use std::time::Instant;

/// Per-target outcome of the apply phase.
enum CondKind {
    Mono(Condition),
    Acc,
    Forced,
}

struct ApplyResult {
    target: VertexId,
    alpha_new: Vec<f32>,
    cond: CondKind,
    reads: u64,
    changed: bool,
}

/// The incremental GNN inference engine.
pub struct InkStream {
    model: Model,
    graph: DynGraph,
    features: Matrix,
    state: FullState,
    config: UpdateConfig,
    hooks: Option<Box<dyn UserHooks>>,
    user_cache: Vec<Option<Matrix>>,
}

impl InkStream {
    /// Bootstraps the engine with a full-graph inference (the paper's
    /// initial step) and takes ownership of graph and features.
    pub fn new(
        model: Model,
        graph: DynGraph,
        features: Matrix,
        config: UpdateConfig,
    ) -> Result<Self, InkError> {
        Self::with_hooks(model, graph, features, config, None)
    }

    /// Like [`InkStream::new`] with user-defined event hooks (paper §II-D).
    pub fn with_hooks(
        model: Model,
        graph: DynGraph,
        features: Matrix,
        config: UpdateConfig,
        hooks: Option<Box<dyn UserHooks>>,
    ) -> Result<Self, InkError> {
        if !model.supports_incremental() {
            return Err(InkError::ExactGraphNorm);
        }
        if features.cols() != model.in_dim() {
            return Err(InkError::ShapeMismatch {
                detail: format!(
                    "feature dim {} != model input dim {}",
                    features.cols(),
                    model.in_dim()
                ),
            });
        }
        if features.rows() != graph.num_vertices() {
            return Err(InkError::ShapeMismatch {
                detail: format!(
                    "{} feature rows for {} vertices",
                    features.rows(),
                    graph.num_vertices()
                ),
            });
        }
        let (state, user_cache) = bootstrap(&model, &graph, &features, hooks.as_deref());
        Ok(Self { model, graph, features, state, config, hooks, user_cache })
    }

    /// Reassembles an engine from previously cached state *without* a full
    /// inference — the checkpoint-resume path (see [`crate::checkpoint`]).
    /// Shapes are validated; user caches are rebuilt from the cached
    /// messages. The caller is responsible for the state actually matching
    /// the graph/features (checkpoints written by [`crate::checkpoint::save`]
    /// do by construction).
    pub fn from_parts(
        model: Model,
        graph: DynGraph,
        features: Matrix,
        state: FullState,
        config: UpdateConfig,
        hooks: Option<Box<dyn UserHooks>>,
    ) -> Result<Self, InkError> {
        if !model.supports_incremental() {
            return Err(InkError::ExactGraphNorm);
        }
        let n = graph.num_vertices();
        let k = model.num_layers();
        if features.shape() != (n, model.in_dim()) {
            return Err(InkError::ShapeMismatch {
                detail: format!("features {:?} for n={n}, in_dim={}", features.shape(), model.in_dim()),
            });
        }
        if state.m.len() != k || state.alpha.len() != k {
            return Err(InkError::ShapeMismatch {
                detail: format!("state has {} layers, model has {k}", state.m.len()),
            });
        }
        for l in 0..k {
            let want = (n, model.msg_dim(l));
            if state.m[l].shape() != want || state.alpha[l].shape() != want {
                return Err(InkError::ShapeMismatch {
                    detail: format!(
                        "layer {l}: m {:?} / alpha {:?}, expected {want:?}",
                        state.m[l].shape(),
                        state.alpha[l].shape()
                    ),
                });
            }
        }
        if state.h.shape() != (n, model.out_dim()) {
            return Err(InkError::ShapeMismatch {
                detail: format!("output {:?}, expected ({n}, {})", state.h.shape(), model.out_dim()),
            });
        }
        let user_cache = (0..k)
            .map(|l| hooks.as_deref().and_then(|h| h.init_cache(l, &state.m[l])))
            .collect();
        Ok(Self { model, graph, features, state, config, hooks, user_cache })
    }

    /// The current output embeddings.
    pub fn output(&self) -> &Matrix {
        &self.state.h
    }

    /// The current graph.
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// The current feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// The cached per-layer state (`m`, `α`, `h`).
    pub fn state(&self) -> &FullState {
        &self.state
    }

    /// The model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Replaces the update configuration (e.g. to switch ablation modes).
    pub fn set_config(&mut self, config: UpdateConfig) {
        self.config = config;
    }

    /// Recomputes the output from scratch (fresh bootstrap) — the reference
    /// the incremental state must match. Intended for verification.
    pub fn recompute_reference(&self) -> Matrix {
        bootstrap(&self.model, &self.graph, &self.features, self.hooks.as_deref()).0.h
    }

    /// Applies a batch of edge changes and incrementally updates all cached
    /// state. Changes that are no-ops against the current graph (duplicate
    /// inserts, missing removals) are skipped and counted in the report.
    pub fn apply_delta(&mut self, delta: &DeltaBatch) -> UpdateReport {
        let mut directed: Vec<(VertexId, VertexId, EdgeOp)> = Vec::with_capacity(delta.len() * 2);
        let mut skipped = 0usize;
        for c in delta.changes() {
            if self.graph.apply(*c) {
                directed.push((c.src, c.dst, c.op));
                if !self.graph.is_directed() {
                    directed.push((c.dst, c.src, c.op));
                }
            } else {
                skipped += 1;
            }
        }
        let mut report = self.run_layers(directed, FxHashMap::default(), Vec::new());
        report.skipped_changes = skipped;
        report
    }

    /// Updates one vertex's input feature (paper §II-F) and propagates the
    /// effect through all layers.
    pub fn update_vertex_feature(
        &mut self,
        v: VertexId,
        new_feat: &[f32],
    ) -> Result<UpdateReport, InkError> {
        if (v as usize) >= self.graph.num_vertices() {
            return Err(InkError::UnknownVertex(v));
        }
        if new_feat.len() != self.model.in_dim() {
            return Err(InkError::ShapeMismatch {
                detail: format!("feature len {} != {}", new_feat.len(), self.model.in_dim()),
            });
        }
        self.features.set_row(v as usize, new_feat);
        let conv0 = &self.model.layer(0).conv;
        let mut new_m = conv0.message(new_feat);
        if conv0.degree_scaled() {
            ink_tensor::ops::scale(&mut new_m, conv0.degree_scale(self.graph.in_degree(v)));
        }
        let old = self.state.m[0].row(v as usize).to_vec();
        let mut seeds = FxHashMap::default();
        let mut user0 = Vec::new();
        if new_m != old {
            self.state.m[0].set_row(v as usize, &new_m);
            if let Some(hooks) = self.hooks.as_deref() {
                user0 = hooks.user_propagate(0, v, &old, &new_m);
            }
            seeds.insert(v, old);
        }
        Ok(self.run_layers(Vec::new(), seeds, user0))
    }

    /// Inserts a new vertex with `feat` and undirected/outgoing edges to
    /// `neighbors`, extending all cached state (paper §II-F).
    pub fn add_vertex(
        &mut self,
        feat: &[f32],
        neighbors: &[VertexId],
    ) -> Result<(VertexId, UpdateReport), InkError> {
        if feat.len() != self.model.in_dim() {
            return Err(InkError::ShapeMismatch {
                detail: format!("feature len {} != {}", feat.len(), self.model.in_dim()),
            });
        }
        for &n in neighbors {
            if (n as usize) >= self.graph.num_vertices() {
                return Err(InkError::UnknownVertex(n));
            }
        }
        let v = self.graph.add_vertex();
        self.features.push_row(feat);
        // Build the new vertex's self-consistent isolated chain: empty
        // neighborhood → α = 0 at every layer.
        let k = self.model.num_layers();
        let conv0 = &self.model.layer(0).conv;
        let mut msg = conv0.message(feat);
        if conv0.degree_scaled() {
            ink_tensor::ops::scale(&mut msg, conv0.degree_scale(0));
        }
        for l in 0..k {
            let dim = self.model.msg_dim(l);
            self.state.m[l].push_row(&msg);
            self.state.alpha[l].push_row(&vec![0.0; dim]);
            if let Some(cache) = self.user_cache[l].as_mut() {
                let single = Matrix::from_vec(1, dim, msg.clone());
                let row = self
                    .hooks
                    .as_deref()
                    .and_then(|h| h.init_cache(l, &single))
                    .expect("hooked layer must produce a cache row");
                cache.push_row(row.row(0));
            }
            let h_next = compute_next_hidden(
                &self.model,
                &self.state,
                self.hooks.as_deref(),
                &self.user_cache,
                l,
                v,
                0,
            );
            if l + 1 < k {
                let next_conv = &self.model.layer(l + 1).conv;
                msg = next_conv.message(&h_next);
                if next_conv.degree_scaled() {
                    ink_tensor::ops::scale(&mut msg, next_conv.degree_scale(0));
                }
            } else {
                self.state.h.push_row(&h_next);
            }
        }
        let changes: Vec<EdgeChange> =
            neighbors.iter().map(|&n| EdgeChange::insert(v, n)).collect();
        let report = self.apply_delta(&DeltaBatch::new(changes));
        Ok((v, report))
    }

    /// Removes all edges incident to `v` (the id slot stays, isolated, so
    /// embedding tables keep their indices) and updates the affected area.
    pub fn remove_vertex(&mut self, v: VertexId) -> Result<UpdateReport, InkError> {
        if (v as usize) >= self.graph.num_vertices() {
            return Err(InkError::UnknownVertex(v));
        }
        let mut changes: Vec<EdgeChange> =
            self.graph.out_neighbors(v).iter().map(|&n| EdgeChange::remove(v, n)).collect();
        if self.graph.is_directed() {
            changes.extend(self.graph.in_neighbors(v).iter().map(|&n| EdgeChange::remove(n, v)));
        }
        Ok(self.apply_delta(&DeltaBatch::new(changes)))
    }

    /// The engine's main loop over layers (Algorithm 1).
    fn run_layers(
        &mut self,
        directed: Vec<(VertexId, VertexId, EdgeOp)>,
        seeds0: FxHashMap<VertexId, Vec<f32>>,
        user0: Vec<UserEvent>,
    ) -> UpdateReport {
        let t0 = Instant::now();
        let k = self.model.num_layers();
        let mut report = UpdateReport::default();
        let mut real_affected: FxHashSet<VertexId> = FxHashSet::default();

        // Old values of messages that changed this round, per layer.
        let mut old_msgs: Vec<FxHashMap<VertexId, Vec<f32>>> =
            (0..k).map(|_| FxHashMap::default()).collect();
        old_msgs[0] = seeds0;
        for u in old_msgs[0].keys() {
            real_affected.insert(*u);
        }
        let mut pending_user: Vec<Vec<UserEvent>> = (0..k).map(|_| Vec::new()).collect();
        pending_user[0] = user0;

        // Edges covered by ΔG events, to skip duplicate effect propagation.
        let mut inserted_out: FxHashMap<VertexId, FxHashSet<VertexId>> = FxHashMap::default();
        for &(s, t, op) in &directed {
            if op == EdgeOp::Insert {
                inserted_out.entry(s).or_default().insert(t);
            }
        }

        // Net in-degree change per vertex — degree-scaled layers must rescale
        // the cached messages of these vertices (topology-only weights).
        let mut degree_net: FxHashMap<VertexId, i64> = FxHashMap::default();
        for &(_, t, op) in &directed {
            *degree_net.entry(t).or_insert(0) +=
                if op == EdgeOp::Insert { 1 } else { -1 };
        }

        let mut f32_read: u64 = 0;
        let mut f32_written: u64 = 0;

        for l in 0..k {
            let agg = self.model.layer(l).conv.aggregator();
            let mono = agg.is_monotonic();
            let dim = self.model.msg_dim(l);
            let mut arena = PayloadArena::new(dim);
            let mut events: Vec<Event> = Vec::new();

            // 0) Degree-scaled layers (LightGCN-style): a vertex whose degree
            // changed has a changed message at this layer even if nothing
            // else touched it. Rescale the cached message by the weight
            // ratio, or rebuild it from upstream state when the old degree
            // was 0 (the cached message is then the zero convention, not a
            // scaled value). Vertices already refreshed by upstream
            // propagation are skipped — their new message already carries
            // the new weight.
            if self.model.layer(l).conv.degree_scaled() {
                for (&v, &net) in &degree_net {
                    if net == 0 || old_msgs[l].contains_key(&v) {
                        continue;
                    }
                    let d_new = self.graph.in_degree(v);
                    let d_old = (d_new as i64 - net).max(0) as usize;
                    let conv = &self.model.layer(l).conv;
                    let old = self.state.m[l].row(v as usize).to_vec();
                    let new = if d_old == 0 {
                        let base_h = if l == 0 {
                            self.features.row(v as usize).to_vec()
                        } else {
                            compute_next_hidden(
                                &self.model,
                                &self.state,
                                self.hooks.as_deref(),
                                &self.user_cache,
                                l - 1,
                                v,
                                d_new,
                            )
                        };
                        let mut msg = conv.message(&base_h);
                        ink_tensor::ops::scale(&mut msg, conv.degree_scale(d_new));
                        msg
                    } else {
                        let ratio = conv.degree_scale(d_new) / conv.degree_scale(d_old);
                        let mut msg = old.clone();
                        ink_tensor::ops::scale(&mut msg, ratio);
                        msg
                    };
                    if new != old {
                        self.state.m[l].set_row(v as usize, &new);
                        if let Some(hooks) = self.hooks.as_deref() {
                            pending_user[l].extend(hooks.user_propagate(l, v, &old, &new));
                        }
                        old_msgs[l].insert(v, old);
                    }
                }
            }

            // 1) ΔG events for this layer.
            for &(s, t, op) in &directed {
                match op {
                    EdgeOp::Remove => {
                        let old: &[f32] = old_msgs[l]
                            .get(&s)
                            .map(Vec::as_slice)
                            .unwrap_or_else(|| self.state.m[l].row(s as usize));
                        let (ev_op, payload) = if mono {
                            (EventOp::Del, arena.push(old))
                        } else {
                            (EventOp::Update, arena.push_negated(old))
                        };
                        events.push(Event { op: ev_op, target: t, payload, degree_delta: -1 });
                    }
                    EdgeOp::Insert => {
                        let cur = self.state.m[l].row(s as usize);
                        let ev_op = if mono { EventOp::Add } else { EventOp::Update };
                        let payload = arena.push(cur);
                        events.push(Event { op: ev_op, target: t, payload, degree_delta: 1 });
                    }
                }
            }

            // 2) Effect propagation from messages changed at this layer.
            for (v, old) in &old_msgs[l] {
                let new = self.state.m[l].row(*v as usize);
                let skip = inserted_out.get(v);
                if mono {
                    let del_id = arena.push(old);
                    let add_id = arena.push(new);
                    for &x in self.graph.out_neighbors(*v) {
                        if skip.is_some_and(|s| s.contains(&x)) {
                            continue;
                        }
                        events.push(Event { op: EventOp::Del, target: x, payload: del_id, degree_delta: 0 });
                        events.push(Event { op: EventOp::Add, target: x, payload: add_id, degree_delta: 0 });
                    }
                } else {
                    let diff_id = arena.push_diff(new, old);
                    for &x in self.graph.out_neighbors(*v) {
                        if skip.is_some_and(|s| s.contains(&x)) {
                            continue;
                        }
                        events.push(Event { op: EventOp::Update, target: x, payload: diff_id, degree_delta: 0 });
                    }
                }
            }

            // 3) Group and reduce.
            let grouped = group_events(&events, &arena, agg);
            f32_read += grouped.payload_values_read as u64;
            f32_written += (arena.len() * dim) as u64;
            let mut layer_stats = LayerStats {
                events_created: events.len(),
                targets: grouped.groups.len(),
                ..LayerStats::default()
            };

            // 4) Apply per target (parallel when the layer is wide enough).
            let targets: Vec<(VertexId, Group)> = grouped.groups.into_iter().collect();
            let this = &*self;
            let cfg = self.config;
            let process = |(u, group): &(VertexId, Group)| -> ApplyResult {
                let uu = *u as usize;
                let alpha_old = this.state.alpha[l].row(uu);
                let mut reads = dim as u64;
                let recompute = |reads: &mut u64| -> Vec<f32> {
                    let mut out = vec![0.0; dim];
                    agg.aggregate_into(
                        this.graph.in_neighbors(*u).iter().map(|&v| this.state.m[l].row(v as usize)),
                        &mut out,
                    );
                    *reads += (this.graph.in_degree(*u) * dim) as u64;
                    out
                };
                let (alpha_new, cond) = if !cfg.incremental {
                    (recompute(&mut reads), CondKind::Forced)
                } else {
                    match group {
                        Group::Mono { del, add, degree_delta } => {
                            // A target whose *old* neighborhood was empty has
                            // α⁻ = 0 by convention, not as a real aggregate:
                            // the incremental rules don't apply there.
                            let old_deg =
                                this.graph.in_degree(*u) as i64 - *degree_delta as i64;
                            if old_deg <= 0 {
                                (recompute(&mut reads), CondKind::Mono(Condition::ExposedReset))
                            } else {
                                match apply_monotonic(
                                    agg,
                                    alpha_old,
                                    del.as_deref(),
                                    add.as_deref(),
                                ) {
                                    MonoOutcome::Updated { condition, alpha } => {
                                        (alpha, CondKind::Mono(condition))
                                    }
                                    MonoOutcome::Recompute => (
                                        recompute(&mut reads),
                                        CondKind::Mono(Condition::ExposedReset),
                                    ),
                                }
                            }
                        }
                        Group::Acc { sum, degree_delta } => (
                            apply_accumulative(
                                agg,
                                alpha_old,
                                sum,
                                this.graph.in_degree(*u),
                                *degree_delta,
                            ),
                            CondKind::Acc,
                        ),
                    }
                };
                let changed = alpha_new.as_slice() != alpha_old;
                ApplyResult { target: *u, alpha_new, cond, reads, changed }
            };
            let use_par = cfg.parallel && targets.len() >= cfg.parallel_threshold;
            let results: Vec<ApplyResult> = if use_par {
                targets.par_iter().map(process).collect()
            } else {
                targets.iter().map(process).collect()
            };

            // Write phase + stats.
            let mut next_targets: Vec<VertexId> = Vec::new();
            for r in results {
                f32_read += r.reads;
                match r.cond {
                    CondKind::Mono(c) => {
                        layer_stats.conditions.record(c);
                        report
                            .per_node_condition
                            .entry(r.target)
                            .and_modify(|worst| {
                                if c.severity() > worst.severity() {
                                    *worst = c;
                                }
                            })
                            .or_insert(c);
                    }
                    CondKind::Acc => layer_stats.conditions.accumulative += 1,
                    CondKind::Forced => {
                        layer_stats.conditions.forced_recompute += 1;
                        report.per_node_condition.insert(r.target, Condition::ExposedReset);
                    }
                }
                // Accumulative targets always propagate (Algorithm 1 l.18-21).
                let propagates = match r.cond {
                    CondKind::Acc => true,
                    _ => r.changed,
                };
                if r.changed {
                    self.state.alpha[l].set_row(r.target as usize, &r.alpha_new);
                    f32_written += dim as u64;
                    layer_stats.alpha_changed += 1;
                    real_affected.insert(r.target);
                }
                if propagates || !cfg.pruning {
                    next_targets.push(r.target);
                }
            }

            // 5) User events targeting this layer's update phase.
            let user_events = std::mem::take(&mut pending_user[l]);
            if !user_events.is_empty() {
                let hooks = self.hooks.as_deref().expect("user events require hooks");
                let cache =
                    self.user_cache[l].as_mut().expect("user events require a hooked layer");
                let mut by_target: FxHashMap<VertexId, Vec<UserEvent>> = FxHashMap::default();
                for e in user_events {
                    by_target.entry(e.target).or_default().push(e);
                }
                for (target, evs) in by_target {
                    let reduced = hooks.user_grouping(l, evs);
                    hooks.user_apply(l, target, cache.row_mut(target as usize), &reduced);
                    real_affected.insert(target);
                    next_targets.push(target);
                }
            }

            // 6) Self-dependence: nodes whose own message changed re-enter.
            if self.model.layer(l).conv.self_dependent() {
                next_targets.extend(old_msgs[l].keys().copied());
            }
            next_targets.sort_unstable();
            next_targets.dedup();
            layer_stats.targets = layer_stats.targets.max(next_targets.len());
            report.nodes_visited += next_targets.len() as u64;

            // 7) Rebuild next-layer messages / final outputs.
            let is_last = l + 1 == k;
            let out_dim = self.model.layer(l).conv.out_dim();
            let this = &*self;
            let produce = |u: &VertexId| -> (VertexId, Vec<f32>) {
                let h_new = compute_next_hidden(
                    &this.model,
                    &this.state,
                    this.hooks.as_deref(),
                    &this.user_cache,
                    l,
                    *u,
                    this.graph.in_degree(*u),
                );
                if is_last {
                    (*u, h_new)
                } else {
                    let next_conv = &this.model.layer(l + 1).conv;
                    let mut msg = next_conv.message(&h_new);
                    if next_conv.degree_scaled() {
                        let scale = next_conv.degree_scale(this.graph.in_degree(*u));
                        ink_tensor::ops::scale(&mut msg, scale);
                    }
                    (*u, msg)
                }
            };
            let use_par = cfg.parallel && next_targets.len() >= cfg.parallel_threshold;
            let produced: Vec<(VertexId, Vec<f32>)> = if use_par {
                next_targets.par_iter().map(produce).collect()
            } else {
                next_targets.iter().map(produce).collect()
            };
            f32_read += (next_targets.len() * 2 * dim) as u64;
            f32_written += (next_targets.len() * out_dim) as u64;

            for (u, vec_new) in produced {
                if is_last {
                    if vec_new.as_slice() != self.state.h.row(u as usize) {
                        self.state.h.set_row(u as usize, &vec_new);
                        report.output_changed += 1;
                    }
                } else {
                    let old = self.state.m[l + 1].row(u as usize);
                    let changed = vec_new.as_slice() != old;
                    if changed || !cfg.pruning {
                        let old_vec = old.to_vec();
                        if changed {
                            if let Some(hooks) = self.hooks.as_deref() {
                                pending_user[l + 1].extend(hooks.user_propagate(
                                    l + 1,
                                    u,
                                    &old_vec,
                                    &vec_new,
                                ));
                            }
                            self.state.m[l + 1].set_row(u as usize, &vec_new);
                        }
                        old_msgs[l + 1].insert(u, old_vec);
                    }
                }
            }

            report.per_layer.push(layer_stats);
        }

        report.real_affected = real_affected.len() as u64;
        report.f32_read = f32_read;
        report.f32_written = f32_written;
        report.elapsed = t0.elapsed();
        report
    }
}

/// `h_{l+1,u} = act(norm(T(α_{l,u}, m_{l,u}) + user_contribution))` for one
/// node, from the *current* cached state. `degree` feeds the target-side
/// weight of degree-scaled layers.
fn compute_next_hidden(
    model: &Model,
    state: &FullState,
    hooks: Option<&dyn UserHooks>,
    user_cache: &[Option<Matrix>],
    l: usize,
    u: VertexId,
    degree: usize,
) -> Vec<f32> {
    let layer = model.layer(l);
    let mut out = vec![0.0; layer.conv.out_dim()];
    if layer.conv.degree_scaled() {
        let mut a = state.alpha[l].row(u as usize).to_vec();
        ink_tensor::ops::scale(&mut a, layer.conv.update_scale(degree));
        layer.conv.update_into(&a, state.m[l].row(u as usize), &mut out);
    } else {
        layer.conv.update_into(
            state.alpha[l].row(u as usize),
            state.m[l].row(u as usize),
            &mut out,
        );
    }
    if let (Some(hk), Some(cache)) = (hooks, user_cache.get(l).and_then(Option::as_ref)) {
        hk.contribute(l, u, &mut out, cache.row(u as usize));
    }
    if let Some(norm) = &layer.norm {
        norm.apply_cached(&mut out);
    }
    layer.act.apply(&mut out);
    out
}

/// Full-graph bootstrap that also initialises the user caches (and therefore
/// supports hook-based models, which `ink_gnn::full_inference` knows nothing
/// about).
fn bootstrap(
    model: &Model,
    graph: &DynGraph,
    features: &Matrix,
    hooks: Option<&dyn UserHooks>,
) -> (FullState, Vec<Option<Matrix>>) {
    let n = graph.num_vertices();
    let k = model.num_layers();
    let mut m_all = Vec::with_capacity(k);
    let mut alpha_all = Vec::with_capacity(k);
    let mut user_cache = Vec::with_capacity(k);
    let mut h = features.clone();

    for l in 0..k {
        let layer = model.layer(l);
        let m = batch_message(model, l, &h, graph);
        let cache = hooks.and_then(|hk| hk.init_cache(l, &m));
        let alpha = batch_aggregate(model, l, graph, &m);
        let out_dim = layer.conv.out_dim();
        let degree_scaled = layer.conv.degree_scaled();
        let mut h_next = Matrix::zeros(n, out_dim);
        h_next
            .as_mut_slice()
            .par_chunks_mut(out_dim.max(1))
            .enumerate()
            .for_each(|(u, out)| {
                if degree_scaled {
                    let mut a = alpha.row(u).to_vec();
                    let scale = layer.conv.update_scale(graph.in_degree(u as VertexId));
                    ink_tensor::ops::scale(&mut a, scale);
                    layer.conv.update_into(&a, m.row(u), out);
                } else {
                    layer.conv.update_into(alpha.row(u), m.row(u), out);
                }
                if let (Some(hk), Some(c)) = (hooks, cache.as_ref()) {
                    hk.contribute(l, u as VertexId, out, c.row(u));
                }
                if let Some(norm) = &layer.norm {
                    norm.apply_cached(out);
                }
                layer.act.apply(out);
            });
        m_all.push(m);
        alpha_all.push(alpha);
        user_cache.push(cache);
        h = h_next;
    }

    (FullState { m: m_all, alpha: alpha_all, h, norm_stats: vec![None; k] }, user_cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ink_gnn::{full_inference, Aggregator};
    use ink_tensor::init::seeded_rng;

    fn ring(n: usize) -> DynGraph {
        let edges: Vec<_> =
            (0..n).map(|i| (i as VertexId, ((i + 1) % n) as VertexId)).collect();
        DynGraph::undirected_from_edges(n, &edges)
    }

    fn feats(n: usize, d: usize) -> Matrix {
        Matrix::from_fn(n, d, |r, c| ((r * 17 + c * 5) % 11) as f32 * 0.25 - 1.0)
    }

    #[test]
    fn bootstrap_matches_reference_inference() {
        let mut rng = seeded_rng(1);
        let model = Model::gcn(&mut rng, &[4, 5, 3], Aggregator::Max);
        let g = ring(10);
        let x = feats(10, 4);
        let reference = full_inference(&model, &g, &x, None);
        let engine = InkStream::new(model, g, x, UpdateConfig::default()).unwrap();
        assert_eq!(engine.output(), &reference.h);
        assert_eq!(engine.state().alpha[0], reference.alpha[0]);
        assert_eq!(engine.state().m[1], reference.m[1]);
    }

    #[test]
    fn single_insert_matches_full_recompute_bitwise_for_max() {
        let mut rng = seeded_rng(2);
        let model = Model::gcn(&mut rng, &[4, 5, 3], Aggregator::Max);
        let g = ring(12);
        let x = feats(12, 4);
        let mut engine = InkStream::new(model, g, x, UpdateConfig::default()).unwrap();
        let delta = DeltaBatch::new(vec![EdgeChange::insert(0, 6)]);
        let report = engine.apply_delta(&delta);
        assert_eq!(report.skipped_changes, 0);
        let reference = engine.recompute_reference();
        assert_eq!(engine.output(), &reference, "monotonic path must be bitwise identical");
    }

    #[test]
    fn single_remove_matches_full_recompute_bitwise_for_max() {
        let mut rng = seeded_rng(3);
        let model = Model::gcn(&mut rng, &[4, 5, 3], Aggregator::Max);
        let g = ring(12);
        let x = feats(12, 4);
        let mut engine = InkStream::new(model, g, x, UpdateConfig::default()).unwrap();
        engine.apply_delta(&DeltaBatch::new(vec![EdgeChange::remove(3, 4)]));
        assert_eq!(engine.output(), &engine.recompute_reference());
    }

    #[test]
    fn accumulative_updates_track_reference_within_tolerance() {
        for agg in [Aggregator::Sum, Aggregator::Mean] {
            let mut rng = seeded_rng(4);
            let model = Model::gcn(&mut rng, &[4, 5, 3], agg);
            let g = ring(12);
            let x = feats(12, 4);
            let mut engine = InkStream::new(model, g, x, UpdateConfig::default()).unwrap();
            engine.apply_delta(&DeltaBatch::new(vec![
                EdgeChange::insert(0, 6),
                EdgeChange::remove(2, 3),
            ]));
            let reference = engine.recompute_reference();
            assert!(
                engine.output().allclose(&reference, 1e-4),
                "{agg:?}: max diff {}",
                engine.output().max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn duplicate_insert_is_skipped() {
        let mut rng = seeded_rng(5);
        let model = Model::gcn(&mut rng, &[4, 4], Aggregator::Max);
        let g = ring(8);
        let x = feats(8, 4);
        let mut engine = InkStream::new(model, g, x, UpdateConfig::default()).unwrap();
        let report = engine.apply_delta(&DeltaBatch::new(vec![EdgeChange::insert(0, 1)]));
        assert_eq!(report.skipped_changes, 1, "edge 0-1 already exists in the ring");
        assert_eq!(engine.output(), &engine.recompute_reference());
    }

    #[test]
    fn report_counts_events_and_conditions() {
        let mut rng = seeded_rng(6);
        let model = Model::gcn(&mut rng, &[4, 5, 3], Aggregator::Max);
        let g = ring(16);
        let x = feats(16, 4);
        let mut engine = InkStream::new(model, g, x, UpdateConfig::default()).unwrap();
        let report = engine.apply_delta(&DeltaBatch::new(vec![EdgeChange::insert(0, 8)]));
        assert!(report.events_created() > 0);
        assert!(report.conditions().total() > 0);
        assert!(report.traffic() > 0);
        assert_eq!(report.per_layer.len(), 2);
    }
}
