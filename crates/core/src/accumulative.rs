//! Intra-layer incremental update for accumulative aggregation (paper §II-C2).
//!
//! Sum and mean are fully reversible, so a node's new aggregated
//! neighborhood always evolves from the old one:
//!
//! * sum:  `α = α⁻ + Σ msg`
//! * mean: `α = (α⁻·d⁻ + Σ msg_raw) / d` — the event payloads carry *raw*
//!   message deltas (`Δm`, `+m`, `−m⁻`), and the degrees reconcile the
//!   denominators. This is algebraically the paper's
//!   `α = (d⁻/d)(α⁻ + Σ msg/d⁻)` form, written to avoid dividing each
//!   payload.
//!
//! There is no pruning decision here: accumulative updates are always
//! applied and always propagate (paper Algorithm 1, lines 18-21).

use ink_gnn::Aggregator;

/// Applies the accumulative update and returns the new `α`.
///
/// `degree_new` is the target's in-degree in the *current* graph;
/// `degree_delta` is the net change contributed by ΔG events, so the old
/// degree is `degree_new − degree_delta`.
///
/// With `compensated` the arithmetic widens to `f64` and rounds once per
/// channel — for mean this replaces three `f32` roundings
/// (`a·d⁻`, `+s`, `·1/d`) with one, which is the dominant per-round drift
/// source on long streams (see DESIGN.md, "Drift auditing and resync").
pub fn apply_accumulative(
    agg: Aggregator,
    alpha_old: &[f32],
    sum: &[f32],
    degree_new: usize,
    degree_delta: i32,
    compensated: bool,
) -> Vec<f32> {
    let mut alpha = vec![0.0; alpha_old.len()];
    apply_accumulative_into(agg, alpha_old, sum, degree_new, degree_delta, compensated, &mut alpha);
    alpha
}

/// Allocation-free form of [`apply_accumulative`]: writes the new `α` into
/// `out`.
pub fn apply_accumulative_into(
    agg: Aggregator,
    alpha_old: &[f32],
    sum: &[f32],
    degree_new: usize,
    degree_delta: i32,
    compensated: bool,
    out: &mut [f32],
) {
    debug_assert!(agg.is_accumulative());
    debug_assert_eq!(out.len(), alpha_old.len());
    match agg {
        Aggregator::Sum => {
            out.copy_from_slice(alpha_old);
            ink_tensor::ops::add_assign(out, sum);
        }
        Aggregator::Mean => {
            let degree_old = degree_new as i64 - degree_delta as i64;
            debug_assert!(degree_old >= 0, "degree bookkeeping went negative");
            if degree_new == 0 {
                // Empty-neighborhood convention: zeros.
                out.fill(0.0);
                return;
            }
            if compensated {
                let d_old = degree_old as f64;
                let inv_new = 1.0 / degree_new as f64;
                for ((o, &a), &s) in out.iter_mut().zip(alpha_old).zip(sum) {
                    *o = ((a as f64 * d_old + s as f64) * inv_new) as f32;
                }
                return;
            }
            let d_old = degree_old as f32;
            let inv_new = 1.0 / degree_new as f32;
            for ((o, &a), &s) in out.iter_mut().zip(alpha_old).zip(sum) {
                *o = (a * d_old + s) * inv_new;
            }
        }
        _ => unreachable!("monotonic aggregators use apply_monotonic"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_adds_payload() {
        let alpha = apply_accumulative(Aggregator::Sum, &[1.0, 2.0], &[0.5, -1.0], 3, 0, false);
        assert_eq!(alpha, vec![1.5, 1.0]);
    }

    #[test]
    fn sum_ignores_degree() {
        let a = apply_accumulative(Aggregator::Sum, &[1.0], &[1.0], 5, 2, false);
        let b = apply_accumulative(Aggregator::Sum, &[1.0], &[1.0], 9, -3, false);
        assert_eq!(a, b);
    }

    #[test]
    fn mean_with_stable_degree() {
        // α⁻ = mean of 2 msgs = 3.0 (total 6.0); one neighbor changed by +2.0
        // (raw), degree unchanged → new mean = 8/2 = 4.0.
        let alpha = apply_accumulative(Aggregator::Mean, &[3.0], &[2.0], 2, 0, false);
        assert_eq!(alpha, vec![4.0]);
    }

    #[test]
    fn mean_with_inserted_edge() {
        // Old: 2 neighbors, mean 3.0 (total 6.0). Insert a neighbor with
        // message 9.0 → new mean = 15/3 = 5.0.
        let alpha = apply_accumulative(Aggregator::Mean, &[3.0], &[9.0], 3, 1, false);
        assert_eq!(alpha, vec![5.0]);
    }

    #[test]
    fn mean_with_removed_edge() {
        // Old: 3 neighbors, mean 5.0 (total 15.0). Remove a neighbor whose
        // message was 9.0 (payload −9) → new mean = 6/2 = 3.0.
        let alpha = apply_accumulative(Aggregator::Mean, &[5.0], &[-9.0], 2, -1, false);
        assert_eq!(alpha, vec![3.0]);
    }

    #[test]
    fn mean_losing_all_neighbors_goes_to_zero() {
        let alpha = apply_accumulative(Aggregator::Mean, &[5.0, -2.0], &[-5.0, 2.0], 0, -1, false);
        assert_eq!(alpha, vec![0.0, 0.0]);
    }

    #[test]
    fn mean_first_neighbor_from_empty() {
        // Old degree 0 (α⁻ = 0 by convention); insert a neighbor with message 7.
        let alpha = apply_accumulative(Aggregator::Mean, &[0.0], &[7.0], 1, 1, false);
        assert_eq!(alpha, vec![7.0]);
    }

    #[test]
    fn compensated_mean_agrees_on_exact_cases() {
        for (alpha, sum, d, dd, want) in [
            (vec![3.0f32], vec![2.0f32], 2usize, 0i32, vec![4.0f32]),
            (vec![3.0], vec![9.0], 3, 1, vec![5.0]),
            (vec![5.0], vec![-9.0], 2, -1, vec![3.0]),
        ] {
            assert_eq!(apply_accumulative(Aggregator::Mean, &alpha, &sum, d, dd, true), want);
        }
    }

    #[test]
    fn compensated_mean_rounds_once() {
        // Values chosen so the f32 intermediate (a·d⁻ + s) rounds: the
        // widened path must land at least as close to the exact answer.
        let a = [0.1f32];
        let s = [0.3f32];
        let exact = (0.1f64 * 7.0 + 0.3f32 as f64) / 8.0;
        let plain = apply_accumulative(Aggregator::Mean, &a, &s, 8, 1, false)[0];
        let comp = apply_accumulative(Aggregator::Mean, &a, &s, 8, 1, true)[0];
        assert!(
            (comp as f64 - exact).abs() <= (plain as f64 - exact).abs(),
            "compensated ({comp}) must be no further from exact ({exact}) than plain ({plain})"
        );
    }
}
