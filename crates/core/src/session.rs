//! Streaming session: the operational wrapper a deployment actually runs.
//!
//! [`StreamSession`] owns an [`InkStream`] engine and adds the concerns the
//! paper's evaluation protocol implies but the core algorithm doesn't cover:
//! splitting oversized deltas into refresh batches (speedup falls with ΔG —
//! paper Fig. 7 — so bounded batches keep latency predictable), rolling
//! latency statistics, and a drift auditor for accumulative aggregation,
//! where float drift is bounded but nonzero.
//!
//! The auditor is governed by a [`DriftPolicy`]: cheap *spot audits*
//! recompute a handful of sampled vertices per interval
//! (`O(samples · deg · dim)` — independent of graph size), *full audits*
//! compare the whole output against a fresh bootstrap, and a breach triggers
//! the configured [`DriftAction`] — fail the ingest, log and continue, or
//! self-heal with [`InkStream::resync`]. NaN anywhere in the audited state
//! always reads as a breach (audits propagate NaN instead of dropping it).
//! [`DriftStats`] keeps the audit/resync bookkeeping separate from ingest
//! latency. See DESIGN.md, "Drift auditing and resync".
//!
//! # Observability
//!
//! Every session owns an [`ink_obs::MetricsRegistry`] and an
//! [`ink_obs::Tracer`] (see [`StreamSession::metrics`] /
//! [`StreamSession::tracer`]). The registry instruments — counters for
//! ingests/changes/audits, log-bucket histograms for batch latency and the
//! five pipeline phases, gauges for scratch-pool occupancy and worst drift —
//! are the *source of truth*: [`DriftStats`] and the `PhaseTimes` inside
//! [`SessionSummary`] are thin views folded from the registry at
//! [`StreamSession::summary`] time, so the JSON schema consumed by the bench
//! artifacts and the serve `stats` request is unchanged while the same
//! numbers become scrapeable as Prometheus text. The tracer records one span
//! per batch plus one per phase (synthesized from the engine's own phase
//! timings) and per audit/resync, dumpable as Chrome `trace_event` JSON.
//! Metric names are catalogued in DESIGN.md §8.

use crate::json::{rounded, Json};
use crate::{InkStream, PhaseTimes, UpdateReport};
use ink_gnn::cost::DispatchArm;
use ink_graph::{DeltaBatch, VertexId};
use ink_obs::{Counter, Gauge, Histogram, MetricsRegistry, Tracer};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default capacity of the session's span ring (events retained for a
/// [`Tracer::dump_chrome_trace`] dump).
pub const DEFAULT_TRACE_CAPACITY: usize = 8192;

/// Renders a `(p50, p90, p99, max)` latency tuple as microseconds.
fn latency_json(l: &(Duration, Duration, Duration, Duration)) -> Json {
    let us = |d: Duration| rounded(d.as_secs_f64() * 1e6, 3);
    Json::obj([("p50", us(l.0)), ("p90", us(l.1)), ("p99", us(l.2)), ("max", us(l.3))])
}

/// What to do when an audit measures drift beyond tolerance (or NaN).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriftAction {
    /// Return a [`DriftError`] from the ingest (the state stays drifted).
    Fail,
    /// Record the breach in [`DriftStats`] and carry on.
    Warn,
    /// Self-heal: rebuild all cached state via [`InkStream::resync`], after
    /// which the output is bitwise equal to full recomputation.
    Resync,
}

/// When and how hard to audit the incremental state against recomputation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftPolicy {
    /// Spot-audit every `n` ingests (None = never): recompute
    /// [`DriftPolicy::spot_samples`] random vertices from cached inputs.
    pub spot_every: Option<usize>,
    /// Vertices sampled per spot audit.
    pub spot_samples: usize,
    /// Full-audit every `n` ingests (None = never): NaN-scan the whole
    /// state, then compare the output against a fresh bootstrap. Takes
    /// priority over a spot audit due on the same ingest.
    pub full_every: Option<usize>,
    /// Maximum per-channel deviation tolerated. NaN breaches regardless.
    pub tolerance: f32,
    /// Response to a breach.
    pub action: DriftAction,
    /// Seed of the spot-sampling sequence (deterministic per session).
    pub seed: u64,
}

impl Default for DriftPolicy {
    fn default() -> Self {
        Self {
            spot_every: None,
            spot_samples: 8,
            full_every: None,
            tolerance: 1e-3,
            action: DriftAction::Fail,
            seed: 0x1a5d_93b7_c4e2_f016,
        }
    }
}

impl DriftPolicy {
    /// Full audit every `every` ingests with the given tolerance.
    pub fn full(every: usize, tolerance: f32) -> Self {
        Self { full_every: Some(every), tolerance, ..Self::default() }
    }

    /// Spot audit of `samples` vertices every `every` ingests.
    pub fn spot(every: usize, samples: usize, tolerance: f32) -> Self {
        Self { spot_every: Some(every), spot_samples: samples, tolerance, ..Self::default() }
    }

    /// Same policy with a different breach action.
    pub fn with_action(mut self, action: DriftAction) -> Self {
        self.action = action;
        self
    }

    fn enabled(&self) -> bool {
        self.spot_every.is_some() || self.full_every.is_some()
    }
}

/// Session tunables.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Split incoming deltas into batches of at most this many changes.
    pub max_batch: usize,
    /// Drift auditing policy.
    pub drift: DriftPolicy,
    /// Number of recent per-batch latencies kept for the percentile summary
    /// (a ring buffer — unbounded growth on long streams is a leak).
    pub latency_window: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self { max_batch: 1_000, drift: DriftPolicy::default(), latency_window: 4096 }
    }
}

/// The kind of audit an ingest ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditKind {
    /// Sampled per-vertex recomputation.
    Spot,
    /// Whole-state NaN scan + output vs. fresh bootstrap.
    Full,
}

/// Rolling audit/resync bookkeeping, kept apart from ingest latency so audit
/// cost never pollutes the update-speed numbers.
#[derive(Clone, Copy, Debug, Default)]
pub struct DriftStats {
    /// Spot audits run.
    pub spot_audits: u64,
    /// Full audits run.
    pub full_audits: u64,
    /// Audits that breached tolerance (including NaN detections).
    pub breaches: u64,
    /// Breaches answered with a resync.
    pub resyncs: u64,
    /// Audits that found non-finite state.
    pub nan_detected: u64,
    /// Worst *finite* deviation ever measured (NaNs are counted, not folded).
    pub max_deviation: f32,
    /// Wall time spent inside audits.
    pub audit_time: Duration,
    /// Wall time spent inside resyncs.
    pub resync_time: Duration,
}

impl DriftStats {
    /// JSON rendering shared by the bench artifacts and the server `stats`
    /// request.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("spot_audits", Json::from(self.spot_audits)),
            ("full_audits", Json::from(self.full_audits)),
            ("breaches", Json::from(self.breaches)),
            ("resyncs", Json::from(self.resyncs)),
            ("nan_detected", Json::from(self.nan_detected)),
            ("max_deviation", Json::from(self.max_deviation)),
            ("audit_ms", rounded(self.audit_time.as_secs_f64() * 1e3, 3)),
            ("resync_ms", rounded(self.resync_time.as_secs_f64() * 1e3, 3)),
        ])
    }
}

/// The incremental state drifted past the audit tolerance and the policy
/// said [`DriftAction::Fail`]. Carries the ingest's report: the batches were
/// already applied — the error describes state quality, not lost work.
#[derive(Clone, Debug)]
pub struct DriftError {
    /// Observed maximum deviation (NaN when the state held non-finite
    /// values).
    pub max_diff: f32,
    /// Configured tolerance.
    pub tolerance: f32,
    /// What the ingest did before failing verification.
    pub report: IngestReport,
}

impl std::fmt::Display for DriftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.max_diff.is_nan() {
            write!(f, "incremental state is poisoned: audit found non-finite values")
        } else {
            write!(
                f,
                "incremental state drifted: max diff {} > tolerance {}",
                self.max_diff, self.tolerance
            )
        }
    }
}

impl std::error::Error for DriftError {}

/// What one [`StreamSession::ingest`] call did.
#[derive(Clone, Debug, Default)]
pub struct IngestReport {
    /// Batches the delta was split into.
    pub batches: usize,
    /// Changes applied (excluding skipped no-ops).
    pub changes_applied: usize,
    /// No-op changes skipped.
    pub skipped: usize,
    /// Nodes whose final output changed (summed over batches).
    pub output_changed: u64,
    /// Wall-clock time of the whole ingest (batches + audit + resync).
    pub elapsed: Duration,
    /// Max deviation measured, when this ingest triggered an audit. NaN
    /// means the audit found non-finite state.
    pub verified_diff: Option<f32>,
    /// Which audit ran, if any.
    pub audit: Option<AuditKind>,
    /// Wall time of the audit alone.
    pub audit_time: Duration,
    /// True when the audit breached tolerance (or found NaN).
    pub drift_breached: bool,
    /// True when the breach was answered with a resync.
    pub resynced: bool,
}

/// Serving-layer counters folded into [`SessionSummary`] when the session
/// runs behind an `ink-serve` front end (all-zero otherwise): admission
/// control outcomes, coalescing effectiveness, snapshot epochs, queue depth
/// and per-query latency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Update requests admitted to the ingest queue.
    pub updates_enqueued: u64,
    /// Update requests turned away (reject-with-retry-after backpressure).
    pub updates_rejected: u64,
    /// Queued update requests evicted (drop-oldest backpressure).
    pub updates_dropped: u64,
    /// Edge changes received across admitted updates (pre-coalescing).
    pub events_received: u64,
    /// Edge changes actually applied (post-coalescing).
    pub events_applied: u64,
    /// Query requests answered from snapshots.
    pub queries: u64,
    /// Flush barriers honoured.
    pub flushes: u64,
    /// Transient `accept()` failures the listener retried past
    /// (ECONNABORTED, EMFILE, ...).
    pub accept_errors: u64,
    /// Snapshot epochs published (excluding the bootstrap epoch 0).
    pub epochs: u64,
    /// Ingest queue depth at the time the summary was taken.
    pub queue_depth: u64,
    /// Deepest the ingest queue ever got.
    pub max_queue_depth: u64,
    /// Poisoned-lock recoveries on the queue's read-only stats paths.
    /// Non-zero means a thread panicked while holding the queue lock; the
    /// stats/metrics endpoints kept answering instead of taking the server
    /// down with them.
    pub lock_poisoned: u64,
    /// Per-query service latency percentiles over a rolling window:
    /// (p50, p90, p99, max).
    pub query_latency: (Duration, Duration, Duration, Duration),
    /// Admission-to-apply latency percentiles — how long an admitted update
    /// batch waited in the ingest queue plus pipeline before the epoch that
    /// contains it was published: (p50, p90, p99, max). Separates queueing
    /// wait from service time.
    pub admission_wait: (Duration, Duration, Duration, Duration),
    /// Apply-only latency percentiles — engine ingest + snapshot publish per
    /// non-empty epoch, excluding any queueing: (p50, p90, p99, max).
    pub apply_latency: (Duration, Duration, Duration, Duration),
}

impl ServeStats {
    /// JSON rendering, used by the server's `stats` request and the serve
    /// bench artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("updates_enqueued", Json::from(self.updates_enqueued)),
            ("updates_rejected", Json::from(self.updates_rejected)),
            ("updates_dropped", Json::from(self.updates_dropped)),
            ("events_received", Json::from(self.events_received)),
            ("events_applied", Json::from(self.events_applied)),
            ("queries", Json::from(self.queries)),
            ("flushes", Json::from(self.flushes)),
            ("accept_errors", Json::from(self.accept_errors)),
            ("epochs", Json::from(self.epochs)),
            ("queue_depth", Json::from(self.queue_depth)),
            ("max_queue_depth", Json::from(self.max_queue_depth)),
            ("lock_poisoned", Json::from(self.lock_poisoned)),
            ("query_latency_us", latency_json(&self.query_latency)),
            ("admission_wait_us", latency_json(&self.admission_wait)),
            ("apply_latency_us", latency_json(&self.apply_latency)),
        ])
    }
}

/// Rolling summary of a session.
#[derive(Clone, Debug, Default)]
pub struct SessionSummary {
    /// Total ingest calls.
    pub ingests: usize,
    /// Total edge changes applied.
    pub changes: usize,
    /// Latency percentiles over the retained batch window:
    /// (p50, p90, p99, max).
    pub latency: (Duration, Duration, Duration, Duration),
    /// Mean real-affected nodes per batch (over all batches ever run).
    pub avg_real_affected: f64,
    /// Per-phase pipeline wall time accumulated over every batch — shows
    /// where the session's update budget actually goes.
    pub phase_times: PhaseTimes,
    /// Audit/resync bookkeeping.
    pub drift: DriftStats,
    /// Serving-layer counters (all-zero outside `ink-serve`).
    pub serve: ServeStats,
}

impl SessionSummary {
    /// The canonical JSON rendering of a summary, shared by the bench
    /// binaries and the server's `stats` response so every consumer sees the
    /// same field names.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("ingests", Json::from(self.ingests)),
            ("changes", Json::from(self.changes)),
            ("batch_latency_us", latency_json(&self.latency)),
            ("avg_real_affected", rounded(self.avg_real_affected, 3)),
            ("phase_us", self.phase_times.to_json()),
            ("drift", self.drift.to_json()),
            ("serve", self.serve.to_json()),
        ])
    }
}

/// An engine plus operational bookkeeping for long-running streams.
///
/// ```
/// use ink_graph::{DeltaBatch, DynGraph, EdgeChange};
/// use ink_gnn::{Aggregator, Model};
/// use ink_tensor::init;
/// use inkstream::{DriftAction, DriftPolicy, InkStream, SessionConfig, StreamSession, UpdateConfig};
///
/// let mut rng = init::seeded_rng(1);
/// let g = DynGraph::undirected_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// let x = init::uniform(&mut rng, 4, 6, -1.0, 1.0);
/// let model = Model::gcn(&mut rng, &[6, 8, 4], Aggregator::Mean);
/// let engine = InkStream::new(model, g, x, UpdateConfig::default()).unwrap();
///
/// // Spot-audit 4 vertices every ingest; self-heal on a breach.
/// let mut session = StreamSession::with_config(
///     engine,
///     SessionConfig {
///         drift: DriftPolicy::spot(1, 4, 1e-3).with_action(DriftAction::Resync),
///         ..SessionConfig::default()
///     },
/// );
/// let report = session
///     .ingest(&DeltaBatch::new(vec![EdgeChange::insert(0, 3)]))
///     .unwrap();
/// assert_eq!(report.changes_applied, 1);
/// assert!(report.verified_diff.is_some());
/// assert_eq!(session.summary().drift.spot_audits, 1);
///
/// // Everything the summary reports is also scrapeable as Prometheus text
/// // and traceable as Chrome trace_event JSON.
/// let scrape = session.metrics().render_prometheus();
/// assert!(scrape.contains("ink_session_ingests_total 1"));
/// assert!(scrape.contains("ink_drift_spot_audits_total 1"));
/// assert!(session.tracer().dump_chrome_trace().contains("\"name\":\"generate\""));
/// ```
pub struct StreamSession {
    engine: InkStream,
    config: SessionConfig,
    registry: Arc<MetricsRegistry>,
    tracer: Arc<Tracer>,
    inst: SessionInstruments,
    batch_latencies: VecDeque<Duration>,
    sample_state: u64,
}

/// The session's registry instruments. These atomics are the source of truth
/// for everything [`SessionSummary`] reports (except the exact batch-latency
/// percentiles, which come from the retained ring); see the module docs.
struct SessionInstruments {
    ingests: Arc<Counter>,
    changes: Arc<Counter>,
    skipped: Arc<Counter>,
    batches: Arc<Counter>,
    affected: Arc<Counter>,
    output_changed: Arc<Counter>,
    batch_latency: Arc<Histogram>,
    /// One histogram per pipeline phase, in [`PHASE_NAMES`] order.
    phases: [Arc<Histogram>; 5],
    spot_audits: Arc<Counter>,
    full_audits: Arc<Counter>,
    breaches: Arc<Counter>,
    resyncs: Arc<Counter>,
    nan_detected: Arc<Counter>,
    audit_ns: Arc<Counter>,
    resync_ns: Arc<Counter>,
    max_deviation: Arc<Gauge>,
    scratch_bytes: Arc<Gauge>,
    gemm_rows: Arc<Counter>,
    gemm_flops: Arc<Counter>,
    gemm_batch_rows: Arc<Histogram>,
    apply_rows: Arc<Counter>,
    apply_batch_rows: Arc<Histogram>,
    /// Rounds executed per dispatcher arm, in [`DispatchArm::ALL`] order.
    /// Fixed-configuration rounds increment nothing.
    dispatch: [Arc<Counter>; 3],
}

/// Pipeline phase names, in execution order (also the tracer span names).
const PHASE_NAMES: [&str; 5] = ["generate", "group", "apply", "write", "next_messages"];

impl SessionInstruments {
    fn register(r: &MetricsRegistry) -> Self {
        let phase = |name: &str, help: &str| r.histogram(name, help);
        Self {
            ingests: r.counter("ink_session_ingests_total", "Ingest calls"),
            changes: r.counter(
                "ink_session_changes_total",
                "Edge changes applied (excluding skipped no-ops)",
            ),
            skipped: r.counter("ink_session_skipped_total", "No-op edge changes skipped"),
            batches: r.counter("ink_session_batches_total", "Refresh batches run"),
            affected: r.counter(
                "ink_session_affected_total",
                "Real affected nodes summed over batches",
            ),
            output_changed: r.counter(
                "ink_session_output_changed_total",
                "Nodes whose final output changed, summed over batches",
            ),
            batch_latency: r.histogram(
                "ink_session_batch_latency_ns",
                "Per-batch ingest latency in nanoseconds",
            ),
            phases: [
                phase("ink_pipeline_phase_generate_ns", "Per-batch generate-phase wall time"),
                phase("ink_pipeline_phase_group_ns", "Per-batch group-phase wall time"),
                phase("ink_pipeline_phase_apply_ns", "Per-batch apply-phase wall time"),
                phase("ink_pipeline_phase_write_ns", "Per-batch write-phase wall time"),
                phase(
                    "ink_pipeline_phase_next_messages_ns",
                    "Per-batch next-messages-phase wall time",
                ),
            ],
            spot_audits: r.counter("ink_drift_spot_audits_total", "Spot audits run"),
            full_audits: r.counter("ink_drift_full_audits_total", "Full audits run"),
            breaches: r.counter(
                "ink_drift_breaches_total",
                "Audits that breached tolerance (including NaN detections)",
            ),
            resyncs: r.counter("ink_drift_resyncs_total", "Breaches answered with a resync"),
            nan_detected: r.counter(
                "ink_drift_nan_detected_total",
                "Audits that found non-finite state",
            ),
            audit_ns: r.counter("ink_drift_audit_ns_total", "Wall time spent inside audits"),
            resync_ns: r.counter("ink_drift_resync_ns_total", "Wall time spent inside resyncs"),
            max_deviation: r.gauge(
                "ink_drift_max_deviation",
                "Worst finite per-channel deviation ever measured",
            ),
            scratch_bytes: r.gauge(
                "ink_scratch_bytes",
                "Engine scratch-pool occupancy after the latest ingest",
            ),
            gemm_rows: r.counter(
                "ink_gemm_rows_total",
                "Rows pushed through the batched gather\u{2192}GEMM\u{2192}scatter transform",
            ),
            gemm_flops: r.counter(
                "ink_gemm_flops_total",
                "Floating-point operations spent in batched GEMM kernels",
            ),
            gemm_batch_rows: r.histogram(
                "ink_gemm_batch_rows",
                "Per-layer batched-transform row counts (batched layers only)",
            ),
            apply_rows: r.counter(
                "ink_apply_rows_total",
                "Neighbor rows folded by the batched apply-phase recomputation",
            ),
            apply_batch_rows: r.histogram(
                "ink_apply_batch_rows",
                "Per-layer batched apply-phase row counts (batched layers only)",
            ),
            dispatch: DispatchArm::ALL.map(|arm| {
                r.counter(
                    &format!("ink_dispatch_{}_total", arm.name()),
                    "Update rounds the adaptive dispatcher ran with this arm",
                )
            }),
        }
    }
}

/// SplitMix64 — the session's spot-sampling stream. Inline so the core crate
/// stays free of RNG dependencies; statistically fine for picking audit
/// vertices.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StreamSession {
    /// Wraps an engine with default session settings.
    pub fn new(engine: InkStream) -> Self {
        Self::with_config(engine, SessionConfig::default())
    }

    /// Wraps an engine with explicit settings.
    ///
    /// # Panics
    ///
    /// On a malformed config: `max_batch` or `latency_window` of 0, an audit
    /// interval of `Some(0)` (ambiguous — use `None` to disable), a spot
    /// policy sampling 0 vertices, or a non-finite/negative tolerance.
    pub fn with_config(engine: InkStream, config: SessionConfig) -> Self {
        Self::with_observability(
            engine,
            config,
            Arc::new(MetricsRegistry::new()),
            Arc::new(Tracer::new(DEFAULT_TRACE_CAPACITY)),
        )
    }

    /// Wraps an engine, registering the session's instruments into an
    /// existing registry and recording spans into an existing tracer.
    ///
    /// This is how a serving front end (or a test) shares one scrape surface
    /// with the session: hand in the registry, keep a clone, and every
    /// session metric becomes visible to [`MetricsRegistry::render_prometheus`]
    /// alongside the caller's own instruments.
    ///
    /// # Panics
    ///
    /// On a malformed config (see [`StreamSession::with_config`]) or when the
    /// registry already holds an `ink_session_*` name as a different
    /// instrument kind.
    pub fn with_observability(
        engine: InkStream,
        config: SessionConfig,
        registry: Arc<MetricsRegistry>,
        tracer: Arc<Tracer>,
    ) -> Self {
        assert!(config.max_batch >= 1, "SessionConfig: max_batch must be at least 1");
        assert!(config.latency_window >= 1, "SessionConfig: latency_window must be at least 1");
        let d = &config.drift;
        assert!(
            d.spot_every != Some(0),
            "DriftPolicy: spot_every must be None (disabled) or at least Some(1)"
        );
        assert!(
            d.full_every != Some(0),
            "DriftPolicy: full_every must be None (disabled) or at least Some(1)"
        );
        assert!(
            d.spot_every.is_none() || d.spot_samples >= 1,
            "DriftPolicy: a spot policy must sample at least one vertex"
        );
        assert!(
            d.tolerance.is_finite() && d.tolerance >= 0.0,
            "DriftPolicy: tolerance must be finite and non-negative"
        );
        let sample_state = config.drift.seed;
        let inst = SessionInstruments::register(&registry);
        Self {
            engine,
            config,
            registry,
            tracer,
            inst,
            batch_latencies: VecDeque::new(),
            sample_state,
        }
    }

    /// The session's metrics registry (shared; render with
    /// [`MetricsRegistry::render_prometheus`]).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The session's span tracer (shared; dump with
    /// [`Tracer::dump_chrome_trace`]).
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The wrapped engine (read access).
    pub fn engine(&self) -> &InkStream {
        &self.engine
    }

    /// The wrapped engine (e.g. for vertex operations).
    pub fn engine_mut(&mut self) -> &mut InkStream {
        &mut self.engine
    }

    /// Audit/resync counters so far, folded from the registry instruments.
    pub fn drift_stats(&self) -> DriftStats {
        DriftStats {
            spot_audits: self.inst.spot_audits.get(),
            full_audits: self.inst.full_audits.get(),
            breaches: self.inst.breaches.get(),
            resyncs: self.inst.resyncs.get(),
            nan_detected: self.inst.nan_detected.get(),
            max_deviation: self.inst.max_deviation.get() as f32,
            audit_time: Duration::from_nanos(self.inst.audit_ns.get()),
            resync_time: Duration::from_nanos(self.inst.resync_ns.get()),
        }
    }

    /// Per-batch latencies currently retained (at most
    /// [`SessionConfig::latency_window`]).
    pub fn latency_samples(&self) -> usize {
        self.batch_latencies.len()
    }

    /// Applies a delta, split into batches of at most `max_batch` changes,
    /// then runs whichever audit the [`DriftPolicy`] schedules for this
    /// ingest. On a breach with [`DriftAction::Fail`] the returned error
    /// carries the ingest report — the batches were already applied.
    pub fn ingest(&mut self, delta: &DeltaBatch) -> Result<IngestReport, DriftError> {
        let t0 = Instant::now();
        let mut report = IngestReport::default();
        for chunk in delta.changes().chunks(self.config.max_batch) {
            let batch = DeltaBatch::new(chunk.to_vec());
            let t = Instant::now();
            let r: UpdateReport = self.engine.apply_delta(&batch);
            let elapsed = t.elapsed();
            if self.batch_latencies.len() == self.config.latency_window {
                self.batch_latencies.pop_front();
            }
            self.batch_latencies.push_back(elapsed);
            self.inst.batch_latency.record(elapsed.as_nanos() as u64);
            self.inst.batches.inc();
            report.batches += 1;
            report.skipped += r.skipped_changes;
            report.changes_applied += chunk.len() - r.skipped_changes;
            report.output_changed += r.output_changed;
            self.inst.affected.add(r.real_affected);
            self.inst.gemm_rows.add(r.batched_rows() as u64);
            self.inst.gemm_flops.add(r.gemm_flops);
            self.inst.apply_rows.add(r.batched_apply_rows() as u64);
            for layer in &r.per_layer {
                if layer.batched_rows > 0 {
                    self.inst.gemm_batch_rows.record(layer.batched_rows as u64);
                }
                if layer.batched_apply_rows > 0 {
                    self.inst.apply_batch_rows.record(layer.batched_apply_rows as u64);
                }
            }
            if let Some(arm) = r.dispatch {
                let i = DispatchArm::ALL.iter().position(|&a| a == arm).expect("ALL is total");
                self.inst.dispatch[i].inc();
            }
            self.record_phases(t, elapsed, &r.phase_times());
        }
        self.inst.ingests.inc();
        self.inst.changes.add(report.changes_applied as u64);
        self.inst.skipped.add(report.skipped as u64);
        self.inst.output_changed.add(report.output_changed);
        self.inst.scratch_bytes.set_u64(self.engine.scratch_bytes() as u64);

        if self.config.drift.enabled() {
            if let Some(err) = self.run_audit(&mut report) {
                report.elapsed = t0.elapsed();
                return Err(DriftError { report, ..err });
            }
        }
        report.elapsed = t0.elapsed();
        Ok(report)
    }

    /// Feeds one batch's engine-measured phase times into the phase
    /// histograms and synthesizes tracer spans: one `"batch"` span for the
    /// whole `apply_delta` call and one consecutive span per phase starting
    /// at the batch start (the engine measures phases per layer; the spans
    /// show their per-batch totals laid end to end).
    fn record_phases(&self, start: Instant, elapsed: Duration, pt: &PhaseTimes) {
        self.tracer.record_at("pipeline", "batch", start, elapsed);
        let durations = [pt.generate, pt.group, pt.apply, pt.write, pt.next_messages];
        let mut cursor = start;
        for ((hist, name), dur) in self.inst.phases.iter().zip(PHASE_NAMES).zip(durations) {
            hist.record(dur.as_nanos() as u64);
            self.tracer.record_at("pipeline", name, cursor, dur);
            cursor += dur;
        }
    }

    /// Runs the audit due this ingest, if any, mutating the report and the
    /// drift stats. Returns the error shell (without report) on a failing
    /// breach.
    fn run_audit(&mut self, report: &mut IngestReport) -> Option<DriftError> {
        let policy = self.config.drift;
        let ingests = self.inst.ingests.get() as usize;
        let due_full = policy.full_every.is_some_and(|e| ingests.is_multiple_of(e));
        let due_spot = !due_full && policy.spot_every.is_some_and(|e| ingests.is_multiple_of(e));
        if !due_full && !due_spot {
            return None;
        }
        let t_audit = Instant::now();
        let (diff, span_name) = if due_full {
            self.inst.full_audits.inc();
            report.audit = Some(AuditKind::Full);
            (self.engine.audit_full(), "full_audit")
        } else {
            self.inst.spot_audits.inc();
            report.audit = Some(AuditKind::Spot);
            let n = self.engine.graph().num_vertices() as u64;
            let sample: Vec<VertexId> = (0..policy.spot_samples)
                .map(|_| (splitmix64(&mut self.sample_state) % n.max(1)) as VertexId)
                .collect();
            (self.engine.audit_vertices(&sample), "spot_audit")
        };
        report.audit_time = t_audit.elapsed();
        self.inst.audit_ns.add(report.audit_time.as_nanos() as u64);
        self.tracer.record_at("drift", span_name, t_audit, report.audit_time);
        report.verified_diff = Some(diff);
        if diff.is_nan() {
            self.inst.nan_detected.inc();
        } else {
            self.inst.max_deviation.set_max(diff as f64);
        }
        // NaN never compares under tolerance: breach explicitly.
        let breached = diff.is_nan() || diff > policy.tolerance;
        report.drift_breached = breached;
        if !breached {
            return None;
        }
        self.inst.breaches.inc();
        match policy.action {
            DriftAction::Warn => None,
            DriftAction::Resync => {
                let t_resync = Instant::now();
                let r = self.engine.resync();
                self.inst.resyncs.inc();
                self.inst.resync_ns.add(r.elapsed.as_nanos() as u64);
                self.tracer.record_at("drift", "resync", t_resync, r.elapsed);
                report.resynced = true;
                None
            }
            DriftAction::Fail => Some(DriftError {
                max_diff: diff,
                tolerance: policy.tolerance,
                report: IngestReport::default(),
            }),
        }
    }

    /// Latency percentile over the retained batch window.
    pub fn latency_percentile(&self, p: f64) -> Duration {
        let mut sorted: Vec<Duration> = self.batch_latencies.iter().copied().collect();
        sorted.sort_unstable();
        percentile_of(&sorted, p)
    }

    /// Rolling summary, folded from the registry instruments (exact batch
    /// percentiles come from the retained ring, sorted once).
    pub fn summary(&self) -> SessionSummary {
        let mut sorted: Vec<Duration> = self.batch_latencies.iter().copied().collect();
        sorted.sort_unstable();
        let phase_sum = |i: usize| Duration::from_nanos(self.inst.phases[i].sum());
        SessionSummary {
            ingests: self.inst.ingests.get() as usize,
            changes: self.inst.changes.get() as usize,
            latency: (
                percentile_of(&sorted, 0.50),
                percentile_of(&sorted, 0.90),
                percentile_of(&sorted, 0.99),
                sorted.last().copied().unwrap_or_default(),
            ),
            avg_real_affected: self.inst.affected.get() as f64
                / self.inst.batches.get().max(1) as f64,
            phase_times: PhaseTimes {
                generate: phase_sum(0),
                group: phase_sum(1),
                apply: phase_sum(2),
                write: phase_sum(3),
                next_messages: phase_sum(4),
            },
            drift: self.drift_stats(),
            serve: ServeStats::default(),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile_of(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UpdateConfig;
    use ink_graph::generators::erdos_renyi;
    use ink_gnn::{Aggregator, Model};
    use ink_tensor::init::{seeded_rng, uniform};
    use rand::SeedableRng;

    fn engine(seed: u64) -> InkStream {
        let mut rng = seeded_rng(seed);
        let g = erdos_renyi(&mut rng, 40, 100);
        let x = uniform(&mut rng, 40, 4, -1.0, 1.0);
        let model = Model::gcn(&mut rng, &[4, 5, 3], Aggregator::Max);
        InkStream::new(model, g, x, UpdateConfig::default()).unwrap()
    }

    fn delta(s: &StreamSession, seed: u64, n: usize) -> DeltaBatch {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        DeltaBatch::random_scenario(s.engine().graph(), &mut rng, n)
    }

    #[test]
    fn ingest_splits_into_batches() {
        let mut s = StreamSession::with_config(
            engine(1),
            SessionConfig { max_batch: 4, ..SessionConfig::default() },
        );
        let d = delta(&s, 2, 10);
        let r = s.ingest(&d).unwrap();
        assert_eq!(r.batches, 3); // 4 + 4 + 2
        assert_eq!(r.changes_applied + r.skipped, 10);
        let sum = s.summary();
        assert_eq!(sum.ingests, 1);
        assert!(sum.latency.3 >= sum.latency.0, "max ≥ p50");
    }

    #[test]
    fn full_audit_passes_for_monotonic_engine() {
        let mut s = StreamSession::with_config(
            engine(3),
            SessionConfig { drift: DriftPolicy::full(1, 0.0), ..SessionConfig::default() },
        );
        let d = delta(&s, 4, 8);
        let r = s.ingest(&d).unwrap();
        assert_eq!(r.verified_diff, Some(0.0), "max aggregation is bitwise exact");
        assert_eq!(r.audit, Some(AuditKind::Full));
        assert!(!r.drift_breached);
        assert_eq!(s.summary().drift.full_audits, 1);
    }

    #[test]
    fn audit_interval_is_respected() {
        let mut s = StreamSession::with_config(
            engine(5),
            SessionConfig { drift: DriftPolicy::full(2, 1e-3), ..SessionConfig::default() },
        );
        let r1 = s.ingest(&delta(&s, 6, 4)).unwrap();
        assert!(r1.verified_diff.is_none());
        assert!(r1.audit.is_none());
        let r2 = s.ingest(&delta(&s, 7, 4)).unwrap();
        assert!(r2.verified_diff.is_some());
    }

    #[test]
    fn spot_audit_is_clean_and_counted() {
        let mut s = StreamSession::with_config(
            engine(14),
            SessionConfig { drift: DriftPolicy::spot(1, 4, 0.0), ..SessionConfig::default() },
        );
        for i in 0..3 {
            let d = delta(&s, 20 + i, 4);
            let r = s.ingest(&d).unwrap();
            assert_eq!(r.audit, Some(AuditKind::Spot));
            assert_eq!(r.verified_diff, Some(0.0), "monotonic spot audits are exact");
            assert!(r.audit_time > Duration::ZERO);
        }
        let drift = s.summary().drift;
        assert_eq!(drift.spot_audits, 3);
        assert_eq!(drift.breaches, 0);
        assert!(drift.audit_time > Duration::ZERO);
    }

    #[test]
    fn full_audit_takes_priority_over_spot() {
        let mut s = StreamSession::with_config(
            engine(15),
            SessionConfig {
                drift: DriftPolicy {
                    spot_every: Some(1),
                    full_every: Some(2),
                    tolerance: 1e-3,
                    ..DriftPolicy::default()
                },
                ..SessionConfig::default()
            },
        );
        let r1 = s.ingest(&delta(&s, 30, 4)).unwrap();
        assert_eq!(r1.audit, Some(AuditKind::Spot));
        let r2 = s.ingest(&delta(&s, 31, 4)).unwrap();
        assert_eq!(r2.audit, Some(AuditKind::Full));
    }

    #[test]
    fn warn_action_records_breach_and_continues() {
        let mut s = StreamSession::with_config(
            engine(16),
            SessionConfig {
                drift: DriftPolicy::full(1, 0.0).with_action(DriftAction::Warn),
                ..SessionConfig::default()
            },
        );
        s.engine_mut().state_mut().h.set(0, 0, f32::NAN);
        let r = s.ingest(&delta(&s, 32, 4)).unwrap();
        assert!(r.drift_breached);
        assert!(!r.resynced);
        let drift = s.summary().drift;
        assert_eq!(drift.breaches, 1);
        assert_eq!(drift.nan_detected, 1);
        assert_eq!(drift.resyncs, 0);
    }

    #[test]
    fn fail_action_carries_the_ingest_report() {
        let mut s = StreamSession::with_config(
            engine(17),
            SessionConfig {
                max_batch: 2,
                drift: DriftPolicy::full(1, 0.0),
                ..SessionConfig::default()
            },
        );
        s.engine_mut().state_mut().alpha[0].set(3, 1, f32::NAN);
        let err = s.ingest(&delta(&s, 33, 5)).unwrap_err();
        assert!(err.max_diff.is_nan());
        assert_eq!(err.report.batches, 3, "the applied work survives in the error");
        assert!(err.report.drift_breached);
        assert!(err.report.elapsed > Duration::ZERO);
        assert!(err.to_string().contains("poisoned"));
    }

    #[test]
    fn latency_window_caps_retained_samples() {
        let mut s = StreamSession::with_config(
            engine(18),
            SessionConfig { max_batch: 1, latency_window: 5, ..SessionConfig::default() },
        );
        for i in 0..4 {
            let d = delta(&s, 40 + i, 3);
            s.ingest(&d).unwrap();
        }
        assert_eq!(s.latency_samples(), 5, "12 batches, window of 5");
        let sum = s.summary();
        assert!(sum.latency.3 >= sum.latency.0);
        assert!(sum.avg_real_affected > 0.0, "averages still use all batches ever run");
    }

    #[test]
    #[should_panic(expected = "spot_every")]
    fn zero_spot_interval_is_rejected() {
        let cfg = SessionConfig {
            drift: DriftPolicy { spot_every: Some(0), ..DriftPolicy::default() },
            ..SessionConfig::default()
        };
        StreamSession::with_config(engine(19), cfg);
    }

    #[test]
    #[should_panic(expected = "full_every")]
    fn zero_full_interval_is_rejected() {
        let cfg = SessionConfig {
            drift: DriftPolicy { full_every: Some(0), ..DriftPolicy::default() },
            ..SessionConfig::default()
        };
        StreamSession::with_config(engine(20), cfg);
    }

    #[test]
    #[should_panic(expected = "sample at least one vertex")]
    fn zero_spot_samples_is_rejected() {
        let cfg = SessionConfig {
            drift: DriftPolicy { spot_every: Some(1), spot_samples: 0, ..DriftPolicy::default() },
            ..SessionConfig::default()
        };
        StreamSession::with_config(engine(21), cfg);
    }

    #[test]
    fn summary_accumulates_across_ingests() {
        let mut s = StreamSession::new(engine(8));
        for i in 0..3 {
            let d = delta(&s, 10 + i, 6);
            s.ingest(&d).unwrap();
        }
        let sum = s.summary();
        assert_eq!(sum.ingests, 3);
        assert!(sum.changes > 0);
        assert!(sum.avg_real_affected > 0.0);
    }

    #[test]
    fn summary_accumulates_phase_times() {
        let mut s = StreamSession::new(engine(11));
        s.ingest(&delta(&s, 12, 8)).unwrap();
        let once = s.summary().phase_times;
        assert!(once.total() > Duration::ZERO, "batches must contribute phase times");
        s.ingest(&delta(&s, 13, 8)).unwrap();
        let twice = s.summary().phase_times;
        assert!(twice.total() > once.total(), "phase times accumulate across ingests");
    }

    #[test]
    fn gemm_instruments_are_scrapeable() {
        let mut s = StreamSession::new(engine(22));
        s.ingest(&delta(&s, 50, 8)).unwrap();
        let scrape = s.metrics().render_prometheus();
        assert!(scrape.contains("ink_gemm_rows_total"), "row counter must be registered");
        assert!(scrape.contains("ink_gemm_flops_total"), "flop counter must be registered");
        assert!(scrape.contains("ink_gemm_batch_rows"), "row histogram must be registered");
        assert!(scrape.contains("ink_apply_rows_total"), "apply row counter must be registered");
        assert!(scrape.contains("ink_apply_batch_rows"), "apply histogram must be registered");
        assert!(scrape.contains("ink_dispatch_sequential_total"), "dispatch counters registered");
        assert!(scrape.contains("ink_dispatch_batched_total"));
        assert!(scrape.contains("ink_dispatch_parallel_total"));
    }

    #[test]
    fn empty_delta_is_harmless() {
        let mut s = StreamSession::new(engine(9));
        let r = s.ingest(&DeltaBatch::new(vec![])).unwrap();
        assert_eq!(r.batches, 0);
        assert_eq!(s.latency_percentile(0.99), Duration::ZERO);
    }
}
