//! Streaming session: the operational wrapper a deployment actually runs.
//!
//! [`StreamSession`] owns an [`InkStream`] engine and adds the concerns the
//! paper's evaluation protocol implies but the core algorithm doesn't cover:
//! splitting oversized deltas into refresh batches (speedup falls with ΔG —
//! paper Fig. 7 — so bounded batches keep latency predictable), rolling
//! latency statistics, and optional periodic self-verification against full
//! recomputation (cheap insurance for accumulative aggregation, where float
//! drift is bounded but nonzero).

use crate::{InkStream, PhaseTimes, UpdateReport};
use ink_graph::DeltaBatch;
use std::time::{Duration, Instant};

/// Session tunables.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Split incoming deltas into batches of at most this many changes.
    pub max_batch: usize,
    /// Verify against full recomputation every `n` ingests (None = never).
    pub verify_every: Option<usize>,
    /// Maximum per-channel deviation tolerated by verification.
    pub verify_tolerance: f32,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self { max_batch: 1_000, verify_every: None, verify_tolerance: 1e-3 }
    }
}

/// The incremental state drifted past the verification tolerance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftError {
    /// Observed maximum deviation.
    pub max_diff: f32,
    /// Configured tolerance.
    pub tolerance: f32,
}

impl std::fmt::Display for DriftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "incremental state drifted: max diff {} > tolerance {}", self.max_diff, self.tolerance)
    }
}

impl std::error::Error for DriftError {}

/// What one [`StreamSession::ingest`] call did.
#[derive(Clone, Debug, Default)]
pub struct IngestReport {
    /// Batches the delta was split into.
    pub batches: usize,
    /// Changes applied (excluding skipped no-ops).
    pub changes_applied: usize,
    /// No-op changes skipped.
    pub skipped: usize,
    /// Nodes whose final output changed (summed over batches).
    pub output_changed: u64,
    /// Wall-clock time of the whole ingest.
    pub elapsed: Duration,
    /// Max deviation measured, when this ingest triggered verification.
    pub verified_diff: Option<f32>,
}

/// Rolling summary of a session.
#[derive(Clone, Debug, Default)]
pub struct SessionSummary {
    /// Total ingest calls.
    pub ingests: usize,
    /// Total edge changes applied.
    pub changes: usize,
    /// Latency percentiles over per-batch updates: (p50, p90, p99, max).
    pub latency: (Duration, Duration, Duration, Duration),
    /// Mean real-affected nodes per batch.
    pub avg_real_affected: f64,
    /// Per-phase pipeline wall time accumulated over every batch — shows
    /// where the session's update budget actually goes.
    pub phase_times: PhaseTimes,
}

/// An engine plus operational bookkeeping for long-running streams.
///
/// ```
/// use ink_graph::{DeltaBatch, DynGraph, EdgeChange};
/// use ink_gnn::{Aggregator, Model};
/// use ink_tensor::init;
/// use inkstream::{InkStream, StreamSession, UpdateConfig};
///
/// let mut rng = init::seeded_rng(1);
/// let g = DynGraph::undirected_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// let x = init::uniform(&mut rng, 4, 6, -1.0, 1.0);
/// let model = Model::gcn(&mut rng, &[6, 8, 4], Aggregator::Max);
/// let engine = InkStream::new(model, g, x, UpdateConfig::default()).unwrap();
///
/// let mut session = StreamSession::new(engine);
/// let report = session
///     .ingest(&DeltaBatch::new(vec![EdgeChange::insert(0, 3)]))
///     .unwrap();
/// assert_eq!(report.changes_applied, 1);
/// assert_eq!(session.summary().ingests, 1);
/// ```
pub struct StreamSession {
    engine: InkStream,
    config: SessionConfig,
    ingests: usize,
    changes: usize,
    affected_total: u64,
    batch_latencies: Vec<Duration>,
    phase_times: PhaseTimes,
}

impl StreamSession {
    /// Wraps an engine with default session settings.
    pub fn new(engine: InkStream) -> Self {
        Self::with_config(engine, SessionConfig::default())
    }

    /// Wraps an engine with explicit settings.
    pub fn with_config(engine: InkStream, config: SessionConfig) -> Self {
        assert!(config.max_batch >= 1);
        Self {
            engine,
            config,
            ingests: 0,
            changes: 0,
            affected_total: 0,
            batch_latencies: Vec::new(),
            phase_times: PhaseTimes::default(),
        }
    }

    /// The wrapped engine (read access).
    pub fn engine(&self) -> &InkStream {
        &self.engine
    }

    /// The wrapped engine (e.g. for vertex operations).
    pub fn engine_mut(&mut self) -> &mut InkStream {
        &mut self.engine
    }

    /// Applies a delta, split into batches of at most `max_batch` changes,
    /// and runs periodic verification when configured.
    pub fn ingest(&mut self, delta: &DeltaBatch) -> Result<IngestReport, DriftError> {
        let t0 = Instant::now();
        let mut report = IngestReport::default();
        for chunk in delta.changes().chunks(self.config.max_batch.max(1)) {
            let batch = DeltaBatch::new(chunk.to_vec());
            let t = Instant::now();
            let r: UpdateReport = self.engine.apply_delta(&batch);
            self.batch_latencies.push(t.elapsed());
            report.batches += 1;
            report.skipped += r.skipped_changes;
            report.changes_applied += chunk.len() - r.skipped_changes;
            report.output_changed += r.output_changed;
            self.affected_total += r.real_affected;
            self.phase_times.merge(&r.phase_times());
        }
        self.ingests += 1;
        self.changes += report.changes_applied;

        if let Some(every) = self.config.verify_every {
            if every > 0 && self.ingests.is_multiple_of(every) {
                let reference = self.engine.recompute_reference();
                let diff = self.engine.output().max_abs_diff(&reference);
                report.verified_diff = Some(diff);
                if diff > self.config.verify_tolerance {
                    return Err(DriftError { max_diff: diff, tolerance: self.config.verify_tolerance });
                }
            }
        }
        report.elapsed = t0.elapsed();
        Ok(report)
    }

    /// Latency percentile over all batches so far.
    pub fn latency_percentile(&self, p: f64) -> Duration {
        if self.batch_latencies.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.batch_latencies.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }

    /// Rolling summary.
    pub fn summary(&self) -> SessionSummary {
        SessionSummary {
            ingests: self.ingests,
            changes: self.changes,
            latency: (
                self.latency_percentile(0.50),
                self.latency_percentile(0.90),
                self.latency_percentile(0.99),
                self.batch_latencies.iter().max().copied().unwrap_or_default(),
            ),
            avg_real_affected: self.affected_total as f64
                / self.batch_latencies.len().max(1) as f64,
            phase_times: self.phase_times,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UpdateConfig;
    use ink_graph::generators::erdos_renyi;
    use ink_gnn::{Aggregator, Model};
    use ink_tensor::init::{seeded_rng, uniform};
    use rand::SeedableRng;

    fn engine(seed: u64) -> InkStream {
        let mut rng = seeded_rng(seed);
        let g = erdos_renyi(&mut rng, 40, 100);
        let x = uniform(&mut rng, 40, 4, -1.0, 1.0);
        let model = Model::gcn(&mut rng, &[4, 5, 3], Aggregator::Max);
        InkStream::new(model, g, x, UpdateConfig::default()).unwrap()
    }

    fn delta(s: &StreamSession, seed: u64, n: usize) -> DeltaBatch {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        DeltaBatch::random_scenario(s.engine().graph(), &mut rng, n)
    }

    #[test]
    fn ingest_splits_into_batches() {
        let mut s = StreamSession::with_config(
            engine(1),
            SessionConfig { max_batch: 4, ..SessionConfig::default() },
        );
        let d = delta(&s, 2, 10);
        let r = s.ingest(&d).unwrap();
        assert_eq!(r.batches, 3); // 4 + 4 + 2
        assert_eq!(r.changes_applied + r.skipped, 10);
        let sum = s.summary();
        assert_eq!(sum.ingests, 1);
        assert!(sum.latency.3 >= sum.latency.0, "max ≥ p50");
    }

    #[test]
    fn verification_passes_for_monotonic_engine() {
        let mut s = StreamSession::with_config(
            engine(3),
            SessionConfig { verify_every: Some(1), verify_tolerance: 0.0, max_batch: 100 },
        );
        let d = delta(&s, 4, 8);
        let r = s.ingest(&d).unwrap();
        assert_eq!(r.verified_diff, Some(0.0), "max aggregation is bitwise exact");
    }

    #[test]
    fn verification_interval_is_respected() {
        let mut s = StreamSession::with_config(
            engine(5),
            SessionConfig { verify_every: Some(2), ..SessionConfig::default() },
        );
        let r1 = s.ingest(&delta(&s, 6, 4)).unwrap();
        assert!(r1.verified_diff.is_none());
        let r2 = s.ingest(&delta(&s, 7, 4)).unwrap();
        assert!(r2.verified_diff.is_some());
    }

    #[test]
    fn summary_accumulates_across_ingests() {
        let mut s = StreamSession::new(engine(8));
        for i in 0..3 {
            let d = delta(&s, 10 + i, 6);
            s.ingest(&d).unwrap();
        }
        let sum = s.summary();
        assert_eq!(sum.ingests, 3);
        assert!(sum.changes > 0);
        assert!(sum.avg_real_affected > 0.0);
    }

    #[test]
    fn summary_accumulates_phase_times() {
        let mut s = StreamSession::new(engine(11));
        s.ingest(&delta(&s, 12, 8)).unwrap();
        let once = s.summary().phase_times;
        assert!(once.total() > Duration::ZERO, "batches must contribute phase times");
        s.ingest(&delta(&s, 13, 8)).unwrap();
        let twice = s.summary().phase_times;
        assert!(twice.total() > once.total(), "phase times accumulate across ingests");
    }

    #[test]
    fn empty_delta_is_harmless() {
        let mut s = StreamSession::new(engine(9));
        let r = s.ingest(&DeltaBatch::new(vec![])).unwrap();
        assert_eq!(r.batches, 0);
        assert_eq!(s.latency_percentile(0.99), Duration::ZERO);
    }
}
