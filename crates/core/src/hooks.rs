//! User-defined event functions (paper §II-D).
//!
//! InkStream's native events cover the neighborhood-aggregation term of a
//! layer. Model structure beyond it — GraphSAGE's `W₂·h_u`, GIN's
//! `(1+ε)·h_u` — is expressed with *user events* through three interfaces,
//! mirroring the paper's `user_propagate` / `user_grouping` / `user_apply`:
//!
//! * the engine keeps one cached contribution tensor per hooked layer
//!   (initialised by [`UserHooks::init_cache`] during bootstrap);
//! * when a node's layer-`l` message changes, [`UserHooks::user_propagate`]
//!   emits events carrying the *change* of that node's extra contribution;
//! * events heading to the same node are reduced by
//!   [`UserHooks::user_grouping`] and folded into the cache by
//!   [`UserHooks::user_apply`];
//! * [`UserHooks::contribute`] injects the cached contribution into the
//!   node's pre-activation update.
//!
//! [`LinearSelfTerm`] is the ≲10-lines-of-configuration implementation the
//! paper's Fig. 6 sketches for GraphSAGE; the integration test
//! `hooked_sage_matches_builtin` proves it bitwise-equivalent to the native
//! self-dependent path.

use ink_graph::VertexId;
use ink_tensor::{Linear, Matrix};

/// A user-defined event: target node and an opaque payload interpreted by the
/// hooks that created it.
#[derive(Clone, Debug, PartialEq)]
pub struct UserEvent {
    /// The node whose cached contribution this event updates.
    pub target: VertexId,
    /// User-defined discriminator (multiple custom event kinds can coexist).
    pub tag: u16,
    /// The event payload.
    pub payload: Vec<f32>,
}

/// User extension points for model structure outside the native
/// neighborhood-aggregation events.
pub trait UserHooks: Send + Sync {
    /// Called once per layer at bootstrap: returns the initial cached
    /// contribution tensor for layer `l` (one row per vertex, `out_dim(l)`
    /// columns), or `None` when layer `l` has no custom term.
    fn init_cache(&self, layer: usize, messages: &Matrix) -> Option<Matrix>;

    /// Called when node `u`'s layer-`layer` message changes; returns the
    /// user events to deliver when that layer is processed.
    fn user_propagate(
        &self,
        layer: usize,
        node: VertexId,
        old_msg: &[f32],
        new_msg: &[f32],
    ) -> Vec<UserEvent>;

    /// Reduces the events heading to one node (default: keep all).
    fn user_grouping(&self, _layer: usize, events: Vec<UserEvent>) -> Vec<UserEvent> {
        events
    }

    /// Applies the grouped events to the node's cached contribution row.
    fn user_apply(&self, layer: usize, node: VertexId, cache_row: &mut [f32], events: &[UserEvent]);

    /// Injects the cached contribution into the pre-activation update output
    /// (default: element-wise add).
    fn contribute(&self, _layer: usize, _node: VertexId, out: &mut [f32], cache_row: &[f32]) {
        ink_tensor::ops::add_assign(out, cache_row);
    }
}

/// The paper's GraphSAGE configuration: a per-layer linear self-term
/// `W·m_{l,u}` maintained incrementally through user events that carry
/// `W·Δm`.
pub struct LinearSelfTerm {
    /// `weights[l]` is `Some(W)` for every layer with a self term.
    pub weights: Vec<Option<Linear>>,
}

impl LinearSelfTerm {
    /// Hooks from one optional linear self-term per layer.
    pub fn new(weights: Vec<Option<Linear>>) -> Self {
        Self { weights }
    }
}

impl UserHooks for LinearSelfTerm {
    fn init_cache(&self, layer: usize, messages: &Matrix) -> Option<Matrix> {
        let w = self.weights.get(layer)?.as_ref()?;
        let mut cache = Matrix::zeros(messages.rows(), w.out_dim());
        for u in 0..messages.rows() {
            let mut row = vec![0.0; w.out_dim()];
            w.weight().vecmul(messages.row(u), &mut row);
            cache.set_row(u, &row);
        }
        Some(cache)
    }

    fn user_propagate(
        &self,
        layer: usize,
        node: VertexId,
        old_msg: &[f32],
        new_msg: &[f32],
    ) -> Vec<UserEvent> {
        let Some(Some(w)) = self.weights.get(layer) else {
            return Vec::new();
        };
        // Carry W·(new − old): exact because the transform is linear.
        let mut old_t = vec![0.0; w.out_dim()];
        let mut new_t = vec![0.0; w.out_dim()];
        w.weight().vecmul(old_msg, &mut old_t);
        w.weight().vecmul(new_msg, &mut new_t);
        ink_tensor::ops::sub_assign(&mut new_t, &old_t);
        vec![UserEvent { target: node, tag: 0, payload: new_t }]
    }

    fn user_grouping(&self, _layer: usize, mut events: Vec<UserEvent>) -> Vec<UserEvent> {
        // Sum all deltas into one event.
        if events.len() <= 1 {
            return events;
        }
        let mut first = events.swap_remove(0);
        for e in &events {
            ink_tensor::ops::add_assign(&mut first.payload, &e.payload);
        }
        vec![first]
    }

    fn user_apply(
        &self,
        _layer: usize,
        _node: VertexId,
        cache_row: &mut [f32],
        events: &[UserEvent],
    ) {
        for e in events {
            ink_tensor::ops::add_assign(cache_row, &e.payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hooks_with_identity(dim: usize) -> LinearSelfTerm {
        LinearSelfTerm::new(vec![Some(Linear::identity(dim)), None])
    }

    #[test]
    fn init_cache_transforms_every_row() {
        let hooks = hooks_with_identity(2);
        let m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let cache = hooks.init_cache(0, &m).unwrap();
        assert_eq!(cache, m, "identity self-term caches the messages themselves");
        assert!(hooks.init_cache(1, &m).is_none(), "layer without self term");
    }

    #[test]
    fn propagate_carries_the_delta() {
        let hooks = hooks_with_identity(2);
        let evs = hooks.user_propagate(0, 7, &[1.0, 1.0], &[4.0, -1.0]);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].target, 7);
        assert_eq!(evs[0].payload, vec![3.0, -2.0]);
    }

    #[test]
    fn propagate_outside_hooked_layers_is_empty() {
        let hooks = hooks_with_identity(2);
        assert!(hooks.user_propagate(1, 0, &[1.0], &[2.0]).is_empty());
        assert!(hooks.user_propagate(9, 0, &[1.0], &[2.0]).is_empty());
    }

    #[test]
    fn grouping_sums_deltas() {
        let hooks = hooks_with_identity(2);
        let evs = vec![
            UserEvent { target: 3, tag: 0, payload: vec![1.0, 2.0] },
            UserEvent { target: 3, tag: 0, payload: vec![0.5, -1.0] },
        ];
        let reduced = hooks.user_grouping(0, evs);
        assert_eq!(reduced.len(), 1);
        assert_eq!(reduced[0].payload, vec![1.5, 1.0]);
    }

    #[test]
    fn apply_then_contribute_roundtrip() {
        let hooks = hooks_with_identity(2);
        let mut cache_row = vec![10.0, 20.0];
        hooks.user_apply(0, 3, &mut cache_row, &[UserEvent {
            target: 3,
            tag: 0,
            payload: vec![1.0, -1.0],
        }]);
        assert_eq!(cache_row, vec![11.0, 19.0]);
        let mut out = vec![100.0, 100.0];
        hooks.contribute(0, 3, &mut out, &cache_row);
        assert_eq!(out, vec![111.0, 119.0]);
    }
}
