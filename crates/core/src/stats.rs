//! Update statistics — the observables behind the paper's Figures 1b and 8
//! and Tables V and VI.

use crate::monotonic::Condition;
use ink_gnn::cost::DispatchArm;
use std::time::Duration;

/// Wall-clock time spent in each phase of the per-layer update pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Event generation: degree rescaling, ΔG seeding, effect propagation.
    pub generate: Duration,
    /// Target-sharded group-reduce.
    pub group: Duration,
    /// Per-target incremental update / recomputation.
    pub apply: Duration,
    /// Sequential write-back: α rows, conditions, user events, target merge.
    pub write: Duration,
    /// Next-layer message / final output rebuild.
    pub next_messages: Duration,
}

impl PhaseTimes {
    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.generate + self.group + self.apply + self.write + self.next_messages
    }

    /// Adds another measurement phase by phase.
    pub fn merge(&mut self, other: &PhaseTimes) {
        self.generate += other.generate;
        self.group += other.group;
        self.apply += other.apply;
        self.write += other.write;
        self.next_messages += other.next_messages;
    }

    /// Per-phase microsecond breakdown as JSON.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::{rounded, Json};
        let us = |d: Duration| rounded(d.as_secs_f64() * 1e6, 3);
        Json::obj([
            ("generate", us(self.generate)),
            ("group", us(self.group)),
            ("apply", us(self.apply)),
            ("write", us(self.write)),
            ("next_messages", us(self.next_messages)),
        ])
    }
}

/// How many targets fell into each evolvability condition (paper Fig. 8,
/// plus the accumulative path which is always incrementally updated).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConditionCounts {
    /// Resilient nodes — propagation pruned (monotonic only).
    pub resilient: u64,
    /// Incrementally updated without any reset.
    pub no_reset: u64,
    /// Incrementally updated under a covered reset.
    pub covered_reset: u64,
    /// Recomputed from the full neighborhood (exposed reset).
    pub exposed_reset: u64,
    /// Accumulative targets (always incrementally updated).
    pub accumulative: u64,
    /// Targets recomputed because incremental updates were disabled
    /// (ablation runs only).
    pub forced_recompute: u64,
}

impl ConditionCounts {
    /// Records one monotonic condition.
    pub fn record(&mut self, c: Condition) {
        match c {
            Condition::Resilient => self.resilient += 1,
            Condition::NoReset => self.no_reset += 1,
            Condition::CoveredReset => self.covered_reset += 1,
            Condition::ExposedReset => self.exposed_reset += 1,
        }
    }

    /// Total recorded targets.
    pub fn total(&self) -> u64 {
        self.resilient
            + self.no_reset
            + self.covered_reset
            + self.exposed_reset
            + self.accumulative
            + self.forced_recompute
    }

    /// Merges another count set into this one.
    pub fn merge(&mut self, other: &ConditionCounts) {
        self.resilient += other.resilient;
        self.no_reset += other.no_reset;
        self.covered_reset += other.covered_reset;
        self.exposed_reset += other.exposed_reset;
        self.accumulative += other.accumulative;
        self.forced_recompute += other.forced_recompute;
    }
}

/// Per-layer observations of one update round.
#[derive(Clone, Debug, Default)]
pub struct LayerStats {
    /// Events created for this layer (ΔG seeds + propagated).
    pub events_created: usize,
    /// Distinct target nodes after grouping.
    pub targets: usize,
    /// Targets whose aggregated neighborhood actually changed.
    pub alpha_changed: usize,
    /// Condition distribution for this layer.
    pub conditions: ConditionCounts,
    /// Rows the next-messages phase pushed through the batched
    /// gather→GEMM→scatter transform (0 when the per-node path ran).
    pub batched_rows: usize,
    /// Neighbor rows the apply phase folded through the batched panel
    /// recomputation (0 when every recompute took the scalar per-target
    /// loop).
    pub batched_apply_rows: usize,
    /// Per-phase wall times of this layer's pipeline pass.
    pub phases: PhaseTimes,
}

impl LayerStats {
    /// Adds another layer observation into this one (counts and phase times
    /// sum) — used when folding per-partition reports of the same layer.
    pub fn merge(&mut self, other: &LayerStats) {
        self.events_created += other.events_created;
        self.targets += other.targets;
        self.alpha_changed += other.alpha_changed;
        self.conditions.merge(&other.conditions);
        self.batched_rows += other.batched_rows;
        self.batched_apply_rows += other.batched_apply_rows;
        self.phases.merge(&other.phases);
    }
}

/// The report returned by every engine update.
#[derive(Clone, Debug, Default)]
pub struct UpdateReport {
    /// Per-layer breakdown.
    pub per_layer: Vec<LayerStats>,
    /// Wall-clock time of the update.
    pub elapsed: Duration,
    /// Distinct nodes touched across all layers (RNVV numerator).
    pub nodes_visited: u64,
    /// Distinct nodes whose aggregated neighborhood changed in any layer —
    /// the paper's *real affected* nodes (Fig. 1b).
    pub real_affected: u64,
    /// Nodes whose final output embedding changed.
    pub output_changed: u64,
    /// `f32` embedding values read (RMC numerator, reads).
    pub f32_read: u64,
    /// `f32` embedding values written (RMC numerator, writes).
    pub f32_written: u64,
    /// Requested changes that were no-ops against the current graph
    /// (duplicate inserts, missing removals) and were skipped.
    pub skipped_changes: usize,
    /// Floating-point operations spent in batched GEMM kernels during the
    /// next-messages phase (0 when every layer took the per-node path).
    pub gemm_flops: u64,
    /// The execution plan the adaptive dispatcher chose for this round;
    /// `None` when the engine ran with a fixed (non-adaptive) configuration.
    pub dispatch: Option<DispatchArm>,
    /// The *worst* (most expensive) condition each monotonic target hit
    /// across layers — the per-node view behind the paper's Fig. 8. Nodes of
    /// the theoretical affected area that are absent here were never even
    /// visited (their subtree was pruned upstream).
    pub per_node_condition: ink_graph::FxHashMap<ink_graph::VertexId, Condition>,
}

impl UpdateReport {
    /// Total condition counts across layers.
    pub fn conditions(&self) -> ConditionCounts {
        let mut total = ConditionCounts::default();
        for l in &self.per_layer {
            total.merge(&l.conditions);
        }
        total
    }

    /// Total events created across layers.
    pub fn events_created(&self) -> usize {
        self.per_layer.iter().map(|l| l.events_created).sum()
    }

    /// Total embedding traffic (reads + writes).
    pub fn traffic(&self) -> u64 {
        self.f32_read + self.f32_written
    }

    /// Per-phase wall times summed across layers.
    pub fn phase_times(&self) -> PhaseTimes {
        let mut total = PhaseTimes::default();
        for l in &self.per_layer {
            total.merge(&l.phases);
        }
        total
    }

    /// Rows transformed by the batched path, summed across layers.
    pub fn batched_rows(&self) -> usize {
        self.per_layer.iter().map(|l| l.batched_rows).sum()
    }

    /// Neighbor rows folded by the batched apply-phase recomputation,
    /// summed across layers.
    pub fn batched_apply_rows(&self) -> usize {
        self.per_layer.iter().map(|l| l.batched_apply_rows).sum()
    }

    /// Folds another report into this one, layer by layer — the
    /// partitioned-engine summary path, where each partition contributes one
    /// report for the *same* logical round. Counters and per-layer stats
    /// sum; `elapsed` takes the maximum (partitions run concurrently, so
    /// the round's wall time is the slowest partition's); `dispatch` keeps
    /// the first recorded arm; `per_node_condition` keeps each node's worst
    /// condition should the same node appear in both (it normally cannot —
    /// every target is owned by exactly one partition).
    pub fn absorb(&mut self, other: &UpdateReport) {
        if self.per_layer.len() < other.per_layer.len() {
            self.per_layer.resize_with(other.per_layer.len(), LayerStats::default);
        }
        for (mine, theirs) in self.per_layer.iter_mut().zip(&other.per_layer) {
            mine.merge(theirs);
        }
        self.elapsed = self.elapsed.max(other.elapsed);
        self.nodes_visited += other.nodes_visited;
        self.real_affected += other.real_affected;
        self.output_changed += other.output_changed;
        self.f32_read += other.f32_read;
        self.f32_written += other.f32_written;
        self.skipped_changes += other.skipped_changes;
        self.gemm_flops += other.gemm_flops;
        if self.dispatch.is_none() {
            self.dispatch = other.dispatch;
        }
        for (&v, &c) in &other.per_node_condition {
            self.per_node_condition
                .entry(v)
                .and_modify(|worst| {
                    if c.severity() > worst.severity() {
                        *worst = c;
                    }
                })
                .or_insert(c);
        }
    }

    /// Fraction of processed monotonic targets that avoided recomputation
    /// (pruned or incrementally updated) — the headline of paper Fig. 8.
    pub fn evolvable_fraction(&self) -> f64 {
        let c = self.conditions();
        let mono = c.resilient + c.no_reset + c.covered_reset + c.exposed_reset;
        if mono == 0 {
            return 0.0;
        }
        (c.resilient + c.no_reset + c.covered_reset) as f64 / mono as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_covers_all_conditions() {
        let mut c = ConditionCounts::default();
        c.record(Condition::Resilient);
        c.record(Condition::NoReset);
        c.record(Condition::CoveredReset);
        c.record(Condition::ExposedReset);
        assert_eq!((c.resilient, c.no_reset, c.covered_reset, c.exposed_reset), (1, 1, 1, 1));
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = ConditionCounts { resilient: 1, accumulative: 2, ..Default::default() };
        let b = ConditionCounts { resilient: 3, exposed_reset: 4, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.resilient, 4);
        assert_eq!(a.exposed_reset, 4);
        assert_eq!(a.accumulative, 2);
    }

    #[test]
    fn evolvable_fraction_excludes_accumulative() {
        let mut r = UpdateReport::default();
        r.per_layer.push(LayerStats {
            conditions: ConditionCounts {
                resilient: 6,
                no_reset: 2,
                covered_reset: 1,
                exposed_reset: 1,
                accumulative: 100,
                ..Default::default()
            },
            ..Default::default()
        });
        assert!((r.evolvable_fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn evolvable_fraction_of_empty_report_is_zero() {
        assert_eq!(UpdateReport::default().evolvable_fraction(), 0.0);
    }

    #[test]
    fn phase_times_sum_and_merge() {
        let a = PhaseTimes {
            generate: Duration::from_micros(10),
            group: Duration::from_micros(20),
            apply: Duration::from_micros(30),
            write: Duration::from_micros(5),
            next_messages: Duration::from_micros(35),
        };
        assert_eq!(a.total(), Duration::from_micros(100));
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.total(), Duration::from_micros(200));
        assert_eq!(b.group, Duration::from_micros(40));
    }

    #[test]
    fn report_aggregates_phase_times_across_layers() {
        let mut r = UpdateReport::default();
        for _ in 0..2 {
            r.per_layer.push(LayerStats {
                phases: PhaseTimes { apply: Duration::from_micros(7), ..Default::default() },
                ..Default::default()
            });
        }
        assert_eq!(r.phase_times().apply, Duration::from_micros(14));
        assert_eq!(r.phase_times().total(), Duration::from_micros(14));
    }

    #[test]
    fn absorb_sums_counters_and_maxes_elapsed() {
        let mut a = UpdateReport {
            elapsed: Duration::from_micros(50),
            real_affected: 3,
            f32_read: 10,
            ..Default::default()
        };
        a.per_layer.push(LayerStats { targets: 2, ..Default::default() });
        let mut b = UpdateReport {
            elapsed: Duration::from_micros(80),
            real_affected: 4,
            f32_written: 7,
            ..Default::default()
        };
        b.per_layer.push(LayerStats { targets: 5, ..Default::default() });
        b.per_layer.push(LayerStats { targets: 1, ..Default::default() });
        b.per_node_condition.insert(9, Condition::ExposedReset);
        a.absorb(&b);
        assert_eq!(a.elapsed, Duration::from_micros(80));
        assert_eq!(a.real_affected, 7);
        assert_eq!((a.f32_read, a.f32_written), (10, 7));
        assert_eq!(a.per_layer.len(), 2);
        assert_eq!(a.per_layer[0].targets, 7);
        assert_eq!(a.per_layer[1].targets, 1);
        assert_eq!(a.per_node_condition[&9], Condition::ExposedReset);
    }

    #[test]
    fn absorb_keeps_worst_per_node_condition() {
        let mut a = UpdateReport::default();
        a.per_node_condition.insert(1, Condition::NoReset);
        let mut b = UpdateReport::default();
        b.per_node_condition.insert(1, Condition::ExposedReset);
        b.per_node_condition.insert(2, Condition::Resilient);
        a.absorb(&b);
        assert_eq!(a.per_node_condition[&1], Condition::ExposedReset);
        assert_eq!(a.per_node_condition[&2], Condition::Resilient);
        // Absorbing a weaker condition does not downgrade.
        a.absorb(&{
            let mut c = UpdateReport::default();
            c.per_node_condition.insert(1, Condition::Resilient);
            c
        });
        assert_eq!(a.per_node_condition[&1], Condition::ExposedReset);
    }

    #[test]
    fn aggregates_across_layers() {
        let mut r = UpdateReport::default();
        for _ in 0..3 {
            r.per_layer.push(LayerStats {
                events_created: 5,
                conditions: ConditionCounts { no_reset: 2, ..Default::default() },
                ..Default::default()
            });
        }
        assert_eq!(r.events_created(), 15);
        assert_eq!(r.conditions().no_reset, 6);
    }
}
