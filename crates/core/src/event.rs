//! The event system.
//!
//! An *event* tells a target node to add or cancel the impact of an embedding
//! vector on its aggregated neighborhood (paper §II-B). Embedding vectors are
//! heavy and shared — one affected node sends the *same* old/new pair to all
//! of its neighbors — so, exactly as the paper prescribes, the lightweight
//! event metadata and the heavy payload vectors live in two separate stores:
//! [`Event`] is 12 bytes and points into a [`PayloadArena`].

use ink_graph::VertexId;

/// The operation an event performs on its target (paper §II-B: `Add`/`Del`
/// for monotonic aggregation, `Update` for accumulative; user-defined
/// extensions travel separately as [`crate::UserEvent`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventOp {
    /// Add the payload's impact (monotonic aggregation).
    Add,
    /// Cancel the payload's impact (monotonic aggregation).
    Del,
    /// Accumulate the signed payload (accumulative aggregation).
    Update,
}

/// Index of a payload vector inside a [`PayloadArena`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PayloadId(u32);

/// One event: operation, target node, payload reference, and the in-degree
/// change it implies at the target (±1 for ΔG edge events, 0 for effect
/// propagation — needed by the mean aggregator's denominator).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// What to do at the target.
    pub op: EventOp,
    /// The node whose aggregated neighborhood this event updates.
    pub target: VertexId,
    /// The embedding vector the operation refers to.
    pub payload: PayloadId,
    /// In-degree change at the target implied by this event.
    pub degree_delta: i8,
}

/// Flat storage for the fixed-dimension payload vectors of one layer's
/// events. Payloads are written once and shared by any number of events.
#[derive(Clone, Debug, Default)]
pub struct PayloadArena {
    dim: usize,
    data: Vec<f32>,
}

impl PayloadArena {
    /// An arena for `dim`-channel payloads.
    pub fn new(dim: usize) -> Self {
        Self { dim, data: Vec::new() }
    }

    /// Channel count of every payload.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored payloads.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// True when no payload has been stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Stores a payload, returning its shareable id.
    pub fn push(&mut self, payload: &[f32]) -> PayloadId {
        assert_eq!(payload.len(), self.dim, "payload dim mismatch");
        let id = self.len() as u32;
        self.data.extend_from_slice(payload);
        PayloadId(id)
    }

    /// Stores the element-wise negation of `payload` (accumulative edge
    /// removals carry `−m⁻`).
    pub fn push_negated(&mut self, payload: &[f32]) -> PayloadId {
        assert_eq!(payload.len(), self.dim, "payload dim mismatch");
        let id = self.len() as u32;
        self.data.extend(payload.iter().map(|x| -x));
        PayloadId(id)
    }

    /// Stores `new − old` (accumulative effect propagation carries the change
    /// in a neighbor's message).
    pub fn push_diff(&mut self, new: &[f32], old: &[f32]) -> PayloadId {
        assert_eq!(new.len(), self.dim, "payload dim mismatch");
        assert_eq!(old.len(), self.dim, "payload dim mismatch");
        let id = self.len() as u32;
        self.data.extend(new.iter().zip(old).map(|(n, o)| n - o));
        PayloadId(id)
    }

    /// Stores `payload · factor` (degree-rescaled messages carry the old
    /// vector scaled by the weight ratio).
    pub fn push_scaled(&mut self, payload: &[f32], factor: f32) -> PayloadId {
        assert_eq!(payload.len(), self.dim, "payload dim mismatch");
        let id = self.len() as u32;
        self.data.extend(payload.iter().map(|x| x * factor));
        PayloadId(id)
    }

    /// The payload for `id`.
    #[inline]
    pub fn get(&self, id: PayloadId) -> &[f32] {
        &self.data[id.0 as usize * self.dim..(id.0 as usize + 1) * self.dim]
    }

    /// Bytes held by the arena.
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Drops every payload but keeps the allocation for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Clears the arena and switches it to `dim`-channel payloads, keeping
    /// the allocation (the scratch-pool path between layers of different
    /// widths).
    pub fn reset(&mut self, dim: usize) {
        self.data.clear();
        self.dim = dim;
    }

    /// Reserved `f32` capacity — the scratch-reuse tests watch this to prove
    /// steady-state rounds stop allocating.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_roundtrip() {
        let mut a = PayloadArena::new(3);
        let p1 = a.push(&[1.0, 2.0, 3.0]);
        let p2 = a.push(&[4.0, 5.0, 6.0]);
        assert_eq!(a.get(p1), &[1.0, 2.0, 3.0]);
        assert_eq!(a.get(p2), &[4.0, 5.0, 6.0]);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn payload_is_shared_not_copied_per_event() {
        let mut a = PayloadArena::new(2);
        let p = a.push(&[9.0, 9.0]);
        let events: Vec<Event> = (0..100)
            .map(|t| Event { op: EventOp::Add, target: t, payload: p, degree_delta: 0 })
            .collect();
        assert_eq!(a.len(), 1, "one payload serves all 100 events");
        assert_eq!(events.len(), 100);
    }

    #[test]
    fn negated_payload() {
        let mut a = PayloadArena::new(2);
        let p = a.push_negated(&[1.5, -2.0]);
        assert_eq!(a.get(p), &[-1.5, 2.0]);
    }

    #[test]
    fn diff_payload() {
        let mut a = PayloadArena::new(2);
        let p = a.push_diff(&[5.0, 1.0], &[2.0, 4.0]);
        assert_eq!(a.get(p), &[3.0, -3.0]);
    }

    #[test]
    #[should_panic(expected = "payload dim mismatch")]
    fn wrong_dim_rejected() {
        let mut a = PayloadArena::new(3);
        let _ = a.push(&[1.0]);
    }

    #[test]
    fn scaled_payload() {
        let mut a = PayloadArena::new(2);
        let p = a.push_scaled(&[2.0, -4.0], 0.5);
        assert_eq!(a.get(p), &[1.0, -2.0]);
    }

    #[test]
    fn clear_and_reset_keep_capacity() {
        let mut a = PayloadArena::new(4);
        for _ in 0..16 {
            a.push(&[1.0; 4]);
        }
        let cap = a.capacity();
        assert!(cap >= 64);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.capacity(), cap, "clear must keep the allocation");
        a.reset(8);
        assert_eq!(a.dim(), 8);
        assert_eq!(a.capacity(), cap, "reset must keep the allocation");
        let p = a.push(&[2.0; 8]);
        assert_eq!(a.get(p), &[2.0; 8]);
    }

    #[test]
    fn event_metadata_is_small() {
        // The metadata/payload split only pays off if Event stays tiny.
        assert!(std::mem::size_of::<Event>() <= 16);
    }
}
