//! Epoch-versioned embedding snapshots.
//!
//! The serving layer needs readers that never block on an in-flight update:
//! while the writer thread applies a delta through the pipeline, concurrent
//! queries must keep seeing a *consistent* output matrix tagged with the
//! epoch it belongs to. [`SnapshotPublisher`] / [`SnapshotReader`] provide
//! that with a double-buffered publish: the writer copies the engine output
//! into a spare buffer, wraps it in an [`EmbeddingSnapshot`], and swaps the
//! shared pointer under a lock held only for the swap itself. Readers clone
//! the `Arc` (again, lock held only for the clone) and then read entirely
//! lock-free; a reader still holding the previous epoch keeps it alive,
//! and the publisher reclaims the old buffer as its next spare as soon as
//! the last reader lets go — steady-state publishing allocates nothing.

use ink_tensor::Matrix;
use std::sync::{Arc, RwLock};

/// One published, immutable view of the output embeddings.
#[derive(Debug)]
pub struct EmbeddingSnapshot {
    /// Publish counter: 0 is the bootstrap output, each applied batch
    /// increments it. Monotonically non-decreasing across reads.
    pub epoch: u64,
    /// The output embedding matrix as of `epoch`.
    pub embeddings: Matrix,
}

/// Shared cell between one publisher and any number of readers.
#[derive(Debug)]
struct SnapshotCell {
    current: RwLock<Arc<EmbeddingSnapshot>>,
}

/// Writer half: owns the spare buffer of the double-buffer pair.
#[derive(Debug)]
pub struct SnapshotPublisher {
    cell: Arc<SnapshotCell>,
    spare: Option<Matrix>,
}

/// Reader half: cheap to clone, hand one to every reader thread.
#[derive(Clone, Debug)]
pub struct SnapshotReader {
    cell: Arc<SnapshotCell>,
}

impl SnapshotPublisher {
    /// Publishes `bootstrap` as epoch 0 and returns both halves.
    ///
    /// ```
    /// use ink_tensor::Matrix;
    /// use inkstream::snapshot::SnapshotPublisher;
    ///
    /// let (mut publisher, reader) = SnapshotPublisher::new(Matrix::zeros(2, 3));
    /// assert_eq!(reader.load().epoch, 0);
    /// publisher.publish(&Matrix::full(2, 3, 1.0), 1);
    /// let snap = reader.load();
    /// assert_eq!(snap.epoch, 1);
    /// assert_eq!(snap.embeddings.get(1, 2), 1.0);
    /// ```
    pub fn new(bootstrap: Matrix) -> (Self, SnapshotReader) {
        let cell = Arc::new(SnapshotCell {
            current: RwLock::new(Arc::new(EmbeddingSnapshot { epoch: 0, embeddings: bootstrap })),
        });
        (Self { cell: cell.clone(), spare: None }, SnapshotReader { cell })
    }

    /// Publishes a copy of `embeddings` at `epoch`. Readers observe the swap
    /// atomically; the matrix copy happens outside the lock. The previous
    /// snapshot's buffer is reclaimed as the next spare if no reader still
    /// holds it.
    ///
    /// # Panics
    ///
    /// If `epoch` is not strictly greater than the published one — epochs
    /// must move forward or readers could not order their observations.
    pub fn publish(&mut self, embeddings: &Matrix, epoch: u64) {
        let mut buf = match self.spare.take() {
            Some(spare) if spare.shape() == embeddings.shape() => spare,
            _ => Matrix::zeros(embeddings.rows(), embeddings.cols()),
        };
        buf.as_mut_slice().copy_from_slice(embeddings.as_slice());
        let next = Arc::new(EmbeddingSnapshot { epoch, embeddings: buf });
        let old = {
            let mut cur = self.cell.current.write().expect("snapshot lock poisoned");
            assert!(
                epoch > cur.epoch,
                "snapshot epochs must be strictly increasing ({} -> {epoch})",
                cur.epoch
            );
            std::mem::replace(&mut *cur, next)
        };
        if let Some(snap) = Arc::into_inner(old) {
            self.spare = Some(snap.embeddings);
        }
    }

    /// The epoch readers currently observe.
    pub fn epoch(&self) -> u64 {
        self.cell.current.read().expect("snapshot lock poisoned").epoch
    }

    /// A reader handle for this publisher's cell.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader { cell: self.cell.clone() }
    }
}

impl SnapshotReader {
    /// The current snapshot. The lock is held only for the `Arc` clone; the
    /// returned snapshot stays valid (and immutable) however long the caller
    /// keeps it, even across later publishes.
    pub fn load(&self) -> Arc<EmbeddingSnapshot> {
        self.cell.current.read().expect("snapshot lock poisoned").clone()
    }

    /// The current epoch without retaining the snapshot.
    pub fn epoch(&self) -> u64 {
        self.cell.current.read().expect("snapshot lock poisoned").epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn bootstrap_is_epoch_zero() {
        let (_p, r) = SnapshotPublisher::new(Matrix::full(3, 2, 7.0));
        let s = r.load();
        assert_eq!(s.epoch, 0);
        assert_eq!(s.embeddings.get(2, 1), 7.0);
    }

    #[test]
    fn held_snapshot_survives_later_publishes() {
        let (mut p, r) = SnapshotPublisher::new(Matrix::zeros(2, 2));
        let old = r.load();
        p.publish(&Matrix::full(2, 2, 1.0), 1);
        p.publish(&Matrix::full(2, 2, 2.0), 2);
        assert_eq!(old.epoch, 0);
        assert_eq!(old.embeddings.get(0, 0), 0.0, "old epoch is immutable");
        assert_eq!(r.load().epoch, 2);
        assert_eq!(r.load().embeddings.get(1, 1), 2.0);
    }

    #[test]
    fn spare_buffer_is_reclaimed_without_readers() {
        let (mut p, r) = SnapshotPublisher::new(Matrix::zeros(4, 4));
        p.publish(&Matrix::full(4, 4, 1.0), 1); // epoch 0 dropped -> spare
        assert!(p.spare.is_some(), "unreferenced old buffer becomes the spare");
        let held = r.load(); // pins epoch 1
        p.publish(&Matrix::full(4, 4, 2.0), 2);
        drop(held);
        p.publish(&Matrix::full(4, 4, 3.0), 3);
        assert_eq!(r.load().epoch, 3);
    }

    #[test]
    fn shape_change_reallocates() {
        let (mut p, r) = SnapshotPublisher::new(Matrix::zeros(2, 2));
        p.publish(&Matrix::full(5, 3, 4.0), 1);
        let s = r.load();
        assert_eq!(s.embeddings.shape(), (5, 3));
        assert_eq!(s.embeddings.get(4, 2), 4.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotonic_epoch_is_rejected() {
        let (mut p, _r) = SnapshotPublisher::new(Matrix::zeros(1, 1));
        p.publish(&Matrix::zeros(1, 1), 1);
        p.publish(&Matrix::zeros(1, 1), 1);
    }

    #[test]
    fn concurrent_readers_always_see_consistent_epochs() {
        let (mut p, r) = SnapshotPublisher::new(Matrix::zeros(8, 4));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let s = r.load();
                        assert!(s.epoch >= last, "epochs regressed");
                        last = s.epoch;
                        // Every value in a snapshot equals its epoch: a torn
                        // or in-place-mutated buffer would mix values.
                        for &x in s.embeddings.as_slice() {
                            assert_eq!(x, s.epoch as f32, "inconsistent snapshot");
                        }
                    }
                })
            })
            .collect();
        for e in 1..200u64 {
            p.publish(&Matrix::full(8, 4, e as f32), e);
        }
        stop.store(true, Ordering::Relaxed);
        for t in readers {
            t.join().unwrap();
        }
        assert_eq!(r.epoch(), 199);
    }
}
