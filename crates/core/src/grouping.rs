//! Event grouping and reduction (paper §II-B1).
//!
//! Events heading to the same node are grouped and reduced to at most one
//! deletion payload and one addition payload (monotonic) or a single signed
//! sum (accumulative) before any node state is touched. Grouping is not just
//! a batching optimisation: the paper's Fig. 4 shows that for monotonic
//! aggregation, judging evolvability requires *all* of a node's events at
//! once — processing them one-by-one either recomputes needlessly or
//! produces wrong results.
//!
//! The reduction is sound because a reset channel can only be caused by the
//! extreme value among the deleted messages, so reducing deletions with the
//! aggregation function loses nothing (paper §II-C1).

use crate::event::{Event, EventOp, PayloadArena};
use ink_graph::{FxHashMap, VertexId};
use ink_gnn::Aggregator;

/// The reduced events heading to one target node.
#[derive(Clone, Debug, PartialEq)]
pub enum Group {
    /// Monotonic aggregation: reduced deletion and addition payloads
    /// (`m⁻_A` and `m_A` in the paper's notation).
    Mono {
        /// `A`-reduction of all `Del` payloads, if any.
        del: Option<Vec<f32>>,
        /// `A`-reduction of all `Add` payloads, if any.
        add: Option<Vec<f32>>,
        /// Net in-degree change at the target. Needed to detect targets whose
        /// *old* neighborhood was empty: their cached `α⁻ = 0` is a
        /// convention, not a real aggregate, so the incremental rules do not
        /// apply and the target must recompute.
        degree_delta: i32,
    },
    /// Accumulative aggregation: the sum of all `Update` payloads plus the
    /// net in-degree change.
    Acc {
        /// Σ of signed payloads.
        sum: Vec<f32>,
        /// Net in-degree change at the target.
        degree_delta: i32,
    },
}

/// Outcome of [`group_events`].
pub struct Grouped {
    /// Reduced group per target node.
    pub groups: FxHashMap<VertexId, Group>,
    /// Raw event count before grouping.
    pub events_before: usize,
    /// `f32` values read from payloads during reduction (for the cost model).
    pub payload_values_read: usize,
}

/// Groups `events` by target and reduces each group with `agg`.
pub fn group_events(events: &[Event], arena: &PayloadArena, agg: Aggregator) -> Grouped {
    let dim = arena.dim();
    let mut groups: FxHashMap<VertexId, Group> = FxHashMap::default();
    let mut payload_values_read = 0usize;

    for ev in events {
        let payload = arena.get(ev.payload);
        payload_values_read += dim;
        if agg.is_monotonic() {
            let entry = groups
                .entry(ev.target)
                .or_insert_with(|| Group::Mono { del: None, add: None, degree_delta: 0 });
            let Group::Mono { del, add, degree_delta } = entry else {
                unreachable!("aggregator kind is uniform within a layer")
            };
            *degree_delta += ev.degree_delta as i32;
            let slot = match ev.op {
                EventOp::Del => del,
                EventOp::Add => add,
                EventOp::Update => {
                    panic!("Update events are only valid with accumulative aggregation")
                }
            };
            match slot {
                Some(acc) => agg.combine_into(acc, payload),
                None => *slot = Some(payload.to_vec()),
            }
        } else {
            let entry = groups
                .entry(ev.target)
                .or_insert_with(|| Group::Acc { sum: vec![0.0; dim], degree_delta: 0 });
            let Group::Acc { sum, degree_delta } = entry else {
                unreachable!("aggregator kind is uniform within a layer")
            };
            match ev.op {
                EventOp::Update => {
                    ink_tensor::ops::add_assign(sum, payload);
                    *degree_delta += ev.degree_delta as i32;
                }
                EventOp::Add | EventOp::Del => {
                    panic!("Add/Del events are only valid with monotonic aggregation")
                }
            }
        }
    }

    Grouped { groups, events_before: events.len(), payload_values_read }
}

/// Why a target fell off the incremental path into a full neighborhood
/// recomputation. The batched apply path sorts deferred targets by
/// `(kind, degree class)` so each gathered panel holds attribution- and
/// size-homogeneous work.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum RecomputeKind {
    /// Incremental updates disabled (ablation runs).
    Forced = 0,
    /// The target's old neighborhood was empty, so its cached `α⁻ = 0` is a
    /// convention and the incremental rules do not apply.
    EmptyOld = 1,
    /// Monotonic exposed reset.
    Exposed = 2,
}

/// log₂ size bucket for panel grouping: 0 for degree 0, otherwise
/// `⌊log₂ degree⌋ + 1`. Targets in the same class gather into the same
/// contiguous panel, keeping per-panel row counts within 2× of each other.
#[inline]
pub(crate) fn degree_class(degree: usize) -> u32 {
    if degree == 0 {
        0
    } else {
        usize::BITS - degree.leading_zeros()
    }
}

/// Sort key grouping deferred recomputations by event kind × degree class.
/// Equal keys land in the same gathered panel; the caller appends the entry
/// index to keep the full sort deterministic.
#[inline]
pub(crate) fn recompute_sort_key(kind: RecomputeKind, degree: usize) -> u32 {
    ((kind as u32) << 8) | degree_class(degree).min(0xFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: EventOp, target: VertexId, payload: crate::event::PayloadId, dd: i8) -> Event {
        Event { op, target, payload, degree_delta: dd }
    }

    #[test]
    fn monotonic_reduces_dels_and_adds_separately() {
        let mut arena = PayloadArena::new(2);
        let d1 = arena.push(&[5.0, 1.0]);
        let d2 = arena.push(&[2.0, 7.0]);
        let a1 = arena.push(&[0.0, 3.0]);
        let events = vec![
            ev(EventOp::Del, 4, d1, -1),
            ev(EventOp::Del, 4, d2, -1),
            ev(EventOp::Add, 4, a1, 1),
        ];
        let g = group_events(&events, &arena, Aggregator::Max);
        assert_eq!(g.groups.len(), 1);
        match &g.groups[&4] {
            Group::Mono { del, add, .. } => {
                assert_eq!(del.as_deref(), Some(&[5.0, 7.0][..]), "channel-wise max of dels");
                assert_eq!(add.as_deref(), Some(&[0.0, 3.0][..]));
            }
            _ => panic!("expected Mono group"),
        }
    }

    #[test]
    fn min_aggregator_reduces_with_min() {
        let mut arena = PayloadArena::new(2);
        let d1 = arena.push(&[5.0, 1.0]);
        let d2 = arena.push(&[2.0, 7.0]);
        let events = vec![ev(EventOp::Del, 0, d1, 0), ev(EventOp::Del, 0, d2, 0)];
        let g = group_events(&events, &arena, Aggregator::Min);
        match &g.groups[&0] {
            Group::Mono { del, .. } => assert_eq!(del.as_deref(), Some(&[2.0, 1.0][..])),
            _ => panic!("expected Mono group"),
        }
    }

    #[test]
    fn accumulative_sums_payloads_and_degree_deltas() {
        let mut arena = PayloadArena::new(2);
        let p1 = arena.push(&[1.0, 2.0]);
        let p2 = arena.push_negated(&[0.5, 0.5]);
        let events = vec![ev(EventOp::Update, 7, p1, 1), ev(EventOp::Update, 7, p2, -1)];
        let g = group_events(&events, &arena, Aggregator::Sum);
        match &g.groups[&7] {
            Group::Acc { sum, degree_delta } => {
                assert_eq!(sum, &[0.5, 1.5]);
                assert_eq!(*degree_delta, 0);
            }
            _ => panic!("expected Acc group"),
        }
    }

    #[test]
    fn distinct_targets_stay_separate() {
        let mut arena = PayloadArena::new(1);
        let p = arena.push(&[1.0]);
        let events = vec![ev(EventOp::Add, 1, p, 0), ev(EventOp::Add, 2, p, 0)];
        let g = group_events(&events, &arena, Aggregator::Max);
        assert_eq!(g.groups.len(), 2);
        assert_eq!(g.events_before, 2);
    }

    #[test]
    fn payload_read_accounting() {
        let mut arena = PayloadArena::new(4);
        let p = arena.push(&[0.0; 4]);
        let events = vec![ev(EventOp::Update, 0, p, 0); 3];
        let g = group_events(&events, &arena, Aggregator::Mean);
        assert_eq!(g.payload_values_read, 12);
    }

    #[test]
    #[should_panic(expected = "Update events are only valid")]
    fn update_event_with_monotonic_panics() {
        let mut arena = PayloadArena::new(1);
        let p = arena.push(&[1.0]);
        let events = vec![ev(EventOp::Update, 0, p, 0)];
        let _ = group_events(&events, &arena, Aggregator::Max);
    }

    #[test]
    #[should_panic(expected = "Add/Del events are only valid")]
    fn add_event_with_accumulative_panics() {
        let mut arena = PayloadArena::new(1);
        let p = arena.push(&[1.0]);
        let events = vec![ev(EventOp::Add, 0, p, 0)];
        let _ = group_events(&events, &arena, Aggregator::Sum);
    }

    #[test]
    fn degree_classes_are_log2_buckets() {
        assert_eq!(degree_class(0), 0);
        assert_eq!(degree_class(1), 1);
        assert_eq!(degree_class(2), 2);
        assert_eq!(degree_class(3), 2);
        assert_eq!(degree_class(4), 3);
        assert_eq!(degree_class(1023), 10);
        assert_eq!(degree_class(1024), 11);
    }

    #[test]
    fn recompute_keys_group_by_kind_then_class() {
        // Same kind, same class → same panel.
        assert_eq!(
            recompute_sort_key(RecomputeKind::Exposed, 5),
            recompute_sort_key(RecomputeKind::Exposed, 6),
        );
        // Kind dominates class in the ordering.
        assert!(
            recompute_sort_key(RecomputeKind::Forced, 1 << 20)
                < recompute_sort_key(RecomputeKind::EmptyOld, 1)
        );
        assert!(
            recompute_sort_key(RecomputeKind::EmptyOld, 1)
                < recompute_sort_key(RecomputeKind::Exposed, 1)
        );
        // Within a kind, bigger degrees sort later.
        assert!(
            recompute_sort_key(RecomputeKind::Exposed, 2)
                < recompute_sort_key(RecomputeKind::Exposed, 64)
        );
    }

    #[test]
    fn empty_event_list_yields_no_groups() {
        let arena = PayloadArena::new(2);
        let g = group_events(&[], &arena, Aggregator::Max);
        assert!(g.groups.is_empty());
        assert_eq!(g.events_before, 0);
    }
}
