//! Intra-layer incremental update for monotonic aggregation (paper §II-C1).
//!
//! Given a target's old aggregated neighborhood `α⁻` and its reduced event
//! group, the effect falls into one of three conditions:
//!
//! * **No reset** — no channel of `α⁻` equals the reduced deletion, so the
//!   deletions were never the per-channel extreme: `α = A(α⁻, m_A)`. If
//!   nothing changes the node is *resilient* and propagation is pruned.
//! * **Covered reset** — some channels must reset, but the reduced addition
//!   dominates the deleted value there; by transitivity it dominates every
//!   hidden neighbor too, so `α = A(α⁻, m_A)` is still exact.
//! * **Exposed reset** — a reset channel is not covered: the extreme was
//!   deleted and nothing at hand bounds the remaining neighbors. Recompute
//!   from the full neighborhood.
//!
//! All comparisons are bit-exact `f32` equality — that is what makes the
//! incremental result *bitwise identical* to recomputation.

use ink_gnn::Aggregator;

/// Which of the paper's conditions a target fell into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Condition {
    /// No reset and the addition changed nothing — propagation pruned.
    Resilient,
    /// No reset; the addition updated some channels.
    NoReset,
    /// Reset channels fully covered by the addition.
    CoveredReset,
    /// Reset channels not covered — full recomputation required.
    ExposedReset,
}

impl Condition {
    /// Cost rank (higher = more expensive): used to keep a node's *worst*
    /// condition when it is processed in several layers (paper Fig. 8).
    pub fn severity(self) -> u8 {
        match self {
            Condition::Resilient => 0,
            Condition::NoReset => 1,
            Condition::CoveredReset => 2,
            Condition::ExposedReset => 3,
        }
    }
}

/// Outcome of the evolvability check.
pub enum MonoOutcome {
    /// Incremental update applied; `alpha` is the new aggregated
    /// neighborhood (possibly equal to the old one when resilient).
    Updated {
        /// The condition that allowed the update.
        condition: Condition,
        /// The new aggregated neighborhood.
        alpha: Vec<f32>,
    },
    /// Exposed reset — the caller must recompute from the neighborhood.
    Recompute,
}

/// Classifies the reduced group against `alpha_old` and applies the
/// incremental update when one of the paper's two evolvable conditions holds.
pub fn apply_monotonic(
    agg: Aggregator,
    alpha_old: &[f32],
    del: Option<&[f32]>,
    add: Option<&[f32]>,
) -> MonoOutcome {
    let mut alpha = vec![0.0; alpha_old.len()];
    match apply_monotonic_into(agg, alpha_old, del, add, &mut alpha) {
        Some(condition) => MonoOutcome::Updated { condition, alpha },
        None => MonoOutcome::Recompute,
    }
}

/// Allocation-free form of [`apply_monotonic`]: writes the new `α` into
/// `out` and returns the condition, or `None` for an exposed reset (in
/// which case `out` is untouched and the caller must recompute).
pub fn apply_monotonic_into(
    agg: Aggregator,
    alpha_old: &[f32],
    del: Option<&[f32]>,
    add: Option<&[f32]>,
    out: &mut [f32],
) -> Option<Condition> {
    debug_assert!(agg.is_monotonic());
    debug_assert_eq!(out.len(), alpha_old.len());

    // Reset channels: D = { i : α⁻[i] == m⁻_A[i] }.
    let has_reset = |del: &[f32]| alpha_old.iter().zip(del).any(|(a, d)| a == d);

    match del {
        None => {}
        Some(del) if !has_reset(del) => {}
        Some(del) => {
            // Covered iff the reduced addition dominates the deleted value on
            // every reset channel.
            let covered = match add {
                Some(add) => alpha_old
                    .iter()
                    .zip(del)
                    .zip(add)
                    .all(|((a, d), m)| a != d || agg.dominates(*m, *d)),
                None => false,
            };
            if !covered {
                return None;
            }
            let add = add.expect("covered implies an addition exists");
            out.copy_from_slice(alpha_old);
            agg.combine_into(out, add);
            return Some(Condition::CoveredReset);
        }
    }

    // No-reset path (including "no deletions at all").
    out.copy_from_slice(alpha_old);
    if let Some(add) = add {
        agg.combine_into(out, add);
    }
    Some(if &*out == alpha_old { Condition::Resilient } else { Condition::NoReset })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unwrap_updated(out: MonoOutcome) -> (Condition, Vec<f32>) {
        match out {
            MonoOutcome::Updated { condition, alpha } => (condition, alpha),
            MonoOutcome::Recompute => panic!("expected an incremental update"),
        }
    }

    /// Paper Fig. 5, "no reset": deletion below the old max everywhere.
    #[test]
    fn no_reset_with_improvement() {
        let out = apply_monotonic(
            Aggregator::Max,
            &[14.0, 16.0, 12.0, 3.0],
            Some(&[13.0, 13.0, 3.0, 2.0]),
            Some(&[15.0, 10.0, 10.0, 1.0]),
        );
        let (cond, alpha) = unwrap_updated(out);
        assert_eq!(cond, Condition::NoReset);
        assert_eq!(alpha, vec![15.0, 16.0, 12.0, 3.0]);
    }

    #[test]
    fn resilient_when_addition_is_dominated() {
        let out = apply_monotonic(
            Aggregator::Max,
            &[14.0, 16.0],
            Some(&[1.0, 2.0]),
            Some(&[3.0, 4.0]),
        );
        let (cond, alpha) = unwrap_updated(out);
        assert_eq!(cond, Condition::Resilient);
        assert_eq!(alpha, vec![14.0, 16.0]);
    }

    /// Paper Fig. 4f: deleting the dominating neighbor but the new addition
    /// covers the reset channels.
    #[test]
    fn covered_reset_applies_incrementally() {
        // α⁻ = [14, 16, 12, 3]; delete [14, 16, 8, 1] → resets at channels 0, 1;
        // add [15, 18, 14, 0] dominates there.
        let out = apply_monotonic(
            Aggregator::Max,
            &[14.0, 16.0, 12.0, 3.0],
            Some(&[14.0, 16.0, 8.0, 1.0]),
            Some(&[15.0, 18.0, 14.0, 0.0]),
        );
        let (cond, alpha) = unwrap_updated(out);
        assert_eq!(cond, Condition::CoveredReset);
        assert_eq!(alpha, vec![15.0, 18.0, 14.0, 3.0]);
    }

    /// Paper Fig. 4d: deletion exposes channels no addition covers.
    #[test]
    fn exposed_reset_forces_recompute() {
        let out = apply_monotonic(
            Aggregator::Max,
            &[14.0, 16.0, 12.0, 3.0],
            Some(&[14.0, 16.0, 8.0, 1.0]),
            Some(&[11.0, 16.0, 12.0, 3.0]),
        );
        // channel 0: reset (14 == 14) and add 11 < 14 → exposed.
        assert!(matches!(out, MonoOutcome::Recompute));
    }

    #[test]
    fn deletion_only_with_no_reset_is_resilient() {
        let out =
            apply_monotonic(Aggregator::Max, &[10.0, 20.0], Some(&[5.0, 5.0]), None);
        let (cond, alpha) = unwrap_updated(out);
        assert_eq!(cond, Condition::Resilient);
        assert_eq!(alpha, vec![10.0, 20.0]);
    }

    #[test]
    fn deletion_only_with_reset_recomputes() {
        let out =
            apply_monotonic(Aggregator::Max, &[10.0, 20.0], Some(&[10.0, 5.0]), None);
        assert!(matches!(out, MonoOutcome::Recompute));
    }

    #[test]
    fn addition_only_never_recomputes() {
        let out = apply_monotonic(Aggregator::Max, &[1.0, 2.0], None, Some(&[5.0, 0.0]));
        let (cond, alpha) = unwrap_updated(out);
        assert_eq!(cond, Condition::NoReset);
        assert_eq!(alpha, vec![5.0, 2.0]);
    }

    #[test]
    fn tie_between_add_and_del_counts_as_covered() {
        // The deleted value equals the added value on the reset channel: the
        // remaining neighbors are ≤ that value, so the tie is exact.
        let out = apply_monotonic(Aggregator::Max, &[7.0], Some(&[7.0]), Some(&[7.0]));
        let (cond, alpha) = unwrap_updated(out);
        assert_eq!(cond, Condition::CoveredReset);
        assert_eq!(alpha, vec![7.0]);
    }

    #[test]
    fn min_aggregation_mirrors_max() {
        // α⁻ = [3, 5]; delete the per-channel minimum [3, 9] → reset at 0;
        // add [2, 10] dominates (2 < 3) → covered.
        let out = apply_monotonic(
            Aggregator::Min,
            &[3.0, 5.0],
            Some(&[3.0, 9.0]),
            Some(&[2.0, 10.0]),
        );
        let (cond, alpha) = unwrap_updated(out);
        assert_eq!(cond, Condition::CoveredReset);
        assert_eq!(alpha, vec![2.0, 5.0]);

        // add [4, 10] does not reach the deleted minimum → exposed.
        let out = apply_monotonic(
            Aggregator::Min,
            &[3.0, 5.0],
            Some(&[3.0, 9.0]),
            Some(&[4.0, 10.0]),
        );
        assert!(matches!(out, MonoOutcome::Recompute));
    }

    #[test]
    fn no_events_is_resilient() {
        let out = apply_monotonic(Aggregator::Max, &[1.0], None, None);
        let (cond, alpha) = unwrap_updated(out);
        assert_eq!(cond, Condition::Resilient);
        assert_eq!(alpha, vec![1.0]);
    }
}
