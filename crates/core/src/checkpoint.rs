//! Engine checkpointing.
//!
//! InkStream's whole value is the cached state that survives between
//! timestamps; a production deployment also needs that state to survive
//! restarts without paying a fresh full-graph bootstrap. A checkpoint holds
//! the graph, the feature matrix and every layer's `m`/`α` plus the output —
//! loading it reconstructs the engine exactly (bitwise) as it was saved.
//!
//! The model (weights) is *not* serialised: it lives with the training
//! pipeline; the loader takes it as an argument and validates shape
//! compatibility.

use crate::{InkError, InkStream, UpdateConfig, UserHooks};
use ink_gnn::{FullState, Model};
use ink_tensor::Matrix;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"IKC1";

fn write_matrix(m: &Matrix, w: &mut impl Write) -> io::Result<()> {
    w.write_all(&(m.rows() as u64).to_le_bytes())?;
    w.write_all(&(m.cols() as u64).to_le_bytes())?;
    for &x in m.as_slice() {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_matrix(r: &mut impl Read) -> io::Result<Matrix> {
    let rows = read_u64(r)? as usize;
    let cols = read_u64(r)? as usize;
    let count = rows
        .checked_mul(cols)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "matrix shape overflow"))?;
    let mut data = vec![0.0f32; count];
    let mut buf = [0u8; 4];
    for x in data.iter_mut() {
        r.read_exact(&mut buf)?;
        *x = f32::from_le_bytes(buf);
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Serialises the engine's graph, features and cached state.
pub fn save(engine: &InkStream, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    ink_graph::io::write_graph(engine.graph(), w)?;
    write_matrix(engine.features(), w)?;
    let state = engine.state();
    w.write_all(&(state.m.len() as u64).to_le_bytes())?;
    for l in 0..state.m.len() {
        write_matrix(&state.m[l], w)?;
        write_matrix(&state.alpha[l], w)?;
    }
    write_matrix(&state.h, w)
}

/// Reconstructs an engine from a checkpoint written by [`save`]. `model`
/// must be the same model (weights) the checkpoint was produced with — the
/// shapes are validated, the values are the caller's contract.
pub fn load(
    model: Model,
    r: &mut impl Read,
    config: UpdateConfig,
    hooks: Option<Box<dyn UserHooks>>,
) -> io::Result<InkStream> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad checkpoint magic"));
    }
    let graph = ink_graph::io::read_graph(r)?;
    let features = read_matrix(r)?;
    let layers = read_u64(r)? as usize;
    let mut m = Vec::with_capacity(layers);
    let mut alpha = Vec::with_capacity(layers);
    for _ in 0..layers {
        m.push(read_matrix(r)?);
        alpha.push(read_matrix(r)?);
    }
    let h = read_matrix(r)?;
    let state = FullState { m, alpha, h, norm_stats: vec![None; layers] };
    InkStream::from_parts(model, graph, features, state, config, hooks)
        .map_err(map_ink_error)
}

fn map_ink_error(e: InkError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ink_graph::generators::erdos_renyi;
    use ink_graph::DeltaBatch;
    use ink_gnn::Aggregator;
    use ink_tensor::init::{seeded_rng, uniform};
    use rand::SeedableRng;

    fn make_engine(seed: u64) -> InkStream {
        let mut rng = seeded_rng(seed);
        let g = erdos_renyi(&mut rng, 30, 70);
        let x = uniform(&mut rng, 30, 4, -1.0, 1.0);
        let model = Model::gcn(&mut rng, &[4, 5, 3], Aggregator::Max);
        InkStream::new(model, g, x, UpdateConfig::default()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_state_bitwise() {
        let mut engine = make_engine(1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        engine.apply_delta(&DeltaBatch::random_scenario(engine.graph(), &mut rng, 8));

        let mut buf = Vec::new();
        save(&engine, &mut buf).unwrap();
        let mut mrng = seeded_rng(1);
        let _ = erdos_renyi(&mut mrng, 30, 70);
        let _ = uniform(&mut mrng, 30, 4, -1.0, 1.0);
        let model = Model::gcn(&mut mrng, &[4, 5, 3], Aggregator::Max);
        let loaded = load(model, &mut buf.as_slice(), UpdateConfig::default(), None).unwrap();

        assert_eq!(loaded.graph(), engine.graph());
        assert_eq!(loaded.output(), engine.output());
        assert_eq!(&loaded.state().m[0], &engine.state().m[0]);
        assert_eq!(&loaded.state().alpha[1], &engine.state().alpha[1]);
    }

    #[test]
    fn loaded_engine_keeps_updating_correctly() {
        let mut engine = make_engine(3);
        let mut buf = Vec::new();
        save(&engine, &mut buf).unwrap();
        let mut mrng = seeded_rng(3);
        let _ = erdos_renyi(&mut mrng, 30, 70);
        let _ = uniform(&mut mrng, 30, 4, -1.0, 1.0);
        let model = Model::gcn(&mut mrng, &[4, 5, 3], Aggregator::Max);
        let mut loaded = load(model, &mut buf.as_slice(), UpdateConfig::default(), None).unwrap();

        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let delta = DeltaBatch::random_scenario(loaded.graph(), &mut rng, 6);
        loaded.apply_delta(&delta);
        engine.apply_delta(&delta);
        assert_eq!(loaded.output(), engine.output());
        assert_eq!(loaded.output(), &loaded.recompute_reference());
    }

    #[test]
    fn wrong_model_shape_is_rejected() {
        let engine = make_engine(5);
        let mut buf = Vec::new();
        save(&engine, &mut buf).unwrap();
        let mut mrng = seeded_rng(5);
        let wrong = Model::gcn(&mut mrng, &[4, 7, 3], Aggregator::Max); // hidden 7 ≠ 5
        let err = match load(wrong, &mut buf.as_slice(), UpdateConfig::default(), None) {
            Err(e) => e,
            Ok(_) => panic!("shape mismatch must be rejected"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn garbage_is_rejected() {
        let mut mrng = seeded_rng(6);
        let model = Model::gcn(&mut mrng, &[4, 5, 3], Aggregator::Max);
        let err = match load(model, &mut &b"nonsense"[..], UpdateConfig::default(), None) {
            Err(e) => e,
            Ok(_) => panic!("garbage must be rejected"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
