//! Engine checkpointing.
//!
//! InkStream's whole value is the cached state that survives between
//! timestamps; a production deployment also needs that state to survive
//! restarts without paying a fresh full-graph bootstrap. A checkpoint holds
//! the graph, the feature matrix and every layer's `m`/`α` plus the output —
//! loading it reconstructs the engine exactly (bitwise) as it was saved.
//!
//! The model (weights) is *not* serialised: it lives with the training
//! pipeline; the loader takes it as an argument and validates shape
//! compatibility.
//!
//! All matrix payloads move through buffered chunked conversion (one
//! `write_all`/`read_exact` per ~16 KiB, not per element), and loading is
//! defensive: a stream that is not a checkpoint ([`InkError::BadMagic`]),
//! ends early ([`InkError::Truncated`]) or declares impossible shapes
//! ([`InkError::Corrupt`]) returns a typed error instead of panicking.

use crate::{InkError, InkStream, UpdateConfig, UserHooks};
use ink_gnn::{FullState, Model};
use ink_tensor::Matrix;
use std::io::{self, BufReader, BufWriter, Read, Write};

const MAGIC: &[u8; 4] = b"IKC1";

/// Elements per conversion chunk (16 KiB of `f32`s) — large enough to make
/// the syscall/copy overhead disappear, small enough to live on the stack of
/// any thread.
const CHUNK_ELEMS: usize = 4096;

fn write_matrix(m: &Matrix, w: &mut impl Write) -> io::Result<()> {
    w.write_all(&(m.rows() as u64).to_le_bytes())?;
    w.write_all(&(m.cols() as u64).to_le_bytes())?;
    let mut buf = [0u8; CHUNK_ELEMS * 4];
    for chunk in m.as_slice().chunks(CHUNK_ELEMS) {
        for (slot, &x) in buf.chunks_exact_mut(4).zip(chunk) {
            slot.copy_from_slice(&x.to_le_bytes());
        }
        w.write_all(&buf[..chunk.len() * 4])?;
    }
    Ok(())
}

fn read_matrix(r: &mut impl Read) -> Result<Matrix, InkError> {
    let rows = read_u64(r)? as usize;
    let cols = read_u64(r)? as usize;
    let count = rows
        .checked_mul(cols)
        .filter(|c| c.checked_mul(4).is_some())
        .ok_or_else(|| InkError::Corrupt {
            detail: format!("matrix shape {rows}x{cols} overflows"),
        })?;
    let mut data: Vec<f32> = Vec::new();
    // try_reserve instead of vec![]: a lying header claiming petabytes must
    // come back as a typed error, not an allocation abort.
    data.try_reserve_exact(count).map_err(|_| InkError::Corrupt {
        detail: format!("matrix shape {rows}x{cols} is unallocatable"),
    })?;
    let mut buf = [0u8; CHUNK_ELEMS * 4];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(CHUNK_ELEMS);
        r.read_exact(&mut buf[..take * 4]).map_err(InkError::from_read_error)?;
        data.extend(
            buf[..take * 4].chunks_exact(4).map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        );
        remaining -= take;
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

fn read_u64(r: &mut impl Read) -> Result<u64, InkError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(InkError::from_read_error)?;
    Ok(u64::from_le_bytes(buf))
}

/// Serialises the engine's graph, features and cached state. The writer is
/// wrapped in a [`BufWriter`] internally; callers can hand over a bare
/// `File` or `TcpStream`.
pub fn save(engine: &InkStream, w: &mut impl Write) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    ink_graph::io::write_graph(engine.graph(), &mut w)?;
    write_matrix(engine.features(), &mut w)?;
    let state = engine.state();
    w.write_all(&(state.m.len() as u64).to_le_bytes())?;
    for l in 0..state.m.len() {
        write_matrix(&state.m[l], &mut w)?;
        write_matrix(&state.alpha[l], &mut w)?;
    }
    write_matrix(&state.h, &mut w)?;
    w.flush()
}

/// Reconstructs an engine from a checkpoint written by [`save`]. `model`
/// must be the same model (weights) the checkpoint was produced with — the
/// shapes are validated, the values are the caller's contract.
///
/// Malformed input comes back as a typed [`InkError`]: [`InkError::BadMagic`]
/// when the stream is not a checkpoint, [`InkError::Truncated`] when it ends
/// mid-section, [`InkError::Corrupt`] for impossible headers or inconsistent
/// shapes, [`InkError::Io`] for genuine I/O faults.
pub fn load(
    model: Model,
    r: &mut impl Read,
    config: UpdateConfig,
    hooks: Option<Box<dyn UserHooks>>,
) -> Result<InkStream, InkError> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(InkError::from_read_error)?;
    if &magic != MAGIC {
        return Err(InkError::BadMagic);
    }
    let graph = ink_graph::io::read_graph(&mut r).map_err(InkError::from_read_error)?;
    let features = read_matrix(&mut r)?;
    let layers = read_u64(&mut r)? as usize;
    if layers > u16::MAX as usize {
        return Err(InkError::Corrupt { detail: format!("{layers} layers is implausible") });
    }
    let mut m = Vec::with_capacity(layers);
    let mut alpha = Vec::with_capacity(layers);
    for _ in 0..layers {
        m.push(read_matrix(&mut r)?);
        alpha.push(read_matrix(&mut r)?);
    }
    let h = read_matrix(&mut r)?;
    let state = FullState { m, alpha, h, norm_stats: vec![None; layers] };
    InkStream::from_parts(model, graph, features, state, config, hooks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ink_graph::generators::erdos_renyi;
    use ink_graph::DeltaBatch;
    use ink_gnn::Aggregator;
    use ink_tensor::init::{seeded_rng, uniform};
    use rand::SeedableRng;

    fn make_engine(seed: u64) -> InkStream {
        let mut rng = seeded_rng(seed);
        let g = erdos_renyi(&mut rng, 30, 70);
        let x = uniform(&mut rng, 30, 4, -1.0, 1.0);
        let model = Model::gcn(&mut rng, &[4, 5, 3], Aggregator::Max);
        InkStream::new(model, g, x, UpdateConfig::default()).unwrap()
    }

    /// `InkStream` has no `Debug`, so `unwrap_err` doesn't apply.
    fn err_of(r: Result<InkStream, InkError>) -> InkError {
        match r {
            Err(e) => e,
            Ok(_) => panic!("expected the load to fail"),
        }
    }

    fn make_model(seed: u64) -> Model {
        // Re-derive the same weights `make_engine(seed)` used by replaying
        // the RNG consumption order.
        let mut mrng = seeded_rng(seed);
        let _ = erdos_renyi(&mut mrng, 30, 70);
        let _ = uniform(&mut mrng, 30, 4, -1.0, 1.0);
        Model::gcn(&mut mrng, &[4, 5, 3], Aggregator::Max)
    }

    #[test]
    fn roundtrip_preserves_state_bitwise() {
        let mut engine = make_engine(1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        engine.apply_delta(&DeltaBatch::random_scenario(engine.graph(), &mut rng, 8));

        let mut buf = Vec::new();
        save(&engine, &mut buf).unwrap();
        let loaded = load(make_model(1), &mut buf.as_slice(), UpdateConfig::default(), None).unwrap();

        assert_eq!(loaded.graph(), engine.graph());
        assert_eq!(loaded.output(), engine.output());
        assert_eq!(&loaded.state().m[0], &engine.state().m[0]);
        assert_eq!(&loaded.state().alpha[1], &engine.state().alpha[1]);
    }

    #[test]
    fn roundtrip_across_chunk_boundaries() {
        // A feature matrix larger than one 4096-element conversion chunk,
        // with values that would expose any byte-order or offset slip.
        let mut rng = seeded_rng(11);
        let n = 600; // 600 * 12 = 7200 f32 per matrix > CHUNK_ELEMS
        let g = erdos_renyi(&mut rng, n, 1500);
        let x = uniform(&mut rng, n, 12, -3.0, 3.0);
        let model = Model::gcn(&mut rng, &[12, 9, 5], Aggregator::Max);
        let engine = InkStream::new(model, g, x, UpdateConfig::default()).unwrap();

        let mut buf = Vec::new();
        save(&engine, &mut buf).unwrap();
        let mut mrng = seeded_rng(11);
        let _ = erdos_renyi(&mut mrng, n, 1500);
        let _ = uniform(&mut mrng, n, 12, -3.0, 3.0);
        let model = Model::gcn(&mut mrng, &[12, 9, 5], Aggregator::Max);
        let loaded = load(model, &mut buf.as_slice(), UpdateConfig::default(), None).unwrap();
        assert_eq!(loaded.features(), engine.features());
        assert_eq!(loaded.output(), engine.output());
    }

    #[test]
    fn loaded_engine_keeps_updating_correctly() {
        let mut engine = make_engine(3);
        let mut buf = Vec::new();
        save(&engine, &mut buf).unwrap();
        let mut loaded = load(make_model(3), &mut buf.as_slice(), UpdateConfig::default(), None).unwrap();

        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let delta = DeltaBatch::random_scenario(loaded.graph(), &mut rng, 6);
        loaded.apply_delta(&delta);
        engine.apply_delta(&delta);
        assert_eq!(loaded.output(), engine.output());
        assert_eq!(loaded.output(), &loaded.recompute_reference());
    }

    #[test]
    fn wrong_model_shape_is_rejected() {
        let engine = make_engine(5);
        let mut buf = Vec::new();
        save(&engine, &mut buf).unwrap();
        let mut mrng = seeded_rng(5);
        let wrong = Model::gcn(&mut mrng, &[4, 7, 3], Aggregator::Max); // hidden 7 ≠ 5
        match err_of(load(wrong, &mut buf.as_slice(), UpdateConfig::default(), None)) {
            InkError::ShapeMismatch { .. } => {}
            other => panic!("shape mismatch must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = err_of(load(
            make_model(6),
            &mut &b"nonsense-that-is-long-enough-to-not-eof"[..],
            UpdateConfig::default(),
            None,
        ));
        assert_eq!(err, InkError::BadMagic);
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let engine = make_engine(7);
        let mut buf = Vec::new();
        save(&engine, &mut buf).unwrap();
        // Cutting the stream anywhere past the magic must yield Truncated —
        // never a panic, never a mangled engine. (Sampled lengths keep the
        // test fast; the section boundaries are all covered.)
        for cut in (4..buf.len()).step_by(97).chain([buf.len() - 1]) {
            let err = err_of(load(make_model(7), &mut &buf[..cut], UpdateConfig::default(), None));
            assert_eq!(err, InkError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn empty_stream_is_truncated_not_bad_magic() {
        let err = err_of(load(make_model(8), &mut &b""[..], UpdateConfig::default(), None));
        assert_eq!(err, InkError::Truncated);
    }

    #[test]
    fn shape_overflow_is_rejected() {
        let engine = make_engine(9);
        let mut buf = Vec::new();
        save(&engine, &mut buf).unwrap();
        // The feature-matrix header sits right after the graph section.
        // Rebuild the stream with a poisoned header: rows*cols overflows.
        let mut graph_bytes = Vec::new();
        ink_graph::io::write_graph(engine.graph(), &mut graph_bytes).unwrap();
        let header_at = 4 + graph_bytes.len();
        let mut poisoned = buf.clone();
        poisoned[header_at..header_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        poisoned[header_at + 8..header_at + 16].copy_from_slice(&u64::MAX.to_le_bytes());
        let err =
            err_of(load(make_model(9), &mut poisoned.as_slice(), UpdateConfig::default(), None));
        match err {
            InkError::Corrupt { detail } => assert!(detail.contains("overflow"), "{detail}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // A huge-but-representable element count must also fail typed (the
        // allocation is refused or the stream ends early), not abort.
        let mut huge = buf;
        huge[header_at..header_at + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
        huge[header_at + 8..header_at + 16].copy_from_slice(&1u64.to_le_bytes());
        let err = err_of(load(make_model(9), &mut huge.as_slice(), UpdateConfig::default(), None));
        assert!(
            matches!(err, InkError::Corrupt { .. } | InkError::Truncated),
            "got {err:?}"
        );
    }
}
