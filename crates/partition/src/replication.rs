//! Boundary-vertex replication bookkeeping.
//!
//! A vertex is *replicated* onto every foreign partition that needs its
//! cached messages to aggregate — i.e. every partition owning the other end
//! of one of its cut edges. Each `(vertex, partition)` mirror is refcounted
//! by the cut edges inducing it, so edge churn can create and drop mirrors
//! incrementally: the count rises to 1 → the mirror needs a message-row
//! snapshot from the owner; the count falls to 0 → the mirror's rows go
//! stale harmlessly (its subgraph no longer references the vertex).

use ink_graph::{DynGraph, FxHashMap, VertexId};

/// Refcounted mirror registry: which foreign partitions hold a ghost copy of
/// which vertex, and how many cut edges keep each copy alive.
#[derive(Clone, Debug, Default)]
pub struct ReplicationTable {
    /// `counts[v][p]` = cut edges forcing `v` to be mirrored on `p`.
    counts: FxHashMap<VertexId, FxHashMap<u32, u32>>,
}

impl ReplicationTable {
    /// An empty table (no boundary vertices).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the table for an existing graph and ownership assignment: one
    /// refcount per cut edge. For a directed graph only the source mirrors
    /// (onto the target's owner — the aggregating side); for an undirected
    /// graph both endpoints do.
    pub fn build(g: &DynGraph, assignment: &[u32]) -> Self {
        let mut t = Self::new();
        for (u, v) in g.edges() {
            let (pu, pv) = (assignment[u as usize], assignment[v as usize]);
            if pu != pv {
                t.add(u, pv);
                if !g.is_directed() {
                    t.add(v, pu);
                }
            }
        }
        t
    }

    /// Adds one cut-edge reference for `v` mirrored on `part`. Returns true
    /// when this created the mirror (count 0 → 1), in which case the caller
    /// must snapshot the owner's message rows onto `part` before the next
    /// round.
    pub fn add(&mut self, v: VertexId, part: u32) -> bool {
        let c = self.counts.entry(v).or_default().entry(part).or_insert(0);
        *c += 1;
        *c == 1
    }

    /// Drops one cut-edge reference for `v` on `part`. Returns true when the
    /// mirror disappeared (count 1 → 0).
    ///
    /// # Panics
    ///
    /// When the mirror was not registered — a refcount underflow means the
    /// driver's routing and the table disagree about the cut.
    pub fn remove(&mut self, v: VertexId, part: u32) -> bool {
        let per_v = self.counts.get_mut(&v).expect("removing unregistered mirror");
        let c = per_v.get_mut(&part).expect("removing unregistered mirror");
        *c -= 1;
        if *c == 0 {
            per_v.remove(&part);
            if per_v.is_empty() {
                self.counts.remove(&v);
            }
            true
        } else {
            false
        }
    }

    /// The foreign partitions currently mirroring `v`, ascending (a
    /// deterministic order so exchanges replay identically).
    pub fn mirrors_of(&self, v: VertexId) -> Vec<u32> {
        let mut parts: Vec<u32> =
            self.counts.get(&v).map(|m| m.keys().copied().collect()).unwrap_or_default();
        parts.sort_unstable();
        parts
    }

    /// True when `v` is mirrored on `part`.
    pub fn is_mirrored(&self, v: VertexId, part: u32) -> bool {
        self.counts.get(&v).is_some_and(|m| m.contains_key(&part))
    }

    /// Number of boundary vertices (vertices with at least one mirror).
    pub fn boundary_vertices(&self) -> usize {
        self.counts.len()
    }

    /// Total `(vertex, partition)` mirror pairs.
    pub fn total_mirrors(&self) -> usize {
        self.counts.values().map(FxHashMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refcount_lifecycle() {
        let mut t = ReplicationTable::new();
        assert!(t.add(3, 1)); // new mirror
        assert!(!t.add(3, 1)); // second cut edge, same mirror
        assert!(t.is_mirrored(3, 1));
        assert!(!t.remove(3, 1)); // still one reference
        assert!(t.remove(3, 1)); // dropped
        assert!(!t.is_mirrored(3, 1));
        assert_eq!(t.total_mirrors(), 0);
        assert_eq!(t.boundary_vertices(), 0);
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn underflow_panics() {
        ReplicationTable::new().remove(1, 0);
    }

    #[test]
    fn build_undirected_mirrors_both_sides() {
        let g = DynGraph::undirected_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let t = ReplicationTable::build(&g, &[0, 0, 1, 1]);
        assert_eq!(t.mirrors_of(1), vec![1]);
        assert_eq!(t.mirrors_of(2), vec![0]);
        assert!(t.mirrors_of(0).is_empty());
        assert_eq!(t.total_mirrors(), 2);
    }

    #[test]
    fn build_directed_mirrors_source_onto_target_owner() {
        let g = DynGraph::directed_from_edges(4, &[(0, 2), (2, 3)]);
        let t = ReplicationTable::build(&g, &[0, 0, 1, 1]);
        assert_eq!(t.mirrors_of(0), vec![1]);
        assert!(t.mirrors_of(2).is_empty()); // 2→3 stays inside partition 1
        assert_eq!(t.total_mirrors(), 1);
    }

    #[test]
    fn mirrors_are_sorted() {
        let mut t = ReplicationTable::new();
        t.add(7, 5);
        t.add(7, 1);
        t.add(7, 3);
        assert_eq!(t.mirrors_of(7), vec![1, 3, 5]);
    }
}
