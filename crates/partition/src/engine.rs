//! The partitioned engine: N per-partition [`InkStream`]s driven in lockstep.
//!
//! ## Round schedule
//!
//! One logical update round (a [`DeltaBatch`] and/or feature updates) runs as
//! a bulk-synchronous sweep over the layers:
//!
//! 1. **Route + bookkeeping** — the delta is applied to the driver's global
//!    replica graph (authoritative skip counts and neighbor lists), routed
//!    onto per-partition deltas, and folded into the [`ReplicationTable`].
//!    Brand-new mirrors get a pre-round snapshot of the owner's cached
//!    message rows.
//! 2. **`round_begin`** on every engine (graph mutation + seeds, owner-side
//!    only thanks to each engine's ownership mask).
//! 3. Per layer `l`: `round_rescale(l)` on every engine (scoped threads) →
//!    **boundary exchange** (each owner's recorded layer-`l` rows are pushed
//!    to every mirror via `round_ingest_refresh`) → `round_process(l)` on
//!    every engine.
//! 4. **`round_finish`** everywhere; the per-partition [`UpdateReport`]s fold
//!    into one via [`UpdateReport::absorb`].
//!
//! ## Why this is bitwise-exact
//!
//! Every event a single engine would generate for a target `t` is generated
//! on `t`'s owner, from identical inputs: ΔG events come from the routed
//! delta slice (same relative order), and changed-message events are
//! regenerated *locally* from refreshed ghost rows — the refresh records the
//! pre-refresh row as the "old" value, so payloads, the covered-edge rule,
//! and the canonical sorted-source fold order all match the monolithic
//! pipeline. User hooks must only emit events targeting the vertex whose
//! message changed (true for [`inkstream::LinearSelfTerm`]); mirrors fire
//! them too, and the ownership mask drops the foreign copies.

use crate::metrics::PartitionInstruments;
use crate::partitioner::Partitioner;
use crate::pool::{StepOp, WorkerPool};
use crate::replication::ReplicationTable;
use crate::router::{DeltaRouter, PreRouted, RoutingView};
use ink_graph::stats::{partition_quality, PartitionQuality};
use ink_graph::{DeltaBatch, DynGraph, EdgeChange, EdgeOp, FxHashMap, VertexId};
use ink_gnn::Model;
use ink_obs::MetricsRegistry;
use ink_tensor::Matrix;
use inkstream::{
    AuditKind, DriftAction, DriftError, DriftStats, IngestReport, InkError, InkStream,
    PhaseTimes, ResyncReport, SessionConfig, SessionSummary, ServeStats, UpdateConfig,
    UpdateReport, UserHooks,
};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Factory producing one identical model per engine (models hold boxed
/// convolutions and cannot be cloned). **Must be deterministic**: every call
/// has to yield bitwise-identical weights, e.g. by reseeding an RNG inside
/// the closure.
pub type ModelFactory = Box<dyn Fn() -> Model + Send + Sync>;

/// Factory producing one identical hook set per engine (same determinism
/// contract as [`ModelFactory`]). Partitioned hooks must only emit events
/// targeting the vertex whose message changed.
pub type HooksFactory = Box<dyn Fn() -> Box<dyn UserHooks> + Send + Sync>;

/// How a parallel round step executes across the partition engines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ApplyExecutor {
    /// Persistent parked worker threads woken per step over a
    /// condvar/epoch-counter barrier ([`crate::pool::WorkerPool`]). Panics
    /// poison the pool into [`InkError::WorkerPanic`] instead of aborting.
    #[default]
    Pool,
    /// Legacy per-round `std::thread::scope` spawns — kept for A/B
    /// benchmarking against the pool; a worker panic aborts the process.
    ScopedSpawn,
}

/// Tunables of the partitioned driver.
#[derive(Clone, Copy, Debug)]
pub struct PartitionConfig {
    /// Number of partitions (≥ 1).
    pub parts: usize,
    /// Per-engine update configuration (shared by every partition).
    pub update: UpdateConfig,
    /// Session-layer settings: ingest batching, drift policy, latency window.
    pub session: SessionConfig,
    /// Step the partitions on worker threads (`false` = serial, same
    /// results — parallelism only trades wall-clock).
    pub parallel: bool,
    /// Which parallel executor drives round steps (ignored when
    /// `parallel` is false).
    pub executor: ApplyExecutor,
    /// Pool worker-thread count (`None` = one per partition, clamped to
    /// `[1, parts]`). The `INK_PARTITION_POOL_WORKERS` environment variable
    /// overrides a `None` here — CI uses it to pin the degenerate 1-worker
    /// config without code changes.
    pub pool_workers: Option<usize>,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self {
            parts: 2,
            update: UpdateConfig::default(),
            session: SessionConfig::default(),
            parallel: true,
            executor: ApplyExecutor::Pool,
            pool_workers: None,
        }
    }
}

/// Failure modes of a partitioned ingest: the drift auditor breached under a
/// `Fail` policy, or a pool worker panicked mid-round (the session then
/// fails fast until [`PartitionedInkStream::resync`]).
#[derive(Clone, Debug)]
pub enum PartitionError {
    /// Drift audit breach with a `Fail` action.
    Drift(DriftError),
    /// A pool worker panicked (always [`InkError::WorkerPanic`]).
    Worker(InkError),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::Drift(e) => write!(f, "{e}"),
            PartitionError::Worker(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PartitionError {}

impl From<DriftError> for PartitionError {
    fn from(e: DriftError) -> Self {
        PartitionError::Drift(e)
    }
}

/// [`SessionSummary`] plus the partition-specific observables.
#[derive(Clone, Debug)]
pub struct PartitionSummary {
    /// The folded per-partition session summary.
    pub session: SessionSummary,
    /// Partition count.
    pub parts: usize,
    /// Edge-cut quality of the *current* graph under the current assignment.
    pub quality: PartitionQuality,
    /// Routed changes that crossed the cut.
    pub boundary_events: u64,
    /// Ghost rows refreshed owner → mirror.
    pub replica_refreshes: u64,
    /// All-layer snapshots that seeded new mirrors.
    pub mirror_seeds: u64,
    /// Cumulative wall time each partition spent inside round steps.
    pub partition_wall: Vec<Duration>,
}

impl PartitionSummary {
    /// JSON rendering for bench artifacts, superset of the session schema.
    pub fn to_json(&self) -> inkstream::Json {
        use inkstream::Json;
        Json::obj([
            ("session", self.session.to_json()),
            ("parts", Json::from(self.parts as u64)),
            ("cut_edges", Json::from(self.quality.cut_edges as u64)),
            ("replication_factor", Json::from(self.quality.replication_factor)),
            ("balance", Json::from(self.quality.balance)),
            ("boundary_events", Json::from(self.boundary_events)),
            ("replica_refreshes", Json::from(self.replica_refreshes)),
            ("mirror_seeds", Json::from(self.mirror_seeds)),
            (
                "partition_wall_ms",
                Json::Arr(
                    self.partition_wall
                        .iter()
                        .map(|d| Json::from(d.as_secs_f64() * 1e3))
                        .collect(),
                ),
            ),
        ])
    }
}

/// A partition-parallel incremental engine with the same session-style
/// surface as a single [`InkStream`] + [`inkstream::StreamSession`]. See the
/// crate docs for the ownership model and the module docs for the round
/// schedule.
pub struct PartitionedInkStream {
    engines: Vec<InkStream>,
    router: DeltaRouter,
    table: ReplicationTable,
    /// Global replica: authoritative adjacency for skip counts, vertex
    /// removal fans, audits, and resync bootstraps.
    graph: DynGraph,
    features: Matrix,
    partitioner: Box<dyn Partitioner>,
    model_factory: ModelFactory,
    hooks_factory: Option<HooksFactory>,
    cfg: PartitionConfig,
    cut_edges: usize,

    // Session bookkeeping (the driver is its own session layer — per-batch
    // rounds cross all engines, so a per-engine StreamSession cannot wrap
    // them).
    ingests: usize,
    changes: usize,
    batches: u64,
    total_affected: u64,
    output_changed_total: u64,
    phase_times: PhaseTimes,
    latencies: VecDeque<Duration>,
    drift: DriftStats,
    sample_state: u64,
    walls: Vec<Duration>,
    registry: Arc<MetricsRegistry>,
    inst: PartitionInstruments,
    /// Persistent worker pool (the default parallel executor). `None` when
    /// stepping serially or via the legacy scoped-spawn arm.
    pool: Option<WorkerPool>,
}

impl PartitionedInkStream {
    /// Splits `graph` with `partitioner`, bootstraps one global full
    /// inference, and clones the resulting state into `cfg.parts` engines.
    ///
    /// `model_factory` must produce bitwise-identical models on every call
    /// (one engine each plus one for every bootstrap/resync).
    pub fn new<F, P>(
        model_factory: F,
        graph: DynGraph,
        features: Matrix,
        partitioner: P,
        cfg: PartitionConfig,
    ) -> Result<Self, InkError>
    where
        F: Fn() -> Model + Send + Sync + 'static,
        P: Partitioner + 'static,
    {
        Self::with_hooks(model_factory, graph, features, partitioner, cfg, None)
    }

    /// Like [`PartitionedInkStream::new`] with user hooks. Partition-safe
    /// hooks must only emit events targeting the vertex whose message
    /// changed (see [`HooksFactory`]).
    pub fn with_hooks<F, P>(
        model_factory: F,
        graph: DynGraph,
        features: Matrix,
        partitioner: P,
        cfg: PartitionConfig,
        hooks_factory: Option<HooksFactory>,
    ) -> Result<Self, InkError>
    where
        F: Fn() -> Model + Send + Sync + 'static,
        P: Partitioner + 'static,
    {
        assert!(cfg.parts >= 1, "PartitionConfig: need at least one partition");
        let model_factory: ModelFactory = Box::new(model_factory);
        let parts = cfg.parts;
        let assignment = partitioner.partition(&graph, parts);
        assert_eq!(assignment.len(), graph.num_vertices(), "partitioner must label every vertex");

        // One global bootstrap; every engine starts from a clone of its
        // state (full-width matrices, global vertex ids).
        let bootstrap = InkStream::with_hooks(
            (model_factory)(),
            graph.clone(),
            features.clone(),
            cfg.update,
            hooks_factory.as_ref().map(|f| f()),
        )?;
        let state = bootstrap.state().clone();
        drop(bootstrap);

        let table = ReplicationTable::build(&graph, &assignment);
        let mut engines = Vec::with_capacity(parts);
        for p in 0..parts as u32 {
            let sub = subgraph(&graph, &assignment, p);
            let mut e = InkStream::from_parts(
                (model_factory)(),
                sub,
                features.clone(),
                state.clone(),
                cfg.update,
                hooks_factory.as_ref().map(|f| f()),
            )?;
            e.set_ownership(Some(assignment.iter().map(|&a| a == p).collect()));
            engines.push(e);
        }

        let cut_edges = count_cut_edges(&graph, &assignment);
        let registry = Arc::new(MetricsRegistry::new());
        let inst = PartitionInstruments::register(&registry, parts);
        inst.parts.set_u64(parts as u64);
        inst.cut_edges.set_u64(cut_edges as u64);
        inst.replicas.set_u64(table.total_mirrors() as u64);
        let sample_state = cfg.session.drift.seed;
        let router = DeltaRouter::new(assignment, parts, graph.is_directed());
        let pool = (cfg.parallel && cfg.executor == ApplyExecutor::Pool).then(|| {
            let workers = cfg
                .pool_workers
                .or_else(|| {
                    std::env::var("INK_PARTITION_POOL_WORKERS")
                        .ok()
                        .and_then(|s| s.parse().ok())
                })
                .unwrap_or(parts);
            WorkerPool::new(parts, workers, &registry)
        });
        Ok(Self {
            engines,
            router,
            table,
            graph,
            features,
            partitioner: Box::new(partitioner),
            model_factory,
            hooks_factory,
            cfg,
            cut_edges,
            ingests: 0,
            changes: 0,
            batches: 0,
            total_affected: 0,
            output_changed_total: 0,
            phase_times: PhaseTimes::default(),
            latencies: VecDeque::new(),
            drift: DriftStats::default(),
            sample_state,
            walls: vec![Duration::ZERO; parts],
            registry,
            inst,
            pool,
        })
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.cfg.parts
    }

    /// The global replica graph (authoritative adjacency).
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// The global feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Per-vertex owner labels.
    pub fn assignment(&self) -> &[u32] {
        self.router.assignment()
    }

    /// The partition owning `v`.
    pub fn owner(&self, v: VertexId) -> u32 {
        self.router.owner(v)
    }

    /// The per-partition engines (read access, e.g. for audits in tests).
    pub fn engines(&self) -> &[InkStream] {
        &self.engines
    }

    /// The boundary replication table.
    pub fn replication(&self) -> &ReplicationTable {
        &self.table
    }

    /// The driver's metrics registry (`ink_partition_*` instruments).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The merged output embeddings: every vertex's row taken from its
    /// owning partition. Bitwise-equal to the single-engine output for the
    /// same update stream.
    pub fn output(&self) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.output_into(&mut out);
        out
    }

    /// Writes the merged output into `out` (resized when the shape differs),
    /// so a caller republishing every epoch — the serving writer — reuses
    /// one gather target instead of allocating a fresh matrix per epoch.
    pub fn output_into(&self, out: &mut Matrix) {
        let n = self.graph.num_vertices();
        let d = self.engines[0].model().out_dim();
        if out.rows() != n || out.cols() != d {
            *out = Matrix::zeros(n, d);
        }
        for v in 0..n {
            let owner = self.router.owner(v as VertexId) as usize;
            out.set_row(v, self.engines[owner].state().h.row(v));
        }
    }

    /// One vertex's output embedding, read from its owner.
    pub fn embedding(&self, v: VertexId) -> Vec<f32> {
        self.engines[self.router.owner(v) as usize].state().h.row(v as usize).to_vec()
    }

    /// The `k` vertices most similar to `vertex` by embedding dot product,
    /// merged across partitions: each partition scores its owned vertices
    /// against the query row, then the candidates merge deterministically
    /// (descending score, ties to the lower id) — the same order contract as
    /// the single-engine serving path.
    pub fn top_k(&self, vertex: VertexId, k: usize) -> Vec<(VertexId, f32)> {
        let q = self.embedding(vertex);
        let mut scored: Vec<(VertexId, f32)> = Vec::new();
        for (p, e) in self.engines.iter().enumerate() {
            let h = &e.state().h;
            for v in 0..self.graph.num_vertices() as VertexId {
                if v == vertex || self.router.owner(v) != p as u32 {
                    continue;
                }
                let score: f32 = q.iter().zip(h.row(v as usize)).map(|(a, b)| a * b).sum();
                scored.push((v, score));
            }
        }
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored
    }

    /// Applies one batch of edge changes as a partitioned round. Same
    /// contract as [`InkStream::apply_delta`].
    ///
    /// # Panics
    ///
    /// When the worker pool is poisoned by an earlier panic — callers that
    /// must survive a worker panic (the serving writer) use
    /// [`PartitionedInkStream::try_apply_delta`] instead.
    pub fn apply_delta(&mut self, delta: &DeltaBatch) -> UpdateReport {
        self.try_apply_delta(delta)
            .expect("edge-only rounds cannot fail validation on a healthy pool")
    }

    /// Fallible [`PartitionedInkStream::apply_delta`]: surfaces a pool
    /// worker panic as [`InkError::WorkerPanic`] instead of unwinding the
    /// caller. After such an error the pool is poisoned — every further call
    /// fails fast with the same error until [`PartitionedInkStream::resync`].
    pub fn try_apply_delta(&mut self, delta: &DeltaBatch) -> Result<UpdateReport, InkError> {
        self.round(delta, &[], None)
    }

    /// Updates one vertex's input feature everywhere (ghost copies included)
    /// and propagates from the owner. Same contract as
    /// [`InkStream::update_vertex_feature`].
    pub fn update_vertex_feature(
        &mut self,
        v: VertexId,
        new_feat: &[f32],
    ) -> Result<UpdateReport, InkError> {
        self.round(&DeltaBatch::default(), &[(v, new_feat.to_vec())], None)
    }

    /// Adds a vertex with `feat` and edges to `neighbors`; ownership comes
    /// from [`Partitioner::assign_new`]. Same contract as
    /// [`InkStream::add_vertex`].
    pub fn add_vertex(
        &mut self,
        feat: &[f32],
        neighbors: &[VertexId],
    ) -> Result<(VertexId, UpdateReport), InkError> {
        let in_dim = self.engines[0].model().in_dim();
        if feat.len() != in_dim {
            return Err(InkError::ShapeMismatch {
                detail: format!("feature len {} != {}", feat.len(), in_dim),
            });
        }
        for &n in neighbors {
            if (n as usize) >= self.graph.num_vertices() {
                return Err(InkError::UnknownVertex(n));
            }
        }
        let part = self.partitioner.assign_new(
            self.graph.num_vertices() as VertexId,
            neighbors,
            self.router.assignment(),
            self.cfg.parts,
        );
        assert!((part as usize) < self.cfg.parts, "assign_new label out of range");
        let v = self.graph.add_vertex();
        self.features.push_row(feat);
        // Every engine grows the same isolated vertex (identical models ⇒
        // identical cached chain rows); only `part` owns it.
        for (i, e) in self.engines.iter_mut().enumerate() {
            let (ev, _) = e.add_vertex(feat, &[])?;
            debug_assert_eq!(ev, v);
            e.push_ownership(part == i as u32);
        }
        self.router.push_vertex(part);
        let changes: Vec<EdgeChange> =
            neighbors.iter().map(|&n| EdgeChange::insert(v, n)).collect();
        let report = self.apply_delta(&DeltaBatch::new(changes));
        Ok((v, report))
    }

    /// Removes all edges incident to `v` (the id slot stays, matching
    /// [`InkStream::remove_vertex`]); mirror refcounts drop through routing,
    /// so boundary copies retire naturally.
    pub fn remove_vertex(&mut self, v: VertexId) -> Result<UpdateReport, InkError> {
        if (v as usize) >= self.graph.num_vertices() {
            return Err(InkError::UnknownVertex(v));
        }
        let mut changes: Vec<EdgeChange> =
            self.graph.out_neighbors(v).iter().map(|&n| EdgeChange::remove(v, n)).collect();
        if self.graph.is_directed() {
            changes
                .extend(self.graph.in_neighbors(v).iter().map(|&n| EdgeChange::remove(n, v)));
        }
        Ok(self.apply_delta(&DeltaBatch::new(changes)))
    }

    /// Rebuilds every partition's cached state from one fresh global
    /// bootstrap (per-partition bootstraps would recompute ghosts from
    /// incomplete neighborhoods). Afterwards the merged output is bitwise
    /// equal to full recomputation.
    pub fn resync(&mut self) -> ResyncReport {
        let t0 = Instant::now();
        // A worker panic can leave sibling engines with rounds still open
        // (the driver aborts them on the error path, but belt-and-braces:
        // adopt_state below asserts no round is active).
        for e in &mut self.engines {
            e.round_abort();
        }
        let fresh = InkStream::with_hooks(
            (self.model_factory)(),
            self.graph.clone(),
            self.features.clone(),
            self.cfg.update,
            self.hooks_factory.as_ref().map(|f| f()),
        )
        .expect("resync bootstrap shares shapes with the running engines");
        let state = fresh.state().clone();
        drop(fresh);
        let mut f32_written = 0u64;
        let per_engine: u64 = state
            .m
            .iter()
            .chain(&state.alpha)
            .chain(std::iter::once(&state.h))
            .map(|m| (m.rows() * m.cols()) as u64)
            .sum();
        for e in &mut self.engines {
            e.adopt_state(state.clone()).expect("resync state matches engine shapes");
            f32_written += per_engine;
        }
        // Every engine's state is authoritative again; the pool may serve.
        if let Some(pool) = &self.pool {
            pool.clear_poison();
        }
        ResyncReport { elapsed: t0.elapsed(), f32_written }
    }

    /// One partitioned round: see the module docs for the schedule.
    /// `pre_routed` is an optional pre-computed routing of `delta` (one
    /// delta per partition, from a current-generation [`RoutingView`]) — the
    /// pipelined serve writer routes epoch N+1 off-thread while this driver
    /// applies epoch N. Falls back to live routing when absent or misshapen.
    fn round(
        &mut self,
        delta: &DeltaBatch,
        fx: &[(VertexId, Vec<f32>)],
        pre_routed: Option<&[DeltaBatch]>,
    ) -> Result<UpdateReport, InkError> {
        let t0 = Instant::now();
        // Fail fast on a poisoned pool before mutating any graph replica —
        // the driver and engine graphs must stay in lockstep for resync.
        if let Some(p) = self.pool.as_ref().and_then(|pool| pool.poisoned()) {
            return Err(InkError::WorkerPanic { partition: p.partition, detail: p.detail });
        }
        // Validate feature updates before any mutation anywhere.
        let in_dim = self.engines[0].model().in_dim();
        for (v, feat) in fx {
            if (*v as usize) >= self.graph.num_vertices() {
                return Err(InkError::UnknownVertex(*v));
            }
            if feat.len() != in_dim {
                return Err(InkError::ShapeMismatch {
                    detail: format!("feature len {} != {in_dim}", feat.len()),
                });
            }
            self.features.set_row(*v as usize, feat);
        }

        // Global replica: authoritative effective-change list + skip count.
        let mut skipped = 0usize;
        let mut effective: Vec<EdgeChange> = Vec::with_capacity(delta.len());
        for &c in delta.changes() {
            if self.graph.apply(c) {
                effective.push(c);
            } else {
                skipped += 1;
            }
        }

        // Fold the cut churn into the replication table. Mirrors dropped
        // this round still receive refreshes *during* it — their engines may
        // hold ΔG events whose payloads read the ghost's rows.
        let directed = self.graph.is_directed();
        let mut new_mirrors: Vec<(VertexId, u32)> = Vec::new();
        let mut dropped: FxHashMap<VertexId, Vec<u32>> = FxHashMap::default();
        for c in &effective {
            let (ps, pd) = (self.router.owner(c.src), self.router.owner(c.dst));
            if ps == pd {
                continue;
            }
            self.inst.boundary_events.inc();
            match c.op {
                EdgeOp::Insert => {
                    self.cut_edges += 1;
                    if self.table.add(c.src, pd) {
                        new_mirrors.push((c.src, pd));
                    }
                    if !directed && self.table.add(c.dst, ps) {
                        new_mirrors.push((c.dst, ps));
                    }
                }
                EdgeOp::Remove => {
                    self.cut_edges -= 1;
                    if self.table.remove(c.src, pd) {
                        dropped.entry(c.src).or_default().push(pd);
                    }
                    if !directed && self.table.remove(c.dst, ps) {
                        dropped.entry(c.dst).or_default().push(ps);
                    }
                }
            }
        }

        // Seed brand-new mirrors with the owner's pre-round message rows
        // (raw writes: no old-record, so the snapshot itself spawns no
        // events on the mirror).
        let k = self.engines[0].model().num_layers();
        for &(v, q) in &new_mirrors {
            let o = self.router.owner(v) as usize;
            for l in 0..k {
                let row = self.engines[o].state().m[l].row(v as usize).to_vec();
                self.engines[q as usize].set_message_row(l, v, &row);
            }
            self.inst.mirror_seeds.inc();
        }

        // Open the round everywhere. Feature updates go to every engine
        // (ghost feature rows stay fresh for audits); each engine's
        // ownership mask decides who actually seeds propagation. Routing is
        // a pure function of the assignment, so a pre-routed split from a
        // current-generation view is byte-identical to routing here.
        let routed_local;
        let routed: &[DeltaBatch] = match pre_routed {
            Some(r) if r.len() == self.cfg.parts => r,
            _ => {
                routed_local = self.router.route(delta);
                &routed_local
            }
        };
        for (e, d) in self.engines.iter_mut().zip(routed) {
            e.round_begin(d, fx).expect("validated against the global replica");
        }

        // BSP sweep: rescale → boundary exchange → process, per layer.
        let mut buf: Vec<(VertexId, Vec<f32>)> = Vec::new();
        for l in 0..k {
            self.step(StepOp::Rescale(l))?;
            for p in 0..self.cfg.parts {
                buf.clear();
                self.engines[p].round_changed_rows(l, &mut buf);
                for (v, row) in &buf {
                    let mut targets = self.table.mirrors_of(*v);
                    if let Some(extra) = dropped.get(v) {
                        targets.extend(extra);
                        targets.sort_unstable();
                        targets.dedup();
                    }
                    for &q in &targets {
                        self.engines[q as usize].round_ingest_refresh(l, *v, row);
                        self.inst.replica_refreshes.inc();
                    }
                }
            }
            self.step(StepOp::Process(l))?;
        }

        let mut report = UpdateReport::default();
        for e in &mut self.engines {
            report.absorb(&e.round_finish());
        }
        // Partition-local skip counts double-count cross-cut no-ops; the
        // global replica's count is authoritative. Whole-driver wall clock
        // replaces the max-partition fold for the same reason.
        report.skipped_changes = skipped;
        report.elapsed = t0.elapsed();
        self.inst.rounds.inc();
        self.inst.cut_edges.set_u64(self.cut_edges as u64);
        self.inst.replicas.set_u64(self.table.total_mirrors() as u64);
        Ok(report)
    }

    /// Runs `op` over every engine — through the persistent pool by default,
    /// legacy scoped threads or serially when configured — and accumulates
    /// per-partition wall time plus the straggler skew. On a worker panic
    /// the surviving engines' rounds are aborted (restoring the "no active
    /// round" invariant `resync` relies on) and the typed error propagates.
    fn step(&mut self, op: StepOp) -> Result<(), InkError> {
        let durations: Vec<Duration> = if let Some(pool) = &self.pool {
            match pool.step(&mut self.engines, op) {
                Ok(d) => d,
                Err(p) => {
                    for e in &mut self.engines {
                        e.round_abort();
                    }
                    return Err(InkError::WorkerPanic {
                        partition: p.partition,
                        detail: p.detail,
                    });
                }
            }
        } else if self.cfg.parallel && self.engines.len() > 1 {
            let mut out = vec![Duration::ZERO; self.engines.len()];
            std::thread::scope(|s| {
                for (e, slot) in self.engines.iter_mut().zip(out.iter_mut()) {
                    s.spawn(move || {
                        let t = Instant::now();
                        match op {
                            StepOp::Rescale(l) => e.round_rescale(l),
                            StepOp::Process(l) => e.round_process(l),
                        }
                        *slot = t.elapsed();
                    });
                }
            });
            out
        } else {
            self.engines
                .iter_mut()
                .map(|e| {
                    let t = Instant::now();
                    match op {
                        StepOp::Rescale(l) => e.round_rescale(l),
                        StepOp::Process(l) => e.round_process(l),
                    }
                    t.elapsed()
                })
                .collect()
        };
        let (mut min, mut max) = (Duration::MAX, Duration::ZERO);
        for ((d, wall), counter) in
            durations.iter().zip(self.walls.iter_mut()).zip(&self.inst.wall_ns)
        {
            *wall += *d;
            counter.add(d.as_nanos() as u64);
            min = min.min(*d);
            max = max.max(*d);
        }
        if self.engines.len() > 1 {
            self.inst.step_skew.record((max - min).as_nanos() as u64);
        }
        Ok(())
    }

    /// A [`RoutingView`] snapshot of the current assignment + ingest chunk
    /// size: the pipelined serve writer routes the next epoch's delta with it
    /// on another thread, then feeds the result to
    /// [`PartitionedInkStream::ingest_prerouted`].
    pub fn routing_view(&self) -> RoutingView {
        self.router.view(self.cfg.session.max_batch)
    }

    /// Applies a delta split into `max_batch` chunks, then runs whichever
    /// audit the drift policy schedules — the partitioned analogue of
    /// [`inkstream::StreamSession::ingest`], with audits running per
    /// partition on owned vertices plus a mirror-consistency sweep.
    pub fn ingest(&mut self, delta: &DeltaBatch) -> Result<IngestReport, PartitionError> {
        self.ingest_inner(delta, None)
    }

    /// [`PartitionedInkStream::ingest`] with the routing work already done:
    /// `pre` comes from [`RoutingView::route`] on a snapshot taken via
    /// [`PartitionedInkStream::routing_view`]. A stale snapshot (vertex
    /// added since) is detected by generation and silently re-routed live —
    /// the result is identical either way, pre-routing only moves the work
    /// off this thread.
    pub fn ingest_prerouted(
        &mut self,
        delta: &DeltaBatch,
        pre: &PreRouted,
    ) -> Result<IngestReport, PartitionError> {
        let current = pre.generation == self.router.generation();
        self.ingest_inner(delta, current.then_some(pre))
    }

    fn ingest_inner(
        &mut self,
        delta: &DeltaBatch,
        pre: Option<&PreRouted>,
    ) -> Result<IngestReport, PartitionError> {
        let t0 = Instant::now();
        let mut report = IngestReport::default();
        for (i, chunk) in delta.changes().chunks(self.cfg.session.max_batch).enumerate() {
            let batch = DeltaBatch::new(chunk.to_vec());
            let routed = pre.and_then(|p| p.chunks.get(i)).map(|v| v.as_slice());
            let t = Instant::now();
            let r = self.round(&batch, &[], routed).map_err(PartitionError::Worker)?;
            let elapsed = t.elapsed();
            if self.latencies.len() == self.cfg.session.latency_window {
                self.latencies.pop_front();
            }
            self.latencies.push_back(elapsed);
            self.batches += 1;
            report.batches += 1;
            report.skipped += r.skipped_changes;
            report.changes_applied += chunk.len() - r.skipped_changes;
            report.output_changed += r.output_changed;
            self.total_affected += r.real_affected;
            self.phase_times.merge(&r.phase_times());
        }
        self.ingests += 1;
        self.changes += report.changes_applied;
        self.output_changed_total += report.output_changed;

        if let Some(err) = self.run_audit(&mut report) {
            report.elapsed = t0.elapsed();
            return Err(PartitionError::Drift(DriftError { report, ..err }));
        }
        report.elapsed = t0.elapsed();
        Ok(report)
    }

    /// Spot audit: sampled vertices audited on their owners. Full audit:
    /// every vertex audited on its owner, plus every ghost message row
    /// checked against the owner's copy (a partition-only failure mode a
    /// vertex-level audit cannot see).
    fn run_audit(&mut self, report: &mut IngestReport) -> Option<DriftError> {
        use ink_tensor::ops::nan_max;
        let policy = self.cfg.session.drift;
        let spot_enabled = policy.spot_every.is_some();
        let full_enabled = policy.full_every.is_some();
        if !spot_enabled && !full_enabled {
            return None;
        }
        let due_full = policy.full_every.is_some_and(|e| self.ingests.is_multiple_of(e));
        let due_spot =
            !due_full && policy.spot_every.is_some_and(|e| self.ingests.is_multiple_of(e));
        if !due_full && !due_spot {
            return None;
        }
        let t_audit = Instant::now();
        let diff = if due_full {
            self.drift.full_audits += 1;
            report.audit = Some(AuditKind::Full);
            let mut worst = 0.0f32;
            for v in 0..self.graph.num_vertices() as VertexId {
                let owner = self.router.owner(v) as usize;
                worst = nan_max(worst, self.engines[owner].audit_vertex(v));
            }
            worst = nan_max(worst, self.mirror_deviation());
            worst
        } else {
            self.drift.spot_audits += 1;
            report.audit = Some(AuditKind::Spot);
            let n = self.graph.num_vertices() as u64;
            let mut worst = 0.0f32;
            for _ in 0..policy.spot_samples {
                let v = (splitmix64(&mut self.sample_state) % n.max(1)) as VertexId;
                let owner = self.router.owner(v) as usize;
                worst = nan_max(worst, self.engines[owner].audit_vertex(v));
            }
            worst
        };
        report.audit_time = t_audit.elapsed();
        self.drift.audit_time += report.audit_time;
        report.verified_diff = Some(diff);
        if diff.is_nan() {
            self.drift.nan_detected += 1;
        } else {
            self.drift.max_deviation = self.drift.max_deviation.max(diff);
        }
        let breached = diff.is_nan() || diff > policy.tolerance;
        report.drift_breached = breached;
        if !breached {
            return None;
        }
        self.drift.breaches += 1;
        match policy.action {
            DriftAction::Warn => None,
            DriftAction::Resync => {
                let r = self.resync();
                self.drift.resyncs += 1;
                self.drift.resync_time += r.elapsed;
                report.resynced = true;
                None
            }
            DriftAction::Fail => Some(DriftError {
                max_diff: diff,
                tolerance: policy.tolerance,
                report: IngestReport::default(),
            }),
        }
    }

    /// Worst absolute difference between any ghost message row and its
    /// owner's authoritative copy — 0.0 when every mirror is coherent.
    pub fn mirror_deviation(&self) -> f32 {
        use ink_tensor::ops::nan_max;
        let k = self.engines[0].model().num_layers();
        let mut worst = 0.0f32;
        for v in 0..self.graph.num_vertices() as VertexId {
            let owner = self.router.owner(v) as usize;
            for q in self.table.mirrors_of(v) {
                for l in 0..k {
                    let a = self.engines[owner].state().m[l].row(v as usize);
                    let b = self.engines[q as usize].state().m[l].row(v as usize);
                    for (x, y) in a.iter().zip(b) {
                        worst = nan_max(worst, (x - y).abs());
                    }
                }
            }
        }
        worst
    }

    /// Rolling summary: the [`SessionSummary`] fold over every partition
    /// plus the partition-specific observables.
    pub fn summary(&self) -> PartitionSummary {
        let mut sorted: Vec<Duration> = self.latencies.iter().copied().collect();
        sorted.sort_unstable();
        let session = SessionSummary {
            ingests: self.ingests,
            changes: self.changes,
            latency: (
                percentile_of(&sorted, 0.50),
                percentile_of(&sorted, 0.90),
                percentile_of(&sorted, 0.99),
                sorted.last().copied().unwrap_or_default(),
            ),
            avg_real_affected: self.total_affected as f64 / self.batches.max(1) as f64,
            phase_times: self.phase_times,
            drift: self.drift,
            serve: ServeStats::default(),
        };
        PartitionSummary {
            session,
            parts: self.cfg.parts,
            quality: partition_quality(&self.graph, self.router.assignment(), self.cfg.parts),
            boundary_events: self.inst.boundary_events.get(),
            replica_refreshes: self.inst.replica_refreshes.get(),
            mirror_seeds: self.inst.mirror_seeds.get(),
            partition_wall: self.walls.clone(),
        }
    }
}

/// The edges partition `p` needs: in-edges of owned vertices (directed), or
/// all edges incident to an owned vertex (undirected). Insertion replays the
/// global edge order, so neighbor lists — and therefore recompute fold
/// orders — match the single engine's.
fn subgraph(g: &DynGraph, assignment: &[u32], p: u32) -> DynGraph {
    let mut sub = DynGraph::new(g.num_vertices(), g.is_directed());
    for (u, v) in g.edges() {
        let keep = if g.is_directed() {
            assignment[v as usize] == p
        } else {
            assignment[u as usize] == p || assignment[v as usize] == p
        };
        if keep {
            sub.insert_edge(u, v);
        }
    }
    sub
}

/// Cut edges of `g` under `assignment` (undirected edges count once).
fn count_cut_edges(g: &DynGraph, assignment: &[u32]) -> usize {
    g.edges()
        .iter()
        .filter(|&&(u, v)| assignment[u as usize] != assignment[v as usize])
        .count()
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile_of(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// SplitMix64 — the spot-audit sampling stream (same generator as the
/// single-engine session, so identical policies sample identical vertices).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::{GreedyEdgeCut, HashPartitioner};
    use ink_gnn::Aggregator;
    use ink_graph::generators::erdos_renyi;
    use ink_tensor::init::{seeded_rng, uniform};

    fn gcn(seed: u64) -> Model {
        let mut rng = seeded_rng(seed);
        Model::gcn(&mut rng, &[4, 6, 3], Aggregator::Sum)
    }

    fn setup(parts: usize) -> (InkStream, PartitionedInkStream) {
        let mut rng = seeded_rng(42);
        let g = erdos_renyi(&mut rng, 24, 60);
        let x = uniform(&mut rng, 24, 4, -1.0, 1.0);
        let single = InkStream::new(gcn(7), g.clone(), x.clone(), UpdateConfig::default()).unwrap();
        let parted = PartitionedInkStream::new(
            || gcn(7),
            g,
            x,
            HashPartitioner,
            PartitionConfig { parts, ..Default::default() },
        )
        .unwrap();
        (single, parted)
    }

    #[test]
    fn bootstrap_matches_single_engine() {
        let (single, parted) = setup(3);
        assert_eq!(&parted.output(), single.output());
    }

    #[test]
    fn delta_round_is_bitwise_equal() {
        let (mut single, mut parted) = setup(4);
        let delta = DeltaBatch::new(vec![
            EdgeChange::insert(0, 13),
            EdgeChange::insert(5, 21),
            EdgeChange::remove(0, 13),
            EdgeChange::insert(2, 17),
        ]);
        let rs = single.apply_delta(&delta);
        let rp = parted.apply_delta(&delta);
        assert_eq!(&parted.output(), single.output());
        assert_eq!(rs.skipped_changes, rp.skipped_changes);
        assert_eq!(rs.output_changed, rp.output_changed);
        assert_eq!(parted.mirror_deviation(), 0.0);
    }

    #[test]
    fn feature_update_on_boundary_vertex_matches() {
        let (mut single, mut parted) = setup(3);
        // Pick a replicated boundary vertex so mirrors must refresh.
        let v = (0..24u32)
            .find(|&v| !parted.replication().mirrors_of(v).is_empty())
            .expect("hash split of an ER graph has boundary vertices");
        let feat = vec![0.9, -0.4, 0.2, 0.7];
        single.update_vertex_feature(v, &feat).unwrap();
        parted.update_vertex_feature(v, &feat).unwrap();
        assert_eq!(&parted.output(), single.output());
        assert_eq!(parted.mirror_deviation(), 0.0);
    }

    #[test]
    fn add_and_remove_vertex_match_single_engine() {
        let (mut single, mut parted) = setup(2);
        let feat = vec![0.1, 0.2, -0.3, 0.4];
        let (vs, _) = single.add_vertex(&feat, &[1, 9, 17]).unwrap();
        let (vp, _) = parted.add_vertex(&feat, &[1, 9, 17]).unwrap();
        assert_eq!(vs, vp);
        assert_eq!(&parted.output(), single.output());
        single.remove_vertex(3).unwrap();
        parted.remove_vertex(3).unwrap();
        assert_eq!(&parted.output(), single.output());
    }

    #[test]
    fn serial_and_parallel_stepping_agree() {
        let mut rng = seeded_rng(5);
        let g = erdos_renyi(&mut rng, 20, 45);
        let x = uniform(&mut rng, 20, 4, -1.0, 1.0);
        let mk = |parallel| {
            PartitionedInkStream::new(
                || gcn(3),
                g.clone(),
                x.clone(),
                GreedyEdgeCut,
                PartitionConfig { parts: 3, parallel, ..Default::default() },
            )
            .unwrap()
        };
        let (mut a, mut b) = (mk(true), mk(false));
        let delta = DeltaBatch::new(vec![EdgeChange::insert(0, 11), EdgeChange::remove(1, 2)]);
        a.apply_delta(&delta);
        b.apply_delta(&delta);
        assert_eq!(a.output(), b.output());
    }

    #[test]
    fn pool_scoped_spawn_and_narrow_pool_agree() {
        let mut rng = seeded_rng(11);
        let g = erdos_renyi(&mut rng, 22, 50);
        let x = uniform(&mut rng, 22, 4, -1.0, 1.0);
        let mk = |executor, pool_workers| {
            PartitionedInkStream::new(
                || gcn(9),
                g.clone(),
                x.clone(),
                HashPartitioner,
                PartitionConfig { parts: 4, executor, pool_workers, ..Default::default() },
            )
            .unwrap()
        };
        let mut pool = mk(ApplyExecutor::Pool, None);
        let mut scoped = mk(ApplyExecutor::ScopedSpawn, None);
        let mut narrow = mk(ApplyExecutor::Pool, Some(1));
        assert_eq!(narrow.pool.as_ref().unwrap().workers(), 1);
        assert_eq!(pool.pool.as_ref().unwrap().workers(), 4);
        assert!(scoped.pool.is_none());
        let delta = DeltaBatch::new(vec![
            EdgeChange::insert(0, 13),
            EdgeChange::insert(7, 19),
            EdgeChange::remove(0, 13),
        ]);
        let rp = pool.apply_delta(&delta);
        let rs = scoped.apply_delta(&delta);
        let rn = narrow.apply_delta(&delta);
        assert_eq!(pool.output(), scoped.output());
        assert_eq!(pool.output(), narrow.output());
        assert_eq!(rp.output_changed, rs.output_changed);
        assert_eq!(rp.output_changed, rn.output_changed);
    }

    #[test]
    fn top_k_matches_merged_output_order() {
        let (_, parted) = setup(3);
        let items = parted.top_k(0, 5);
        assert_eq!(items.len(), 5);
        let out = parted.output();
        let q = out.row(0).to_vec();
        let mut expect: Vec<(u32, f32)> = (1..24u32)
            .map(|v| (v, q.iter().zip(out.row(v as usize)).map(|(a, b)| a * b).sum()))
            .collect();
        expect.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        expect.truncate(5);
        assert_eq!(items, expect);
    }

    #[test]
    fn ingest_chunks_audits_and_summarizes() {
        let (_, mut parted) = setup(2);
        parted.cfg.session.max_batch = 2;
        parted.cfg.session.drift = inkstream::DriftPolicy::full(1, 1e-3);
        let delta = DeltaBatch::new(vec![
            EdgeChange::insert(0, 7),
            EdgeChange::insert(3, 15),
            EdgeChange::remove(0, 7),
        ]);
        let r = parted.ingest(&delta).unwrap();
        assert_eq!(r.batches, 2);
        assert_eq!(r.audit, Some(AuditKind::Full));
        assert!(!r.drift_breached, "diff {:?}", r.verified_diff);
        let s = parted.summary();
        assert_eq!(s.session.ingests, 1);
        assert_eq!(s.parts, 2);
        assert_eq!(s.session.drift.full_audits, 1);
        assert!(s.partition_wall.iter().any(|d| !d.is_zero()));
    }

    #[test]
    fn resync_restores_bitwise_reference() {
        let (mut single, mut parted) = setup(3);
        let delta = DeltaBatch::new(vec![EdgeChange::insert(2, 19), EdgeChange::insert(4, 9)]);
        single.apply_delta(&delta);
        parted.apply_delta(&delta);
        parted.resync();
        assert_eq!(&parted.output(), &single.recompute_reference());
    }

    #[test]
    fn single_partition_degenerates_cleanly() {
        let (mut single, mut parted) = setup(1);
        let delta = DeltaBatch::new(vec![EdgeChange::insert(0, 9)]);
        single.apply_delta(&delta);
        parted.apply_delta(&delta);
        assert_eq!(&parted.output(), single.output());
        assert_eq!(parted.replication().total_mirrors(), 0);
    }
}
