//! Vertex partitioning strategies.
//!
//! A partitioner labels every vertex with the partition that *owns* it —
//! owns its aggregates, its output row, and the authoritative copy of its
//! cached messages. Both built-in strategies are fully deterministic for a
//! given graph, so differential tests can replay them.

use ink_graph::{DynGraph, VertexId};

/// A strategy assigning every vertex to one of `parts` owning partitions.
pub trait Partitioner: Send + Sync {
    /// A short identifier for reports and bench artifacts.
    fn name(&self) -> &'static str;

    /// Labels every vertex of `g` with its owning partition (`0..parts`).
    fn partition(&self, g: &DynGraph, parts: usize) -> Vec<u32>;

    /// Picks an owner for a vertex added *after* the initial split, given
    /// its initial neighbors and the current assignment. The default keeps
    /// the hash rule so growth stays deterministic without the full graph.
    fn assign_new(
        &self,
        v: VertexId,
        _neighbors: &[VertexId],
        _assignment: &[u32],
        parts: usize,
    ) -> u32 {
        hash_part(v, parts)
    }
}

/// SplitMix64-style avalanche of a vertex id onto `0..parts`.
fn hash_part(v: VertexId, parts: usize) -> u32 {
    let mut z = (v as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % parts.max(1) as u64) as u32
}

/// Stateless hash partitioning: owner = mixed hash of the vertex id modulo
/// the partition count. Perfectly cheap and balanced in expectation, blind
/// to locality — the edge-cut baseline the greedy strategy is measured
/// against.
#[derive(Clone, Copy, Debug, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn partition(&self, g: &DynGraph, parts: usize) -> Vec<u32> {
        (0..g.num_vertices() as VertexId).map(|v| hash_part(v, parts)).collect()
    }
}

/// Greedy edge-cut partitioning in the LDG (linear deterministic greedy)
/// style: vertices are placed in id order, each onto the partition holding
/// the most of its already-placed neighbors, discounted by how full that
/// partition is. Ties break to the lowest partition id, so the split is
/// deterministic.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyEdgeCut;

/// The LDG placement score: placed neighbors on `p`, discounted by fill.
fn ldg_score(neighbors_on_p: usize, size: usize, capacity: f64) -> f64 {
    neighbors_on_p as f64 * (1.0 - size as f64 / capacity)
}

impl GreedyEdgeCut {
    /// Scores every partition for a vertex with the given placed-neighbor
    /// counts and sizes, returning the argmax (lowest id wins ties).
    fn place(counts: &[usize], sizes: &[usize], capacity: f64) -> u32 {
        let mut best = 0u32;
        let mut best_score = f64::NEG_INFINITY;
        for (p, (&c, &s)) in counts.iter().zip(sizes).enumerate() {
            let score = ldg_score(c, s, capacity);
            if score > best_score {
                best_score = score;
                best = p as u32;
            }
        }
        best
    }
}

impl Partitioner for GreedyEdgeCut {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn partition(&self, g: &DynGraph, parts: usize) -> Vec<u32> {
        let n = g.num_vertices();
        // Slack capacity (the classic C = n/k · 1.1) keeps the discount from
        // zeroing out before the last vertices are placed.
        let capacity = (n as f64 / parts as f64).max(1.0) * 1.1;
        let mut assignment = vec![u32::MAX; n];
        let mut sizes = vec![0usize; parts];
        let mut counts = vec![0usize; parts];
        for v in 0..n {
            counts.iter_mut().for_each(|c| *c = 0);
            for &u in g.in_neighbors(v as VertexId).iter().chain(g.out_neighbors(v as VertexId)) {
                if let Some(&p) = assignment.get(u as usize) {
                    if p != u32::MAX {
                        counts[p as usize] += 1;
                    }
                }
            }
            let p = Self::place(&counts, &sizes, capacity);
            assignment[v] = p;
            sizes[p as usize] += 1;
        }
        assignment
    }

    fn assign_new(
        &self,
        _v: VertexId,
        neighbors: &[VertexId],
        assignment: &[u32],
        parts: usize,
    ) -> u32 {
        let mut counts = vec![0usize; parts];
        let mut sizes = vec![0usize; parts];
        for &p in assignment {
            sizes[p as usize] += 1;
        }
        for &u in neighbors {
            if let Some(&p) = assignment.get(u as usize) {
                counts[p as usize] += 1;
            }
        }
        let capacity = ((assignment.len() + 1) as f64 / parts as f64).max(1.0) * 1.1;
        Self::place(&counts, &sizes, capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ink_graph::generators::erdos_renyi;
    use ink_graph::stats::partition_quality;
    use ink_tensor::init::seeded_rng;

    #[test]
    fn hash_is_deterministic_and_in_range() {
        let g = DynGraph::new(100, false);
        let a = HashPartitioner.partition(&g, 4);
        let b = HashPartitioner.partition(&g, 4);
        assert_eq!(a, b);
        assert!(a.iter().all(|&p| p < 4));
        // Every partition gets something at this size.
        for p in 0..4 {
            assert!(a.contains(&p));
        }
    }

    #[test]
    fn single_partition_owns_everything() {
        let g = DynGraph::new(10, false);
        assert!(HashPartitioner.partition(&g, 1).iter().all(|&p| p == 0));
        assert!(GreedyEdgeCut.partition(&g, 1).iter().all(|&p| p == 0));
    }

    #[test]
    fn greedy_cuts_no_worse_than_hash_on_community_graph() {
        // Two dense cliques joined by one bridge: greedy should keep each
        // clique together, hash will slice both.
        let mut edges = Vec::new();
        for a in 0..8u32 {
            for b in (a + 1)..8 {
                edges.push((a, b));
                edges.push((a + 8, b + 8));
            }
        }
        edges.push((0, 8));
        let g = DynGraph::undirected_from_edges(16, &edges);
        let hq = partition_quality(&g, &HashPartitioner.partition(&g, 2), 2);
        let gq = partition_quality(&g, &GreedyEdgeCut.partition(&g, 2), 2);
        assert!(gq.cut_edges <= hq.cut_edges, "greedy {} vs hash {}", gq.cut_edges, hq.cut_edges);
    }

    #[test]
    fn greedy_stays_roughly_balanced() {
        let mut rng = seeded_rng(11);
        let g = erdos_renyi(&mut rng, 200, 600);
        let a = GreedyEdgeCut.partition(&g, 4);
        let q = partition_quality(&g, &a, 4);
        // Capacity slack is 1.1; allow a little drift past it.
        assert!(q.balance <= 1.5, "balance {}", q.balance);
        assert!(q.min_part > 0);
    }

    #[test]
    fn assign_new_is_in_range_for_both() {
        let g = DynGraph::new(5, false);
        let a = HashPartitioner.partition(&g, 3);
        assert!(HashPartitioner.assign_new(5, &[0, 1], &a, 3) < 3);
        // Greedy sends the newcomer to its neighbors' partition when room.
        let a = vec![2, 2, 0, 1, 0];
        assert_eq!(GreedyEdgeCut.assign_new(5, &[0, 1], &a, 3), 2);
    }
}
