//! The `ink_partition_*` instrument set.
//!
//! Registered into a shared [`MetricsRegistry`] so a serving front end can
//! scrape partition behaviour next to the session metrics. Per-partition
//! wall time uses one counter per partition (`ink_partition_p<i>_wall_ns_total`)
//! — the registry is name-keyed, so partition index lives in the name.

use ink_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use std::sync::Arc;

/// The partition driver's instruments (see module docs for the catalogue).
pub struct PartitionInstruments {
    /// Partition count (static after construction).
    pub parts: Arc<Gauge>,
    /// Current cut-edge count on the global replica graph.
    pub cut_edges: Arc<Gauge>,
    /// Current `(vertex, partition)` mirror pairs.
    pub replicas: Arc<Gauge>,
    /// Routed changes whose endpoints had different owners.
    pub boundary_events: Arc<Counter>,
    /// Ghost message rows pushed owner → mirror between layers.
    pub replica_refreshes: Arc<Counter>,
    /// All-layer message-row snapshots seeding brand-new mirrors.
    pub mirror_seeds: Arc<Counter>,
    /// Partitioned update rounds driven to completion.
    pub rounds: Arc<Counter>,
    /// Per-round spread between slowest and fastest partition step, in
    /// nanoseconds — the straggler signal.
    pub step_skew: Arc<Histogram>,
    /// Cumulative per-partition wall time inside rescale/process steps.
    pub wall_ns: Vec<Arc<Counter>>,
}

impl PartitionInstruments {
    /// Registers the instrument set for `parts` partitions.
    pub fn register(r: &MetricsRegistry, parts: usize) -> Self {
        Self {
            parts: r.gauge("ink_partition_parts", "Number of graph partitions"),
            cut_edges: r.gauge("ink_partition_cut_edges", "Edges crossing the partition cut"),
            replicas: r.gauge(
                "ink_partition_replicas",
                "(vertex, partition) boundary mirror pairs",
            ),
            boundary_events: r.counter(
                "ink_partition_boundary_events_total",
                "Routed edge changes crossing the cut",
            ),
            replica_refreshes: r.counter(
                "ink_partition_replica_refreshes_total",
                "Ghost message rows refreshed owner to mirror",
            ),
            mirror_seeds: r.counter(
                "ink_partition_mirror_seeds_total",
                "All-layer snapshots seeding new mirrors",
            ),
            rounds: r.counter("ink_partition_rounds_total", "Partitioned update rounds"),
            step_skew: r.histogram(
                "ink_partition_step_skew_ns",
                "Slowest minus fastest partition step per round",
            ),
            wall_ns: (0..parts)
                .map(|i| {
                    r.counter(
                        &format!("ink_partition_p{i}_wall_ns_total"),
                        "Wall time this partition spent inside round steps",
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_per_partition_counters() {
        let r = MetricsRegistry::new();
        let inst = PartitionInstruments::register(&r, 3);
        assert_eq!(inst.wall_ns.len(), 3);
        inst.wall_ns[2].add(42);
        inst.boundary_events.inc();
        let text = r.render_prometheus();
        assert!(text.contains("ink_partition_p2_wall_ns_total 42"));
        assert!(text.contains("ink_partition_boundary_events_total 1"));
    }
}
