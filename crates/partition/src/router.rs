//! Cross-partition delta routing.
//!
//! A change to edge `(a, b)` must reach every partition whose subgraph holds
//! that edge: the owner of `b` for a directed graph (partition subgraphs
//! keep the in-edges of owned vertices), and the owners of both endpoints
//! for an undirected one. The router preserves the relative order of the
//! changes inside each partition's delta, which is what makes routing
//! commute with [`DeltaBatch::coalesce`] (last-op-wins semantics survive the
//! split — see `tests/partition_routing.rs`).

use ink_graph::{DeltaBatch, EdgeChange, VertexId};

/// Routes [`DeltaBatch`]es onto per-partition deltas according to a vertex
/// ownership assignment.
#[derive(Clone, Debug)]
pub struct DeltaRouter {
    assignment: Vec<u32>,
    parts: usize,
    directed: bool,
}

impl DeltaRouter {
    /// A router over `parts` partitions for the given per-vertex owners.
    ///
    /// # Panics
    ///
    /// When `parts` is 0 or a label is out of range.
    pub fn new(assignment: Vec<u32>, parts: usize, directed: bool) -> Self {
        assert!(parts > 0, "need at least one partition");
        assert!(
            assignment.iter().all(|&p| (p as usize) < parts),
            "partition labels must be < parts"
        );
        Self { assignment, parts, directed }
    }

    /// The partition owning vertex `v`.
    ///
    /// # Panics
    ///
    /// When `v` is not covered by the assignment.
    pub fn owner(&self, v: VertexId) -> u32 {
        self.assignment[v as usize]
    }

    /// Number of partitions routed to.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The per-vertex owner labels.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Extends the assignment with the owner of a newly added vertex (ids
    /// are dense, so the new vertex is `assignment.len()`).
    pub fn push_vertex(&mut self, part: u32) {
        assert!((part as usize) < self.parts, "partition label out of range");
        self.assignment.push(part);
    }

    /// The partitions a single change lands on: the second slot is occupied
    /// only for an undirected cross-cut change (and differs from the first).
    pub fn route_change(&self, c: &EdgeChange) -> (u32, Option<u32>) {
        let (ps, pd) = (self.owner(c.src), self.owner(c.dst));
        if self.directed {
            (pd, None)
        } else if ps == pd {
            (ps, None)
        } else {
            (ps, Some(pd))
        }
    }

    /// True when the change crosses the cut (its endpoints have different
    /// owners) — the definition of a *boundary event*.
    pub fn is_boundary(&self, c: &EdgeChange) -> bool {
        self.owner(c.src) != self.owner(c.dst)
    }

    /// Splits `delta` into one delta per partition, preserving relative
    /// change order within each. An undirected cross-cut change appears in
    /// both endpoint owners' deltas; every other change appears exactly
    /// once.
    pub fn route(&self, delta: &DeltaBatch) -> Vec<DeltaBatch> {
        let mut out: Vec<Vec<EdgeChange>> = vec![Vec::new(); self.parts];
        for c in delta.changes() {
            let (p, q) = self.route_change(c);
            out[p as usize].push(*c);
            if let Some(q) = q {
                out[q as usize].push(*c);
            }
        }
        out.into_iter().map(DeltaBatch::new).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ink_graph::EdgeOp;

    fn change(src: u32, dst: u32, op: EdgeOp) -> EdgeChange {
        match op {
            EdgeOp::Insert => EdgeChange::insert(src, dst),
            EdgeOp::Remove => EdgeChange::remove(src, dst),
        }
    }

    #[test]
    fn directed_routes_to_dst_owner_only() {
        let r = DeltaRouter::new(vec![0, 1, 1], 2, true);
        let d = DeltaBatch::new(vec![change(0, 1, EdgeOp::Insert), change(1, 0, EdgeOp::Insert)]);
        let routed = r.route(&d);
        assert_eq!(routed[0].changes(), &[change(1, 0, EdgeOp::Insert)]);
        assert_eq!(routed[1].changes(), &[change(0, 1, EdgeOp::Insert)]);
    }

    #[test]
    fn undirected_cut_change_lands_on_both_owners() {
        let r = DeltaRouter::new(vec![0, 1, 1], 2, false);
        let d = DeltaBatch::new(vec![change(0, 1, EdgeOp::Insert), change(1, 2, EdgeOp::Remove)]);
        let routed = r.route(&d);
        assert_eq!(routed[0].changes(), &[change(0, 1, EdgeOp::Insert)]);
        assert_eq!(
            routed[1].changes(),
            &[change(0, 1, EdgeOp::Insert), change(1, 2, EdgeOp::Remove)]
        );
        assert!(r.is_boundary(&change(0, 1, EdgeOp::Insert)));
        assert!(!r.is_boundary(&change(1, 2, EdgeOp::Remove)));
    }

    #[test]
    fn routing_preserves_relative_order() {
        let r = DeltaRouter::new(vec![0, 0, 1], 2, false);
        let d = DeltaBatch::new(vec![
            change(0, 1, EdgeOp::Insert),
            change(0, 2, EdgeOp::Insert),
            change(0, 1, EdgeOp::Remove),
        ]);
        let routed = r.route(&d);
        assert_eq!(
            routed[0].changes(),
            &[
                change(0, 1, EdgeOp::Insert),
                change(0, 2, EdgeOp::Insert),
                change(0, 1, EdgeOp::Remove)
            ]
        );
        assert_eq!(routed[1].changes(), &[change(0, 2, EdgeOp::Insert)]);
    }

    #[test]
    fn push_vertex_extends_ownership() {
        let mut r = DeltaRouter::new(vec![0], 2, false);
        r.push_vertex(1);
        assert_eq!(r.owner(1), 1);
    }
}
