//! Cross-partition delta routing.
//!
//! A change to edge `(a, b)` must reach every partition whose subgraph holds
//! that edge: the owner of `b` for a directed graph (partition subgraphs
//! keep the in-edges of owned vertices), and the owners of both endpoints
//! for an undirected one. The router preserves the relative order of the
//! changes inside each partition's delta, which is what makes routing
//! commute with [`DeltaBatch::coalesce`] (last-op-wins semantics survive the
//! split — see `tests/partition_routing.rs`).

use ink_graph::{DeltaBatch, EdgeChange, VertexId};
use std::sync::Arc;

/// Routes [`DeltaBatch`]es onto per-partition deltas according to a vertex
/// ownership assignment. The assignment lives behind an [`Arc`] so a
/// [`RoutingView`] snapshot shares it with a pre-routing thread for free;
/// [`DeltaRouter::push_vertex`] copies-on-write and bumps the generation,
/// which is how stale views are detected.
#[derive(Clone, Debug)]
pub struct DeltaRouter {
    assignment: Arc<Vec<u32>>,
    parts: usize,
    directed: bool,
    generation: u64,
}

impl DeltaRouter {
    /// A router over `parts` partitions for the given per-vertex owners.
    ///
    /// # Panics
    ///
    /// When `parts` is 0 or a label is out of range.
    pub fn new(assignment: Vec<u32>, parts: usize, directed: bool) -> Self {
        assert!(parts > 0, "need at least one partition");
        assert!(
            assignment.iter().all(|&p| (p as usize) < parts),
            "partition labels must be < parts"
        );
        Self { assignment: Arc::new(assignment), parts, directed, generation: 0 }
    }

    /// The partition owning vertex `v`.
    ///
    /// # Panics
    ///
    /// When `v` is not covered by the assignment.
    pub fn owner(&self, v: VertexId) -> u32 {
        self.assignment[v as usize]
    }

    /// Number of partitions routed to.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The per-vertex owner labels.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Extends the assignment with the owner of a newly added vertex (ids
    /// are dense, so the new vertex is `assignment.len()`). Invalidates every
    /// outstanding [`RoutingView`] by bumping the generation.
    pub fn push_vertex(&mut self, part: u32) {
        assert!((part as usize) < self.parts, "partition label out of range");
        Arc::make_mut(&mut self.assignment).push(part);
        self.generation += 1;
    }

    /// The assignment generation: bumped whenever the vertex set (and hence
    /// the routing function) changes.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// An immutable snapshot of the routing function, cheap to clone and
    /// safe to hand to another thread: the serve writer's stage-A thread
    /// pre-routes epoch N+1 with it while the driver applies epoch N.
    /// `max_batch` is the ingest chunk size the view must reproduce.
    pub fn view(&self, max_batch: usize) -> RoutingView {
        RoutingView {
            assignment: Arc::clone(&self.assignment),
            parts: self.parts,
            directed: self.directed,
            generation: self.generation,
            max_batch: max_batch.max(1),
        }
    }

    /// The partitions a single change lands on: the second slot is occupied
    /// only for an undirected cross-cut change (and differs from the first).
    pub fn route_change(&self, c: &EdgeChange) -> (u32, Option<u32>) {
        let (ps, pd) = (self.owner(c.src), self.owner(c.dst));
        if self.directed {
            (pd, None)
        } else if ps == pd {
            (ps, None)
        } else {
            (ps, Some(pd))
        }
    }

    /// True when the change crosses the cut (its endpoints have different
    /// owners) — the definition of a *boundary event*.
    pub fn is_boundary(&self, c: &EdgeChange) -> bool {
        self.owner(c.src) != self.owner(c.dst)
    }

    /// Splits `delta` into one delta per partition, preserving relative
    /// change order within each. An undirected cross-cut change appears in
    /// both endpoint owners' deltas; every other change appears exactly
    /// once.
    pub fn route(&self, delta: &DeltaBatch) -> Vec<DeltaBatch> {
        route_changes(&self.assignment, self.parts, self.directed, delta.changes())
    }
}

/// The shared routing kernel: one output delta per partition, relative order
/// preserved (see [`DeltaRouter::route`]).
fn route_changes(
    assignment: &[u32],
    parts: usize,
    directed: bool,
    changes: &[EdgeChange],
) -> Vec<DeltaBatch> {
    let mut out: Vec<Vec<EdgeChange>> = vec![Vec::new(); parts];
    for c in changes {
        let (ps, pd) = (assignment[c.src as usize], assignment[c.dst as usize]);
        if directed {
            out[pd as usize].push(*c);
        } else {
            out[ps as usize].push(*c);
            if ps != pd {
                out[pd as usize].push(*c);
            }
        }
    }
    out.into_iter().map(DeltaBatch::new).collect()
}

/// A frozen snapshot of the routing function (assignment + directedness +
/// ingest chunking), taken via [`DeltaRouter::view`]. Routing is a pure
/// function of the assignment — independent of graph state — so a snapshot
/// routes future deltas exactly as the live router will, as long as the
/// generation still matches (no vertex was added in between).
#[derive(Clone, Debug)]
pub struct RoutingView {
    assignment: Arc<Vec<u32>>,
    parts: usize,
    directed: bool,
    generation: u64,
    max_batch: usize,
}

impl RoutingView {
    /// Routes `delta` ahead of time: the batch is split into the same
    /// `max_batch` chunks `PartitionedInkStream::ingest` will form, and each
    /// chunk is routed onto per-partition deltas. The result is only
    /// consumed when its generation still matches the live router.
    pub fn route(&self, delta: &DeltaBatch) -> PreRouted {
        let chunks = delta
            .changes()
            .chunks(self.max_batch)
            .map(|chunk| route_changes(&self.assignment, self.parts, self.directed, chunk))
            .collect();
        PreRouted { generation: self.generation, chunks }
    }

    /// The assignment generation this view was taken at.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// Per-chunk routed deltas produced by [`RoutingView::route`], aligned with
/// the chunking `PartitionedInkStream::ingest` performs. Consumed by
/// `ingest_prerouted`, which falls back to live routing when the generation
/// is stale.
#[derive(Clone, Debug, Default)]
pub struct PreRouted {
    pub(crate) generation: u64,
    pub(crate) chunks: Vec<Vec<DeltaBatch>>,
}

impl PreRouted {
    /// Number of ingest chunks routed.
    pub fn chunks(&self) -> usize {
        self.chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ink_graph::EdgeOp;

    fn change(src: u32, dst: u32, op: EdgeOp) -> EdgeChange {
        match op {
            EdgeOp::Insert => EdgeChange::insert(src, dst),
            EdgeOp::Remove => EdgeChange::remove(src, dst),
        }
    }

    #[test]
    fn directed_routes_to_dst_owner_only() {
        let r = DeltaRouter::new(vec![0, 1, 1], 2, true);
        let d = DeltaBatch::new(vec![change(0, 1, EdgeOp::Insert), change(1, 0, EdgeOp::Insert)]);
        let routed = r.route(&d);
        assert_eq!(routed[0].changes(), &[change(1, 0, EdgeOp::Insert)]);
        assert_eq!(routed[1].changes(), &[change(0, 1, EdgeOp::Insert)]);
    }

    #[test]
    fn undirected_cut_change_lands_on_both_owners() {
        let r = DeltaRouter::new(vec![0, 1, 1], 2, false);
        let d = DeltaBatch::new(vec![change(0, 1, EdgeOp::Insert), change(1, 2, EdgeOp::Remove)]);
        let routed = r.route(&d);
        assert_eq!(routed[0].changes(), &[change(0, 1, EdgeOp::Insert)]);
        assert_eq!(
            routed[1].changes(),
            &[change(0, 1, EdgeOp::Insert), change(1, 2, EdgeOp::Remove)]
        );
        assert!(r.is_boundary(&change(0, 1, EdgeOp::Insert)));
        assert!(!r.is_boundary(&change(1, 2, EdgeOp::Remove)));
    }

    #[test]
    fn routing_preserves_relative_order() {
        let r = DeltaRouter::new(vec![0, 0, 1], 2, false);
        let d = DeltaBatch::new(vec![
            change(0, 1, EdgeOp::Insert),
            change(0, 2, EdgeOp::Insert),
            change(0, 1, EdgeOp::Remove),
        ]);
        let routed = r.route(&d);
        assert_eq!(
            routed[0].changes(),
            &[
                change(0, 1, EdgeOp::Insert),
                change(0, 2, EdgeOp::Insert),
                change(0, 1, EdgeOp::Remove)
            ]
        );
        assert_eq!(routed[1].changes(), &[change(0, 2, EdgeOp::Insert)]);
    }

    #[test]
    fn push_vertex_extends_ownership() {
        let mut r = DeltaRouter::new(vec![0], 2, false);
        r.push_vertex(1);
        assert_eq!(r.owner(1), 1);
    }

    #[test]
    fn view_routes_like_the_live_router_until_invalidated() {
        let mut r = DeltaRouter::new(vec![0, 1, 1, 0], 2, false);
        let view = r.view(2);
        let d = DeltaBatch::new(vec![
            change(0, 1, EdgeOp::Insert),
            change(2, 3, EdgeOp::Insert),
            change(1, 2, EdgeOp::Remove),
        ]);
        let pre = view.route(&d);
        assert_eq!(pre.chunks(), 2, "3 changes at max_batch=2 form 2 chunks");
        // Chunk-by-chunk, the view matches routing the same chunk live.
        for (i, chunk) in d.changes().chunks(2).enumerate() {
            let live = r.route(&DeltaBatch::new(chunk.to_vec()));
            for (a, b) in pre.chunks[i].iter().zip(&live) {
                assert_eq!(a.changes(), b.changes());
            }
        }
        assert_eq!(view.generation(), r.generation());
        r.push_vertex(1);
        assert_ne!(view.generation(), r.generation(), "vertex add invalidates the view");
    }
}
