#![deny(missing_docs)]
//! # ink-partition
//!
//! Partition-parallel incremental inference: [`PartitionedInkStream`] splits
//! one logical graph across N independent [`inkstream::InkStream`] engines —
//! one per partition — and keeps the merged result **bitwise identical** to a
//! single engine running the same update stream.
//!
//! The design follows the scale-out recipe of Ripple-style streaming GNN
//! systems (see PAPERS.md): vertex partitioning with boundary-vertex
//! replication and cross-partition update routing, layered on top of the
//! single-engine event pipeline instead of replacing it.
//!
//! * [`partitioner`] — [`Partitioner`] strategies ([`HashPartitioner`],
//!   [`GreedyEdgeCut`]) that label every vertex with an owning partition.
//! * [`router`] — [`DeltaRouter`] turns one [`ink_graph::DeltaBatch`] into
//!   per-partition deltas (a cross-cut change lands on every partition that
//!   holds the edge).
//! * [`replication`] — [`ReplicationTable`] tracks, per boundary vertex, the
//!   foreign partitions holding a ghost copy, refcounted by cut edges.
//! * [`engine`] — [`PartitionedInkStream`]: the BSP driver stepping every
//!   engine layer by layer with a boundary-row exchange in between, plus the
//!   session layer (ingest batching, drift audits, resync, summary fold).
//! * [`pool`] — [`pool::WorkerPool`]: one persistent, parked worker thread
//!   per partition, woken per round step via condvar/epoch-counter barriers;
//!   worker panics poison the pool into a typed error instead of aborting.
//!
//! ## Ownership model
//!
//! Every engine sees the **full vertex set** (global ids, full-width state
//! matrices) but only the edges incident to the vertices it owns. Vertices it
//! does not own are *ghosts*: their cached messages mirror the owner's and
//! are refreshed between layers; their aggregates and outputs are never
//! touched (the engine's ownership mask filters every event that targets
//! them). The merged output takes each vertex's row from its owner.
//!
//! ```
//! use ink_graph::{DeltaBatch, DynGraph, EdgeChange};
//! use ink_gnn::{Aggregator, Model};
//! use ink_partition::{HashPartitioner, PartitionConfig, PartitionedInkStream};
//! use ink_tensor::init;
//! use inkstream::{InkStream, UpdateConfig};
//!
//! let mut rng = init::seeded_rng(7);
//! let graph = DynGraph::undirected_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
//! let features = init::uniform(&mut rng, 6, 4, -1.0, 1.0);
//! let model = |seed: u64| {
//!     let mut mr = init::seeded_rng(seed);
//!     Model::gcn(&mut mr, &[4, 5, 3], Aggregator::Max)
//! };
//!
//! let mut single =
//!     InkStream::new(model(1), graph.clone(), features.clone(), UpdateConfig::default()).unwrap();
//! let mut parted = PartitionedInkStream::new(
//!     move || model(1),
//!     graph,
//!     features,
//!     HashPartitioner,
//!     PartitionConfig { parts: 3, ..Default::default() },
//! )
//! .unwrap();
//!
//! let delta = DeltaBatch::new(vec![EdgeChange::insert(0, 4), EdgeChange::remove(2, 3)]);
//! single.apply_delta(&delta);
//! parted.apply_delta(&delta);
//! assert_eq!(&parted.output(), single.output()); // bitwise
//! ```

pub mod engine;
pub mod metrics;
pub mod partitioner;
pub mod pool;
pub mod replication;
pub mod router;

pub use engine::{
    ApplyExecutor, PartitionConfig, PartitionError, PartitionSummary, PartitionedInkStream,
};
pub use partitioner::{GreedyEdgeCut, HashPartitioner, Partitioner};
pub use pool::{PoolPanic, StepOp, WorkerPool};
pub use replication::ReplicationTable;
pub use router::{DeltaRouter, PreRouted, RoutingView};
