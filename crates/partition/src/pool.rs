//! Persistent partition worker pool.
//!
//! PR 10 replaces the per-round `std::thread::scope` spawns of the BSP driver
//! with one long-lived, parked worker thread per partition. A round step is a
//! condvar/epoch-counter barrier:
//!
//! 1. The driver publishes the [`StepOp`] and one raw engine pointer per
//!    partition, bumps the round counter, and notifies `work`.
//! 2. Every worker wakes, takes the engines assigned to it (worker `w` owns
//!    partitions `w, w + W, w + 2W, …`), runs the step under
//!    `catch_unwind`, records its per-engine wall time, and increments
//!    `done` — notifying `finished` when it is the last one.
//! 3. The driver sleeps on `finished` until `done == workers`, then folds the
//!    durations into the usual skew/wall instruments.
//!
//! A panic inside a step does **not** abort the process: the unwinding worker
//! still reaches the barrier (so the driver never deadlocks), the first panic
//! payload is captured, and the pool is *poisoned* — every subsequent
//! [`WorkerPool::step`] fails fast with the same [`PoolPanic`] until
//! [`WorkerPool::clear_poison`] runs (the partitioned driver does this from
//! `resync()`, after rebuilding engine state from the global replica).
//!
//! ## Safety
//!
//! Workers receive `*mut InkStream` wrapped in `Task`. The contract making
//! this sound is structural: [`WorkerPool::step`] takes `&mut [InkStream]`,
//! hands out one distinct pointer per engine, and does not return until every
//! worker has passed the barrier — the mutable borrow therefore outlives all
//! worker access, and no two workers ever hold the same pointer.

use ink_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use inkstream::InkStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The engine step a pool round dispatches to every partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOp {
    /// [`InkStream::round_rescale`] on the given layer.
    Rescale(usize),
    /// [`InkStream::round_process`] on the given layer.
    Process(usize),
}

impl StepOp {
    fn run(self, e: &mut InkStream) {
        match self {
            StepOp::Rescale(l) => e.round_rescale(l),
            StepOp::Process(l) => e.round_process(l),
        }
    }
}

/// A captured worker panic: which partition's step unwound, and the rendered
/// payload. Also the poison token — once set, the pool fails fast.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolPanic {
    /// Index of the partition whose step panicked.
    pub partition: usize,
    /// Rendered panic payload (the message for `&str`/`String` panics).
    pub detail: String,
}

/// The `ink_partition_pool_*` instrument set.
pub struct PoolInstruments {
    /// Worker threads the pool runs (static after construction).
    pub workers: Arc<Gauge>,
    /// Barrier rounds driven to completion (one per rescale/process step).
    pub rounds: Arc<Counter>,
    /// Time a worker spent parked between rounds, per wake, in nanoseconds.
    pub park_ns: Arc<Histogram>,
    /// Slowest minus fastest per-engine step within one pool round, in
    /// nanoseconds — the pool-side straggler signal.
    pub skew_ns: Arc<Histogram>,
    /// Worker panics captured (each one poisons the pool until resync).
    pub panics: Arc<Counter>,
}

impl PoolInstruments {
    /// Registers the instrument set (idempotent per registry).
    pub fn register(r: &MetricsRegistry) -> Self {
        Self {
            workers: r.gauge("ink_partition_pool_workers", "Persistent pool worker threads"),
            rounds: r.counter(
                "ink_partition_pool_rounds_total",
                "Pool barrier rounds driven to completion",
            ),
            park_ns: r.histogram(
                "ink_partition_pool_park_ns",
                "Time a pool worker spent parked between rounds",
            ),
            skew_ns: r.histogram(
                "ink_partition_pool_skew_ns",
                "Slowest minus fastest engine step within one pool round",
            ),
            panics: r.counter(
                "ink_partition_pool_panics_total",
                "Worker panics captured (pool poisoned until resync)",
            ),
        }
    }
}

/// Raw engine pointer, movable to a worker. See the module-level safety
/// argument: the driver's `&mut` borrow brackets all worker access.
struct Task(*mut InkStream);
// SAFETY: the pointer is only dereferenced between the work signal and the
// finish barrier of one `step` call, during which the driver holds `&mut`
// over the pointee and hands each pointer to exactly one worker.
unsafe impl Send for Task {}

/// Everything behind the barrier mutex.
struct PoolState {
    /// Epoch counter: a bump is the wake signal for parked workers.
    round: u64,
    op: StepOp,
    /// One slot per partition; workers `take()` their assigned slots.
    tasks: Vec<Option<Task>>,
    /// Per-partition step durations for the round in flight.
    durations: Vec<Duration>,
    /// Workers past the barrier for the round in flight.
    done: usize,
    /// First panic captured in the round in flight.
    panic: Option<PoolPanic>,
    /// Sticky poison from an earlier round.
    poisoned: Option<PoolPanic>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Driver → workers: a new round (or shutdown) is published.
    work: Condvar,
    /// Workers → driver: the last worker passed the barrier.
    finished: Condvar,
}

/// The persistent worker pool owned by `PartitionedInkStream`. One thread per
/// worker slot, parked between rounds; see the module docs for the protocol.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    parts: usize,
    inst: PoolInstruments,
}

impl WorkerPool {
    /// Spawns `workers` threads (clamped to `[1, parts]`) covering `parts`
    /// partitions round-robin, and registers the `ink_partition_pool_*`
    /// instruments into `registry`.
    pub fn new(parts: usize, workers: usize, registry: &MetricsRegistry) -> Self {
        assert!(parts >= 1, "pool needs at least one partition");
        let workers = workers.clamp(1, parts);
        let inst = PoolInstruments::register(registry);
        inst.workers.set_u64(workers as u64);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                round: 0,
                op: StepOp::Rescale(0),
                tasks: (0..parts).map(|_| None).collect(),
                durations: vec![Duration::ZERO; parts],
                done: 0,
                panic: None,
                poisoned: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            finished: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let park_ns = Arc::clone(&inst.park_ns);
                std::thread::Builder::new()
                    .name(format!("ink-part-w{w}"))
                    .spawn(move || worker_loop(w, workers, parts, &shared, &park_ns))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, handles, workers, parts, inst }
    }

    /// Worker threads actually running.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The poison token, when a worker has panicked since the last
    /// [`WorkerPool::clear_poison`].
    pub fn poisoned(&self) -> Option<PoolPanic> {
        self.shared.state.lock().unwrap().poisoned.clone()
    }

    /// Clears the poison token; the driver calls this after `resync()`
    /// rebuilt every engine's state, making the pool usable again.
    pub fn clear_poison(&self) {
        self.shared.state.lock().unwrap().poisoned = None;
    }

    /// One barrier round: runs `op` on every engine and returns the
    /// per-partition durations. Fails fast (without waking workers) when the
    /// pool is poisoned; captures at most one new panic per round, poisons
    /// the pool with it, and reports it — the barrier itself never deadlocks
    /// because an unwinding worker still increments `done`.
    pub fn step(
        &self,
        engines: &mut [InkStream],
        op: StepOp,
    ) -> Result<Vec<Duration>, PoolPanic> {
        assert_eq!(engines.len(), self.parts, "pool sized for a fixed partition count");
        let mut state = self.shared.state.lock().unwrap();
        if let Some(p) = &state.poisoned {
            return Err(p.clone());
        }
        for (slot, e) in state.tasks.iter_mut().zip(engines.iter_mut()) {
            *slot = Some(Task(e as *mut InkStream));
        }
        state.op = op;
        state.done = 0;
        state.panic = None;
        state.round += 1;
        self.shared.work.notify_all();
        state = self
            .shared
            .finished
            .wait_while(state, |s| s.done < self.workers)
            .unwrap();
        self.inst.rounds.inc();
        let durations = std::mem::replace(
            &mut state.durations,
            vec![Duration::ZERO; self.parts],
        );
        if self.parts > 1 {
            let (mut min, mut max) = (Duration::MAX, Duration::ZERO);
            for d in &durations {
                min = min.min(*d);
                max = max.max(*d);
            }
            self.inst.skew_ns.record((max - min).as_nanos() as u64);
        }
        if let Some(p) = state.panic.take() {
            self.inst.panics.inc();
            state.poisoned = Some(p.clone());
            return Err(p);
        }
        Ok(durations)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    w: usize,
    workers: usize,
    parts: usize,
    shared: &PoolShared,
    park_ns: &Histogram,
) {
    let mut seen = 0u64;
    loop {
        // Park until a new round (or shutdown) is published.
        let (op, mine) = {
            let mut state = shared.state.lock().unwrap();
            let parked = Instant::now();
            state = shared
                .work
                .wait_while(state, |s| s.round == seen && !s.shutdown)
                .unwrap();
            if state.shutdown {
                return;
            }
            park_ns.record(parked.elapsed().as_nanos() as u64);
            seen = state.round;
            let mine: Vec<(usize, Task)> = (w..parts)
                .step_by(workers)
                .filter_map(|i| state.tasks[i].take().map(|t| (i, t)))
                .collect();
            (state.op, mine)
        };

        // Run outside the lock; a panic is captured per engine so the
        // barrier below is always reached.
        let mut results: Vec<(usize, Duration)> = Vec::with_capacity(mine.len());
        let mut first_panic: Option<PoolPanic> = None;
        for (i, task) in mine {
            let t0 = Instant::now();
            // SAFETY: see the module docs — exclusive pointer, bracketed by
            // the driver's `&mut` borrow for the duration of this round.
            let engine = unsafe { &mut *task.0 };
            let outcome = catch_unwind(AssertUnwindSafe(|| op.run(engine)));
            results.push((i, t0.elapsed()));
            if let Err(payload) = outcome {
                first_panic.get_or_insert(PoolPanic {
                    partition: i,
                    detail: payload_str(payload.as_ref()),
                });
            }
        }

        let mut state = shared.state.lock().unwrap();
        for (i, d) in results {
            state.durations[i] = d;
        }
        if state.panic.is_none() {
            state.panic = first_panic;
        }
        state.done += 1;
        if state.done == workers {
            shared.finished.notify_all();
        }
    }
}

/// Renders a panic payload: the message for `&str`/`String` panics, a
/// placeholder otherwise.
fn payload_str(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ink_gnn::{Aggregator, Model};
    use ink_graph::generators::erdos_renyi;
    use ink_graph::{DeltaBatch, EdgeChange};
    use ink_tensor::init::{seeded_rng, uniform};
    use inkstream::UpdateConfig;

    fn engine(seed: u64) -> InkStream {
        let mut rng = seeded_rng(seed);
        let g = erdos_renyi(&mut rng, 12, 24);
        let x = uniform(&mut rng, 12, 4, -1.0, 1.0);
        let mut mr = seeded_rng(3);
        let m = Model::gcn(&mut mr, &[4, 5, 3], Aggregator::Sum);
        InkStream::new(m, g, x, UpdateConfig::default()).unwrap()
    }

    /// Drives one full round over `engines` through the pool, mirroring the
    /// partitioned driver's schedule (no boundary exchange — each engine
    /// here is an independent full graph).
    fn pool_round(pool: &WorkerPool, engines: &mut [InkStream], delta: &DeltaBatch) {
        for e in engines.iter_mut() {
            e.round_begin(delta, &[]).unwrap();
        }
        let k = engines[0].model().num_layers();
        for l in 0..k {
            pool.step(engines, StepOp::Rescale(l)).unwrap();
            pool.step(engines, StepOp::Process(l)).unwrap();
        }
        for e in engines.iter_mut() {
            e.round_finish();
        }
    }

    #[test]
    fn pool_round_matches_direct_round() {
        let registry = MetricsRegistry::new();
        let pool = WorkerPool::new(2, 2, &registry);
        let mut pooled = vec![engine(1), engine(1)];
        let mut direct = engine(1);
        let delta = DeltaBatch::new(vec![EdgeChange::insert(0, 7), EdgeChange::remove(1, 2)]);
        pool_round(&pool, &mut pooled, &delta);
        direct.apply_delta(&delta);
        assert_eq!(pooled[0].output(), direct.output());
        assert_eq!(pooled[1].output(), direct.output());
        assert!(pool.inst.rounds.get() >= 4);
        let text = registry.render_prometheus();
        assert!(text.contains("ink_partition_pool_workers 2"));
        assert!(text.contains("ink_partition_pool_rounds_total"));
    }

    #[test]
    fn fewer_workers_than_partitions_cover_every_engine() {
        let registry = MetricsRegistry::new();
        let pool = WorkerPool::new(3, 1, &registry);
        assert_eq!(pool.workers(), 1);
        let mut pooled = vec![engine(9), engine(9), engine(9)];
        let delta = DeltaBatch::new(vec![EdgeChange::insert(2, 10)]);
        pool_round(&pool, &mut pooled, &delta);
        let mut direct = engine(9);
        direct.apply_delta(&delta);
        for e in &pooled {
            assert_eq!(e.output(), direct.output());
        }
    }

    #[test]
    fn panic_poisons_pool_and_clears_on_request() {
        let registry = MetricsRegistry::new();
        let pool = WorkerPool::new(2, 2, &registry);
        let mut engines = vec![engine(4), engine(4)];
        // round_rescale without round_begin panics inside the worker.
        let err = pool.step(&mut engines, StepOp::Rescale(0)).unwrap_err();
        assert!(err.detail.contains("active round"), "payload: {}", err.detail);
        assert_eq!(pool.poisoned(), Some(err.clone()));
        // Fail fast: no barrier round runs while poisoned.
        let rounds = pool.inst.rounds.get();
        assert_eq!(pool.step(&mut engines, StepOp::Rescale(0)).unwrap_err(), err);
        assert_eq!(pool.inst.rounds.get(), rounds);
        assert_eq!(pool.inst.panics.get(), 1);
        pool.clear_poison();
        // Healthy engines drive a full round again after clearing.
        let delta = DeltaBatch::new(vec![EdgeChange::insert(0, 5)]);
        pool_round(&pool, &mut engines, &delta);
    }

    #[test]
    fn drop_joins_parked_workers() {
        let registry = MetricsRegistry::new();
        let pool = WorkerPool::new(4, 4, &registry);
        drop(pool); // must not hang
    }
}
