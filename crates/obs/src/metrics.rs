//! Atomic metric instruments and the [`MetricsRegistry`].
//!
//! Three instrument kinds cover the workspace's needs:
//!
//! * [`Counter`] — monotonically increasing `u64` (events, bytes, errors).
//! * [`Gauge`] — instantaneous `f64` value (queue depth, scratch bytes,
//!   maximum observed drift).
//! * [`Histogram`] — fixed-bucket log-scale distribution of `u64` samples
//!   (latencies in nanoseconds). Recording is lock-free and allocation-free:
//!   every sample is three `fetch_add`s plus a `fetch_min`/`fetch_max`, with
//!   the bucket array preallocated at registration time.
//!
//! Instruments are handed out as `Arc`s by a [`MetricsRegistry`], which owns
//! the name → instrument table and renders the whole set as Prometheus text
//! exposition (see [`MetricsRegistry::render_prometheus`]).
//!
//! # Bucket layout
//!
//! Values `0..16` get one exact bucket each. Above that, each power-of-two
//! octave `[2^k, 2^(k+1))` is split into 8 equal sub-buckets, so the relative
//! quantization error of any bucket is at most 12.5 %. The full `u64` range is
//! covered by [`NUM_BUCKETS`] (= 496) buckets — about 4 KiB of atomics per
//! histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of exact low-value buckets (values `0..LINEAR_MAX` map to
/// themselves).
pub const LINEAR_MAX: u64 = 16;
/// log2 of the number of sub-buckets per power-of-two octave.
pub const SUB_BITS: u32 = 3;
/// Sub-buckets per octave (`2^SUB_BITS`).
pub const SUB: u64 = 1 << SUB_BITS;
/// Total number of histogram buckets covering the full `u64` range.
pub const NUM_BUCKETS: usize = LINEAR_MAX as usize + 60 * SUB as usize;

/// A monotonically increasing counter.
///
/// All operations are relaxed atomics; counters are safe to share across
/// threads via `Arc` and never allocate after construction.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous value that can move up and down.
///
/// Stored as `f64` bits inside an `AtomicU64`, so reads and writes are
/// lock-free. Integer convenience setters are provided because most gauges in
/// this workspace track byte counts and queue depths.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self { bits: AtomicU64::new(0f64.to_bits()) }
    }
}

impl Gauge {
    /// Creates a gauge holding `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Sets the gauge from an integer value.
    pub fn set_u64(&self, v: u64) {
        self.set(v as f64);
    }

    /// Adds `d` (may be negative) with a CAS loop.
    pub fn add(&self, d: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self.bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Raises the gauge to `v` if `v` is greater than the current value.
    /// `NaN` proposals are ignored.
    pub fn set_max(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let cur_f = f64::from_bits(cur);
            // Keep the current value unless `v` beats it; a NaN current value
            // compares false here, so it is always replaced.
            if v <= cur_f {
                return;
            }
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns the current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket log-scale histogram of `u64` samples.
///
/// The record path ([`Histogram::record`]) touches only preallocated atomics —
/// no locks, no allocation — so it is safe on the hot pipeline path. Quantile
/// estimates ([`Histogram::quantile`]) return the inclusive upper bound of the
/// bucket holding the requested rank (clamped to the exact observed maximum),
/// which keeps them within one bucket boundary of the exact sample quantile.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        // `AtomicU64` is not Copy; build the array through a Vec once.
        let v: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> =
            v.into_boxed_slice().try_into().expect("bucket count is fixed");
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Returns the bucket index a value falls into.
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // >= 4
    let octave = (top - 4) as usize;
    let sub = ((v >> (top - SUB_BITS)) & (SUB - 1)) as usize;
    LINEAR_MAX as usize + octave * SUB as usize + sub
}

/// Returns the `(lower, upper)` inclusive value range of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < NUM_BUCKETS, "bucket index out of range");
    if (i as u64) < LINEAR_MAX {
        return (i as u64, i as u64);
    }
    let rel = i - LINEAR_MAX as usize;
    let octave = (rel / SUB as usize) as u32;
    let sub = (rel % SUB as usize) as u64;
    let lower = (1u64 << (octave + 4)) + (sub << (octave + 1));
    let width = 1u64 << (octave + 1);
    (lower, lower + (width - 1))
}

impl Histogram {
    /// Creates an empty histogram (all buckets preallocated).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Lock-free and allocation-free.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact minimum recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Exact maximum recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) of the recorded samples.
    ///
    /// Returns the inclusive upper bound of the bucket containing the sample
    /// of rank `ceil(q * count)`, clamped to the exact observed maximum. The
    /// estimate is therefore always `>=` the exact quantile and lies in the
    /// same bucket, bounding the error by one bucket width (≤ 12.5 %
    /// relative).
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for i in 0..NUM_BUCKETS {
            cum += self.buckets[i].load(Ordering::Relaxed);
            if cum >= target {
                let (_, upper) = bucket_bounds(i);
                return upper.min(self.max());
            }
        }
        self.max()
    }

    /// Raw per-bucket counts (relaxed snapshot; may be mid-update under
    /// concurrent recording).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Approximate heap footprint of the bucket array in bytes. Constant for
    /// the lifetime of the histogram — the record path never allocates — so
    /// tests can assert this stays flat across heavy recording (mirroring the
    /// scratch-pool `bytes()` stability check in the core pipeline).
    pub fn bytes(&self) -> usize {
        NUM_BUCKETS * std::mem::size_of::<AtomicU64>()
    }
}

/// The kind of an instrument, used for Prometheus `# TYPE` lines and to catch
/// registration conflicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrumentKind {
    /// Monotonic counter.
    Counter,
    /// Instantaneous gauge.
    Gauge,
    /// Log-bucket histogram.
    Histogram,
}

impl InstrumentKind {
    fn as_str(self) -> &'static str {
        match self {
            InstrumentKind::Counter => "counter",
            InstrumentKind::Gauge => "gauge",
            InstrumentKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    instrument: Instrument,
}

/// A named collection of instruments, rendered as Prometheus text exposition.
///
/// Registration is idempotent: asking for an existing name returns the same
/// underlying instrument (so independent subsystems can share one registry
/// without coordinating), while asking for an existing name with a different
/// instrument kind panics — that is always a programming error.
///
/// # Example
///
/// ```
/// use ink_obs::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let batches = registry.counter("ink_session_batches_total", "Batches applied");
/// let latency = registry.histogram("ink_session_batch_latency_ns", "Batch latency");
/// batches.inc();
/// latency.record(1_250);
///
/// let text = registry.render_prometheus();
/// assert!(text.contains("# TYPE ink_session_batches_total counter"));
/// assert!(text.contains("ink_session_batches_total 1"));
/// assert!(text.contains("ink_session_batch_latency_ns_count 1"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Formats an `f64` for Prometheus exposition.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it if absent.
    ///
    /// # Panics
    /// Panics if `name` is not a valid Prometheus metric name or is already
    /// registered as a different instrument kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        match self.get_or_insert(name, help, InstrumentKind::Counter) {
            Instrument::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Returns the gauge registered under `name`, creating it if absent.
    ///
    /// # Panics
    /// Panics if `name` is not a valid Prometheus metric name or is already
    /// registered as a different instrument kind.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, help, InstrumentKind::Gauge) {
            Instrument::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Returns the histogram registered under `name`, creating it if absent.
    ///
    /// # Panics
    /// Panics if `name` is not a valid Prometheus metric name or is already
    /// registered as a different instrument kind.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, help, InstrumentKind::Histogram) {
            Instrument::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    fn get_or_insert(&self, name: &str, help: &str, kind: InstrumentKind) -> Instrument {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let mut entries = self.entries.lock().expect("registry lock poisoned");
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            let existing = match e.instrument {
                Instrument::Counter(_) => InstrumentKind::Counter,
                Instrument::Gauge(_) => InstrumentKind::Gauge,
                Instrument::Histogram(_) => InstrumentKind::Histogram,
            };
            assert_eq!(existing, kind, "metric {name:?} already registered as {existing:?}");
            return e.instrument.clone();
        }
        let instrument = match kind {
            InstrumentKind::Counter => Instrument::Counter(Arc::new(Counter::new())),
            InstrumentKind::Gauge => Instrument::Gauge(Arc::new(Gauge::new())),
            InstrumentKind::Histogram => Instrument::Histogram(Arc::new(Histogram::new())),
        };
        entries.push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            instrument: instrument.clone(),
        });
        instrument
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("registry lock poisoned").len()
    }

    /// True when nothing has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders every instrument as Prometheus text exposition (version 0.0.4).
    ///
    /// Counters and gauges emit one sample each; histograms emit cumulative
    /// `_bucket{le="..."}` samples for each non-empty bucket plus the
    /// mandatory `le="+Inf"`, followed by `_sum` and `_count`. Bucket `le`
    /// bounds are the inclusive upper value of each log-scale bucket.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().expect("registry lock poisoned");
        let mut out = String::with_capacity(entries.len() * 128);
        for e in entries.iter() {
            let kind = match &e.instrument {
                Instrument::Counter(_) => InstrumentKind::Counter,
                Instrument::Gauge(_) => InstrumentKind::Gauge,
                Instrument::Histogram(_) => InstrumentKind::Histogram,
            };
            out.push_str(&format!("# HELP {} {}\n", e.name, escape_help(&e.help)));
            out.push_str(&format!("# TYPE {} {}\n", e.name, kind.as_str()));
            match &e.instrument {
                Instrument::Counter(c) => {
                    out.push_str(&format!("{} {}\n", e.name, c.get()));
                }
                Instrument::Gauge(g) => {
                    out.push_str(&format!("{} {}\n", e.name, fmt_value(g.get())));
                }
                Instrument::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cum = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        if *c == 0 {
                            continue;
                        }
                        cum += c;
                        let (_, upper) = bucket_bounds(i);
                        out.push_str(&format!(
                            "{}_bucket{{le=\"{}\"}} {}\n",
                            e.name, upper, cum
                        ));
                    }
                    out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", e.name, cum));
                    out.push_str(&format!("{}_sum {}\n", e.name, h.sum()));
                    out.push_str(&format!("{}_count {}\n", e.name, h.count()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
        g.set_max(0.5);
        assert!((g.get() - 1.5).abs() < 1e-12);
        g.set_max(9.0);
        assert!((g.get() - 9.0).abs() < 1e-12);
        g.set_max(f64::NAN);
        assert!((g.get() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_layout_is_contiguous_and_monotonic() {
        // Every value maps into a bucket whose bounds contain it, and bucket
        // ranges tile the u64 axis without gaps or overlaps.
        let mut prev_upper: Option<u64> = None;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            if let Some(p) = prev_upper {
                assert_eq!(lo, p.wrapping_add(1), "gap before bucket {i}");
            }
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            prev_upper = Some(hi);
        }
        assert_eq!(prev_upper, Some(u64::MAX));
        for v in [0u64, 1, 15, 16, 17, 255, 1024, 1 << 40, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "value {v} outside its bucket [{lo},{hi}]");
        }
    }

    #[test]
    fn histogram_quantiles_track_exact_values() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        // p50 exact = 500; estimate must land in the same log bucket.
        let p50 = h.quantile(0.5);
        assert_eq!(bucket_index(p50), bucket_index(500));
        assert!(p50 >= 500);
        // p100 clamps to the exact max.
        assert_eq!(h.quantile(1.0), 1000);
        // Empty histogram is all zeros.
        let empty = Histogram::new();
        assert_eq!(empty.quantile(0.99), 0);
        assert_eq!(empty.min(), 0);
    }

    #[test]
    fn registry_is_idempotent_and_typed() {
        let r = MetricsRegistry::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_conflicts() {
        let r = MetricsRegistry::new();
        r.counter("x_total", "x");
        r.gauge("x_total", "x");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn registry_rejects_bad_names() {
        let r = MetricsRegistry::new();
        r.counter("9starts_with_digit", "x");
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = MetricsRegistry::new();
        r.counter("a_total", "counts a").add(3);
        r.gauge("b_bytes", "bytes of b").set_u64(42);
        let h = r.histogram("c_ns", "latency of c");
        h.record(5);
        h.record(100);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP a_total counts a\n"));
        assert!(text.contains("# TYPE a_total counter\n"));
        assert!(text.contains("a_total 3\n"));
        assert!(text.contains("b_bytes 42\n"));
        assert!(text.contains("c_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("c_ns_sum 105\n"));
        assert!(text.contains("c_ns_count 2\n"));
    }
}
