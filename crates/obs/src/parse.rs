//! Validation-grade parsers for the two formats this crate *emits*.
//!
//! `ink-obs` produces Prometheus text exposition and Chrome `trace_event`
//! JSON; this module provides just enough of a parser for each so that tests
//! (and clients) can round-trip the output and assert it is well-formed —
//! without pulling serde or a real Prometheus client into the dependency
//! graph. These parsers accept the subset of each format the encoders emit
//! (plus common variations) and are **not** general-purpose.

use std::fmt;

/// Error produced by the parsers in this module, with a 1-based line number
/// where available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what failed to parse.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { message: message.into() })
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

/// A parsed JSON value (numbers are kept as `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object as an ordered key/value list (duplicate keys kept).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the array items if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the number if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => err(format!("unexpected byte {:?} at {}", c as char, self.pos)),
            None => err("unexpected end of input"),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ParseError { message: "non-utf8 number".into() })?;
        match text.parse::<f64>() {
            Ok(n) => Ok(JsonValue::Num(n)),
            Err(_) => err(format!("bad number {text:?} at byte {start}")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(ParseError {
                        message: "unterminated escape".into(),
                    })?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return err("truncated \\u escape");
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                    .map_err(|_| ParseError {
                                        message: "non-utf8 \\u escape".into(),
                                    })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| ParseError {
                                message: format!("bad \\u escape {hex:?}"),
                            })?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return err(format!("bad escape \\{}", c as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| ParseError { message: "non-utf8 string".into() })?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Parses a complete JSON document.
pub fn parse_json(text: &str) -> Result<JsonValue, ParseError> {
    let mut p = JsonParser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err(format!("trailing bytes after value at {}", p.pos));
    }
    Ok(v)
}

/// Validates a Chrome `trace_event` dump (object form) and returns the number
/// of events it contains.
///
/// Checks that the document parses as JSON, has a `traceEvents` array, and
/// that every event carries a string `name`, a string `ph`, numeric `ts`,
/// and — for complete (`"X"`) events — a numeric `dur`.
pub fn validate_chrome_trace(text: &str) -> Result<usize, ParseError> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or(ParseError { message: "missing traceEvents array".into() })?;
    for (i, ev) in events.iter().enumerate() {
        let name = ev.get("name").and_then(JsonValue::as_str);
        let ph = ev.get("ph").and_then(JsonValue::as_str);
        let ts = ev.get("ts").and_then(JsonValue::as_num);
        if name.is_none() || ph.is_none() || ts.is_none() {
            return err(format!("event {i} missing name/ph/ts"));
        }
        if ph == Some("X") && ev.get("dur").and_then(JsonValue::as_num).is_none() {
            return err(format!("complete event {i} missing dur"));
        }
    }
    Ok(events.len())
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// One sample line from a Prometheus exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Full sample name (family name plus `_bucket`/`_sum`/`_count` suffix
    /// for histograms).
    pub name: String,
    /// Label key/value pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf`, `-Inf` and `NaN` are accepted).
    pub value: f64,
}

impl PromSample {
    /// Looks up a label value.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// A metric family: its `# HELP`/`# TYPE` metadata plus samples.
#[derive(Debug, Clone, PartialEq)]
pub struct PromFamily {
    /// Family name from the `# TYPE` line.
    pub name: String,
    /// Help text (may be empty when no `# HELP` line was present).
    pub help: String,
    /// Declared type: `counter`, `gauge`, `histogram`, `summary`, `untyped`.
    pub kind: String,
    /// Samples belonging to this family.
    pub samples: Vec<PromSample>,
}

fn parse_prom_value(text: &str) -> Result<f64, ParseError> {
    match text {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        t => t
            .parse::<f64>()
            .map_err(|_| ParseError { message: format!("bad sample value {t:?}") }),
    }
}

fn parse_sample_line(line: &str) -> Result<PromSample, ParseError> {
    // name[{labels}] value [timestamp]
    let (name_and_labels, rest) = match line.find(['{', ' ']) {
        Some(i) if line.as_bytes()[i] == b'{' => {
            let close = line.rfind('}').ok_or(ParseError {
                message: format!("unterminated label set in {line:?}"),
            })?;
            (&line[..close + 1], line[close + 1..].trim_start())
        }
        Some(i) => (&line[..i], line[i..].trim_start()),
        None => return err(format!("sample line without value: {line:?}")),
    };
    let (name, labels) = match name_and_labels.find('{') {
        None => (name_and_labels.to_owned(), Vec::new()),
        Some(open) => {
            let name = name_and_labels[..open].to_owned();
            let body = &name_and_labels[open + 1..name_and_labels.len() - 1];
            let mut labels = Vec::new();
            for part in body.split(',').filter(|p| !p.is_empty()) {
                let eq = part.find('=').ok_or(ParseError {
                    message: format!("label without '=' in {line:?}"),
                })?;
                let key = part[..eq].trim().to_owned();
                let raw = part[eq + 1..].trim();
                if raw.len() < 2 || !raw.starts_with('"') || !raw.ends_with('"') {
                    return err(format!("unquoted label value in {line:?}"));
                }
                let val = raw[1..raw.len() - 1]
                    .replace("\\\"", "\"")
                    .replace("\\n", "\n")
                    .replace("\\\\", "\\");
                labels.push((key, val));
            }
            (name, labels)
        }
    };
    let value_text = rest.split_whitespace().next().ok_or(ParseError {
        message: format!("sample line without value: {line:?}"),
    })?;
    Ok(PromSample { name, labels, value: parse_prom_value(value_text)? })
}

/// Parses Prometheus text exposition (version 0.0.4) into metric families.
///
/// Performs structural validation: every non-comment line must parse as a
/// sample, every sample must follow a `# TYPE` declaration it belongs to
/// (matching the family name, allowing the histogram `_bucket`/`_sum`/
/// `_count` suffixes), and histogram `_bucket` series must be cumulative
/// (non-decreasing) and end with `le="+Inf"`.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromFamily>, ParseError> {
    let mut families: Vec<PromFamily> = Vec::new();
    let mut helps: Vec<(String, String)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').unwrap_or((rest, ""));
            helps.push((name.to_owned(), help.to_owned()));
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').ok_or(ParseError {
                message: format!("line {}: TYPE without kind", lineno + 1),
            })?;
            let help = helps
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h.clone())
                .unwrap_or_default();
            families.push(PromFamily {
                name: name.to_owned(),
                help,
                kind: kind.trim().to_owned(),
                samples: Vec::new(),
            });
        } else if line.starts_with('#') {
            continue; // other comments
        } else {
            let sample = parse_sample_line(line)
                .map_err(|e| ParseError { message: format!("line {}: {}", lineno + 1, e.message) })?;
            let family = families.last_mut().ok_or(ParseError {
                message: format!("line {}: sample before any # TYPE", lineno + 1),
            })?;
            let base = &family.name;
            let belongs = sample.name == *base
                || (family.kind == "histogram"
                    && [format!("{base}_bucket"), format!("{base}_sum"), format!("{base}_count")]
                        .contains(&sample.name));
            if !belongs {
                return err(format!(
                    "line {}: sample {:?} does not belong to family {:?}",
                    lineno + 1,
                    sample.name,
                    base
                ));
            }
            family.samples.push(sample);
        }
    }
    // Histogram invariants: cumulative buckets ending in +Inf.
    for fam in &families {
        if fam.kind != "histogram" {
            continue;
        }
        let buckets: Vec<&PromSample> =
            fam.samples.iter().filter(|s| s.name.ends_with("_bucket")).collect();
        if buckets.is_empty() {
            return err(format!("histogram {:?} has no buckets", fam.name));
        }
        let mut prev = 0.0f64;
        for b in &buckets {
            if b.label("le").is_none() {
                return err(format!("histogram {:?} bucket without le label", fam.name));
            }
            if b.value < prev {
                return err(format!("histogram {:?} buckets not cumulative", fam.name));
            }
            prev = b.value;
        }
        if buckets.last().unwrap().label("le") != Some("+Inf") {
            return err(format!("histogram {:?} missing +Inf bucket", fam.name));
        }
    }
    Ok(families)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_basics() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":"x\n\"y\"","c":null,"d":true}"#).unwrap();
        assert_eq!(v.get("b").and_then(JsonValue::as_str), Some("x\n\"y\""));
        let arr = v.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[2].as_num(), Some(-300.0));
        assert!(parse_json("{\"a\":1,}").is_err());
        assert!(parse_json("[1 2]").is_err());
        assert!(parse_json("{\"a\":1} junk").is_err());
    }

    #[test]
    fn chrome_trace_validation() {
        let good = r#"{"traceEvents":[{"name":"g","cat":"p","ph":"X","ts":1.5,"dur":2.0,"pid":1,"tid":1}]}"#;
        assert_eq!(validate_chrome_trace(good).unwrap(), 1);
        let missing_dur = r#"{"traceEvents":[{"name":"g","ph":"X","ts":1.5}]}"#;
        assert!(validate_chrome_trace(missing_dur).is_err());
        assert!(validate_chrome_trace("[1,2]").is_err());
    }

    #[test]
    fn prometheus_parsing_and_invariants() {
        let text = "# HELP a_total counts\n# TYPE a_total counter\na_total 3\n\
                    # TYPE h_ns histogram\nh_ns_bucket{le=\"5\"} 1\nh_ns_bucket{le=\"+Inf\"} 2\n\
                    h_ns_sum 105\nh_ns_count 2\n";
        let fams = parse_prometheus(text).unwrap();
        assert_eq!(fams.len(), 2);
        assert_eq!(fams[0].help, "counts");
        assert_eq!(fams[0].samples[0].value, 3.0);
        assert_eq!(fams[1].kind, "histogram");
        assert_eq!(fams[1].samples[0].label("le"), Some("5"));

        // Non-cumulative buckets rejected.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 2\n";
        assert!(parse_prometheus(bad).is_err());
        // Missing +Inf rejected.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\n";
        assert!(parse_prometheus(bad).is_err());
        // Stray sample rejected.
        assert!(parse_prometheus("x 1\n").is_err());
    }
}
