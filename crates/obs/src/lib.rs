//! # ink-obs — dependency-light observability for the InkStream workspace
//!
//! InkStream's core claim is latency: incremental GNN inference must beat
//! full recomputation *per update*, which makes per-phase telemetry a
//! first-class requirement rather than an afterthought. This crate provides
//! the three pieces every other crate in the workspace wires into:
//!
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   log-scale [`Histogram`]s. Recording a histogram sample is lock-free
//!   (atomics only) and allocation-free in steady state, so instruments can
//!   sit directly on the sharded pipeline's hot path. The registry renders
//!   everything as Prometheus text exposition.
//! * [`Tracer`] — a bounded ring buffer of spans (`Tracer::span("phase", ..)`)
//!   covering the five pipeline phases, drift audits, and serve request
//!   handling, dumpable as Chrome `trace_event` JSON for `chrome://tracing`
//!   or Perfetto.
//! * [`parse`] — minimal parsers for the two formats the crate emits, so
//!   tests and clients can round-trip and validate scrapes without external
//!   dependencies.
//!
//! The crate deliberately has **zero dependencies** (not even the workspace
//! shims) so it can be a leaf of every other crate's dependency graph.
//!
//! # Example: record, scrape, validate
//!
//! ```
//! use ink_obs::{MetricsRegistry, Tracer, parse};
//!
//! let registry = MetricsRegistry::new();
//! let lat = registry.histogram("ink_demo_latency_ns", "Demo latencies");
//! for v in [120u64, 450, 90_000] {
//!     lat.record(v);
//! }
//! registry.gauge("ink_demo_queue_depth", "Demo queue depth").set_u64(3);
//!
//! // Prometheus text round-trips through the bundled parser.
//! let text = registry.render_prometheus();
//! let families = parse::parse_prometheus(&text).unwrap();
//! assert_eq!(families.len(), 2);
//!
//! // Spans dump as valid Chrome trace JSON.
//! let tracer = Tracer::new(256);
//! { let _s = tracer.span("pipeline", "generate"); }
//! let dump = tracer.dump_chrome_trace();
//! assert_eq!(parse::validate_chrome_trace(&dump).unwrap(), 1);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod metrics;
pub mod parse;
pub mod tracer;

pub use metrics::{
    bucket_bounds, bucket_index, Counter, Gauge, Histogram, InstrumentKind, MetricsRegistry,
    NUM_BUCKETS,
};
pub use tracer::{Span, TraceEvent, Tracer};
