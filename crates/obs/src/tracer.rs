//! Ring-buffer span tracer with Chrome `trace_event` export.
//!
//! The tracer records fixed-size [`TraceEvent`]s — name, category, start
//! offset, duration, thread — into a preallocated ring. When the ring is
//! full, the oldest events are overwritten (and counted in
//! [`Tracer::dropped`]), so tracing is always-on with bounded memory.
//!
//! Spans come in two flavours:
//!
//! * live: [`Tracer::span`] returns a guard that measures wall time and
//!   records on drop;
//! * synthesized: [`Tracer::record_at`] backfills an event from an
//!   externally measured `(start, duration)` pair — used by the session to
//!   emit one event per pipeline phase from the engine's own timing, without
//!   instrumenting the hot loop twice.
//!
//! [`Tracer::dump_chrome_trace`] serializes the ring as Chrome
//! `trace_event` JSON (complete `"ph":"X"` events, microsecond timestamps),
//! loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (e.g. `"generate"`, `"embedding"`).
    pub name: &'static str,
    /// Category lane (e.g. `"pipeline"`, `"drift"`, `"serve"`).
    pub cat: &'static str,
    /// Start offset from the tracer's epoch, in nanoseconds.
    pub ts_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Small per-thread id (assigned in registration order).
    pub tid: u64,
}

#[derive(Debug)]
struct Ring {
    buf: Vec<TraceEvent>,
    /// Next write position once `buf` has reached capacity.
    head: usize,
}

/// Bounded always-on span recorder. See the [module docs](self) for an
/// overview.
///
/// # Example
///
/// ```
/// use ink_obs::Tracer;
///
/// let tracer = Tracer::new(1024);
/// {
///     let _span = tracer.span("pipeline", "generate");
///     // ... timed work ...
/// } // recorded when the guard drops
/// tracer.record_at("drift", "spot_audit", tracer.epoch(), std::time::Duration::from_micros(17));
///
/// assert_eq!(tracer.len(), 2);
/// let json = tracer.dump_chrome_trace();
/// assert!(json.contains("\"ph\":\"X\""));
/// assert!(json.contains("\"name\":\"generate\""));
/// ```
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    ring: Mutex<Ring>,
    capacity: usize,
    dropped: AtomicU64,
}

/// Guard returned by [`Tracer::span`]; records the span when dropped.
#[derive(Debug)]
pub struct Span<'a> {
    tracer: &'a Tracer,
    name: &'static str,
    cat: &'static str,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let dur = self.start.elapsed();
        self.tracer.record_at(self.cat, self.name, self.start, dur);
    }
}

fn thread_tid() -> u64 {
    use std::cell::Cell;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: Cell<u64> = const { Cell::new(0) };
    }
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Tracer {
    /// Creates a tracer retaining at most `capacity` events (minimum 1). The
    /// ring is preallocated; recording never allocates afterwards.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            epoch: Instant::now(),
            ring: Mutex::new(Ring { buf: Vec::with_capacity(capacity), head: 0 }),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// The instant all event timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Starts a live span; the returned guard records on drop.
    pub fn span(&self, cat: &'static str, name: &'static str) -> Span<'_> {
        Span { tracer: self, name, cat, start: Instant::now() }
    }

    /// Records a span from an externally measured start instant and duration.
    /// Starts earlier than the tracer's epoch clamp to offset zero.
    pub fn record_at(&self, cat: &'static str, name: &'static str, start: Instant, dur: Duration) {
        let ts_ns = start.saturating_duration_since(self.epoch).as_nanos() as u64;
        self.record_event(TraceEvent {
            name,
            cat,
            ts_ns,
            dur_ns: dur.as_nanos() as u64,
            tid: thread_tid(),
        });
    }

    /// Lowest-level entry point: pushes a fully formed event into the ring.
    pub fn record_event(&self, ev: TraceEvent) {
        let mut ring = self.ring.lock().expect("tracer lock poisoned");
        if ring.buf.len() < self.capacity {
            ring.buf.push(ev);
        } else {
            let head = ring.head;
            ring.buf[head] = ev;
            ring.head = (head + 1) % self.capacity;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("tracer lock poisoned").buf.len()
    }

    /// True when no events have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Discards all retained events (the drop counter is kept).
    pub fn clear(&self) {
        let mut ring = self.ring.lock().expect("tracer lock poisoned");
        ring.buf.clear();
        ring.head = 0;
    }

    /// Returns a snapshot of the retained events in chronological order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.ring.lock().expect("tracer lock poisoned");
        let mut out = Vec::with_capacity(ring.buf.len());
        if ring.buf.len() < self.capacity {
            out.extend_from_slice(&ring.buf);
        } else {
            out.extend_from_slice(&ring.buf[ring.head..]);
            out.extend_from_slice(&ring.buf[..ring.head]);
        }
        out.sort_by_key(|e| e.ts_ns);
        out
    }

    /// Serializes the retained events as Chrome `trace_event` JSON.
    ///
    /// The output is the object form (`{"traceEvents": [...], ...}`) with
    /// complete events (`"ph":"X"`); timestamps and durations are in
    /// microseconds with nanosecond precision kept as decimals. Load the
    /// dump in `chrome://tracing` or Perfetto for a flamegraph view.
    pub fn dump_chrome_trace(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}}}",
                escape_json(e.name),
                escape_json(e.cat),
                e.ts_ns as f64 / 1_000.0,
                e.dur_ns as f64 / 1_000.0,
                e.tid,
            ));
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop() {
        let t = Tracer::new(8);
        {
            let _s = t.span("pipeline", "generate");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(t.len(), 1);
        let ev = t.events()[0];
        assert_eq!(ev.name, "generate");
        assert_eq!(ev.cat, "pipeline");
        assert!(ev.dur_ns >= 1_000_000, "slept 1ms but recorded {}ns", ev.dur_ns);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let t = Tracer::new(4);
        for i in 0..10u64 {
            t.record_event(TraceEvent { name: "e", cat: "c", ts_ns: i, dur_ns: 1, tid: 1 });
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let ts: Vec<u64> = t.events().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![6, 7, 8, 9]);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 6);
    }

    #[test]
    fn chrome_dump_has_required_fields() {
        let t = Tracer::new(8);
        t.record_event(TraceEvent { name: "a\"b", cat: "c", ts_ns: 1_500, dur_ns: 2_000, tid: 3 });
        let json = t.dump_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"a\\\"b\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.000"));
        assert!(json.contains("\"tid\":3"));
    }

    #[test]
    fn record_at_clamps_pre_epoch_starts() {
        let before = Instant::now();
        let t = Tracer::new(4);
        t.record_at("c", "n", before, Duration::from_nanos(5));
        assert_eq!(t.events()[0].ts_ns, 0);
    }
}
