//! Steady-state guarantees of the record path: no allocation growth after
//! construction (mirroring the core pipeline's `scratch_pool_bytes_stable_
//! after_reuse` check) and correctness under concurrent recording with no
//! locks on the sample path.

use ink_obs::{Histogram, MetricsRegistry};
use std::sync::Arc;

/// The histogram's heap footprint is fixed at construction; heavy recording
/// across the full value range must not change it. This is the observability
/// analogue of the scratch-pool `bytes()` stability test in `ink-core`.
#[test]
fn histogram_bytes_stable_after_heavy_recording() {
    let h = Histogram::new();
    let before = h.bytes();
    assert!(before > 0);
    for i in 0..200_000u64 {
        // Sweep many octaves so every code path in bucket_index runs.
        h.record(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (i % 64));
    }
    assert_eq!(h.bytes(), before, "record path must not allocate");
    assert_eq!(h.count(), 200_000);
}

/// Registry re-lookup does not grow state either: scraping between bursts
/// returns the same instruments and the same footprint.
#[test]
fn registry_scrape_does_not_grow_instruments() {
    let r = MetricsRegistry::new();
    let h = r.histogram("ink_test_latency_ns", "test");
    let before = h.bytes();
    for round in 0..10 {
        for i in 0..1_000u64 {
            h.record(i * (round + 1));
        }
        let _ = r.render_prometheus();
        // Re-registering the same name must hand back the same histogram.
        let again = r.histogram("ink_test_latency_ns", "test");
        assert_eq!(again.count(), h.count());
    }
    assert_eq!(r.len(), 1);
    assert_eq!(h.bytes(), before);
}

/// Concurrent recorders never lose samples — the record path is atomics-only,
/// so totals must be exact regardless of interleaving.
#[test]
fn concurrent_recording_is_lossless() {
    let h = Arc::new(Histogram::new());
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * PER_THREAD + i);
                }
            })
        })
        .collect();
    for jh in handles {
        jh.join().unwrap();
    }
    let n = THREADS * PER_THREAD;
    assert_eq!(h.count(), n);
    assert_eq!(h.sum(), n * (n - 1) / 2);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), n - 1);
    assert_eq!(h.bucket_counts().iter().sum::<u64>(), n);
}
