//! Property tests: histogram quantile estimates stay within one bucket
//! boundary of the exact sample quantiles, across adversarial distributions
//! (constant, bimodal, heavy-tail).

use ink_obs::{bucket_bounds, bucket_index, Histogram};
use proptest::collection;
use proptest::prelude::*;
use proptest::TestCaseError;

const QS: [f64; 4] = [0.50, 0.90, 0.99, 0.999];

/// Exact quantile under the same rank rule the histogram uses:
/// the sample of rank `ceil(q * n)` (1-based).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let target = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(target - 1) as usize]
}

fn check_distribution(samples: &[u64]) -> Result<(), TestCaseError> {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();

    prop_assert_eq!(h.count(), samples.len() as u64);
    prop_assert_eq!(h.min(), sorted[0]);
    prop_assert_eq!(h.max(), *sorted.last().unwrap());

    for q in QS {
        let exact = exact_quantile(&sorted, q);
        let est = h.quantile(q);
        // The estimate never undershoots and lands in the same log bucket as
        // the exact quantile, so the error is bounded by one bucket width.
        prop_assert!(est >= exact, "q={q}: estimate {est} < exact {exact}");
        prop_assert!(
            bucket_index(est) == bucket_index(exact),
            "q={q}: estimate {est} left the exact quantile's bucket (exact {exact})"
        );
        let (lo, hi) = bucket_bounds(bucket_index(exact));
        prop_assert!(est - exact <= hi - lo, "q={q}: error exceeds bucket width");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn constant_distribution(value in 0u64..(1u64 << 40), len in 1usize..500) {
        let samples = vec![value; len];
        check_distribution(&samples)?;
        // Degenerate case: every quantile of a constant stream sits in the
        // constant's own bucket.
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        prop_assert_eq!(bucket_index(h.quantile(0.5)), bucket_index(value));
    }

    #[test]
    fn bimodal_distribution(
        low in 0u64..1_000,
        high in (1u64 << 20)..(1u64 << 30),
        n_low in 1usize..300,
        n_high in 1usize..300,
    ) {
        let mut samples = vec![low; n_low];
        samples.extend(std::iter::repeat_n(high, n_high));
        check_distribution(&samples)?;
    }

    #[test]
    fn heavy_tail_distribution(
        parts in collection::vec((1u64..16, 0u32..50), 1..400),
    ) {
        // mantissa << shift spans ~15 orders of magnitude with log-uniform
        // mass — most samples tiny, a few enormous.
        let samples: Vec<u64> = parts.iter().map(|&(m, s)| m << s).collect();
        check_distribution(&samples)?;
    }

    #[test]
    fn mixed_arbitrary_distribution(samples in collection::vec(0u64..u64::MAX, 1..600)) {
        check_distribution(&samples)?;
    }
}
