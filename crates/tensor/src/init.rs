//! Deterministic weight and feature initialisation.
//!
//! Inference cost is independent of the weight values, so the performance
//! experiments use seeded random weights (Glorot-uniform, the PyG default for
//! the benchmarked layers). Seeding makes every table in EXPERIMENTS.md
//! reproducible exactly.

use crate::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded RNG for experiment reproducibility.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Glorot/Xavier-uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn glorot_uniform(rng: &mut StdRng, fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| (rng.random_range(-a..a)) as f32)
}

/// Uniform matrix in `[lo, hi)`.
pub fn uniform(rng: &mut StdRng, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(lo..hi))
}

/// Standard-normal matrix (Box–Muller; good enough for feature synthesis).
pub fn normal(rng: &mut StdRng, rows: usize, cols: usize, mean: f32, std: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| mean + std * sample_standard_normal(rng))
}

/// Sparse, heavy-tailed synthetic node features.
///
/// Real graph datasets (bag-of-words citations, review embeddings) have two
/// properties uniform noise lacks, and both matter to InkStream's evaluation:
/// sparsity, and a heavy-tailed per-node magnitude — a few "strong" nodes
/// dominate max-aggregation in most channels, which is precisely what makes
/// most nodes *resilient* to a random edge change (paper Fig. 1b). Each row
/// gets a Pareto(α)-distributed scale (capped at 100×) times a
/// `density`-sparse uniform direction.
pub fn sparse_power_law(
    rng: &mut StdRng,
    rows: usize,
    cols: usize,
    density: f64,
    alpha: f64,
) -> Matrix {
    assert!(alpha > 0.0 && (0.0..=1.0).contains(&density));
    let mut scale = 1.0f64;
    Matrix::from_fn(rows, cols, |_, c| {
        if c == 0 {
            let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            scale = u.powf(-1.0 / alpha).min(100.0);
        }
        if rng.random_range(0.0..1.0) < density {
            (rng.random_range(-1.0..1.0) * scale) as f32
        } else {
            0.0
        }
    })
}

/// One standard-normal sample via Box–Muller.
pub fn sample_standard_normal(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = glorot_uniform(&mut seeded_rng(7), 8, 4);
        let b = glorot_uniform(&mut seeded_rng(7), 8, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = glorot_uniform(&mut seeded_rng(1), 8, 4);
        let b = glorot_uniform(&mut seeded_rng(2), 8, 4);
        assert_ne!(a, b);
    }

    #[test]
    fn glorot_respects_bound() {
        let m = glorot_uniform(&mut seeded_rng(3), 10, 10);
        let a = (6.0_f32 / 20.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= a));
    }

    #[test]
    fn uniform_respects_range() {
        let m = uniform(&mut seeded_rng(4), 20, 5, -1.5, 2.5);
        assert!(m.as_slice().iter().all(|&x| (-1.5..2.5).contains(&x)));
    }

    #[test]
    fn sparse_power_law_density_and_tail() {
        let m = sparse_power_law(&mut seeded_rng(8), 500, 40, 0.25, 1.3);
        let nonzero = m.as_slice().iter().filter(|&&x| x != 0.0).count();
        let frac = nonzero as f64 / (500.0 * 40.0);
        assert!((frac - 0.25).abs() < 0.03, "density {frac}");
        // Heavy tail: the strongest row should dwarf the median row.
        let mut norms: Vec<f32> = (0..500)
            .map(|r| m.row(r).iter().map(|x| x * x).sum::<f32>().sqrt())
            .collect();
        norms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(norms[499] > 10.0 * norms[250], "tail {} vs median {}", norms[499], norms[250]);
    }

    #[test]
    fn sparse_power_law_is_deterministic() {
        let a = sparse_power_law(&mut seeded_rng(9), 20, 5, 0.5, 2.0);
        let b = sparse_power_law(&mut seeded_rng(9), 20, 5, 0.5, 2.0);
        assert_eq!(a, b);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let m = normal(&mut seeded_rng(5), 200, 50, 1.0, 2.0);
        let n = m.as_slice().len() as f32;
        let mean: f32 = m.as_slice().iter().sum::<f32>() / n;
        let var: f32 = m.as_slice().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.4, "var {var}");
    }
}
