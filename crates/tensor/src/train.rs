//! Softmax-regression trainer.
//!
//! The Fig. 9 study (GraphNorm approximation) is the one experiment where
//! model *accuracy* matters, so random conv weights are not enough: a
//! classifier head is trained on frozen GNN embeddings with plain batch
//! gradient descent. This is the substitution documented in DESIGN.md — the
//! GraphNorm statistics path being studied is identical to the paper's; only
//! the upstream feature extractor is lighter.

use crate::reduce::argmax;
use crate::Matrix;

/// A trained softmax (multinomial logistic regression) classifier.
#[derive(Clone, Debug)]
pub struct SoftmaxClassifier {
    /// `(in_dim × classes)` weights.
    pub weight: Matrix,
    /// Per-class bias.
    pub bias: Vec<f32>,
}

/// Training hyper-parameters for [`fit_softmax`].
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Full-batch gradient steps.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// L2 regularisation strength.
    pub l2: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 200, lr: 0.5, l2: 1e-4 }
    }
}

/// Row-wise softmax in place.
fn softmax_rows(logits: &mut Matrix) {
    for r in 0..logits.rows() {
        let row = logits.row_mut(r);
        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = (*x - mx).exp();
            sum += *x;
        }
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

/// Trains a softmax classifier on rows `x[train_idx]` with labels
/// `labels[train_idx]` by full-batch gradient descent.
pub fn fit_softmax(
    x: &Matrix,
    labels: &[usize],
    train_idx: &[usize],
    classes: usize,
    cfg: TrainConfig,
) -> SoftmaxClassifier {
    assert_eq!(x.rows(), labels.len(), "one label per row");
    assert!(classes >= 2);
    let d = x.cols();
    let mut w = Matrix::zeros(d, classes);
    let mut b = vec![0.0f32; classes];
    let n = train_idx.len().max(1) as f32;

    // Gather the training submatrix once.
    let mut xt = Matrix::zeros(train_idx.len(), d);
    for (i, &r) in train_idx.iter().enumerate() {
        xt.set_row(i, x.row(r));
    }

    for _ in 0..cfg.epochs {
        // Forward: probabilities for the training rows.
        let mut probs = xt.matmul(&w);
        for r in 0..probs.rows() {
            crate::ops::add_assign(probs.row_mut(r), &b);
        }
        softmax_rows(&mut probs);
        // Gradient of cross-entropy: X^T (p - y) / n.
        for (i, &r) in train_idx.iter().enumerate() {
            probs.row_mut(i)[labels[r]] -= 1.0;
        }
        let grad_w = xt.transpose().matmul(&probs);
        let mut grad_b = vec![0.0f32; classes];
        for i in 0..probs.rows() {
            crate::ops::add_assign(&mut grad_b, probs.row(i));
        }
        // Step.
        for (wv, gv) in w.as_mut_slice().iter_mut().zip(grad_w.as_slice()) {
            *wv -= cfg.lr * (gv / n + cfg.l2 * *wv);
        }
        for (bv, gv) in b.iter_mut().zip(&grad_b) {
            *bv -= cfg.lr * gv / n;
        }
    }
    SoftmaxClassifier { weight: w, bias: b }
}

impl SoftmaxClassifier {
    /// Predicted class for a single embedding.
    pub fn predict(&self, x: &[f32]) -> usize {
        let mut logits = vec![0.0; self.bias.len()];
        self.weight.vecmul(x, &mut logits);
        crate::ops::add_assign(&mut logits, &self.bias);
        argmax(&logits)
    }

    /// Accuracy over the rows in `idx`.
    pub fn accuracy(&self, x: &Matrix, labels: &[usize], idx: &[usize]) -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        let correct = idx.iter().filter(|&&r| self.predict(x.row(r)) == labels[r]).count();
        correct as f64 / idx.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{normal, seeded_rng};

    /// Two well-separated Gaussian blobs must be perfectly classified.
    #[test]
    fn separable_blobs_reach_high_accuracy() {
        let mut rng = seeded_rng(42);
        let a = normal(&mut rng, 50, 4, -2.0, 0.3);
        let b = normal(&mut rng, 50, 4, 2.0, 0.3);
        let mut x = Matrix::zeros(100, 4);
        let mut labels = vec![0usize; 100];
        for i in 0..50 {
            x.set_row(i, a.row(i));
            x.set_row(50 + i, b.row(i));
            labels[50 + i] = 1;
        }
        let idx: Vec<usize> = (0..100).collect();
        let clf = fit_softmax(&x, &labels, &idx, 2, TrainConfig::default());
        assert!(clf.accuracy(&x, &labels, &idx) > 0.98);
    }

    #[test]
    fn three_class_problem_beats_chance() {
        let mut rng = seeded_rng(7);
        let mut x = Matrix::zeros(150, 3);
        let mut labels = vec![0usize; 150];
        for c in 0..3 {
            let blob = normal(&mut rng, 50, 3, 0.0, 0.5);
            for i in 0..50 {
                let mut row = blob.row(i).to_vec();
                row[c] += 3.0;
                x.set_row(c * 50 + i, &row);
                labels[c * 50 + i] = c;
            }
        }
        let idx: Vec<usize> = (0..150).collect();
        let clf = fit_softmax(&x, &labels, &idx, 3, TrainConfig::default());
        assert!(clf.accuracy(&x, &labels, &idx) > 0.9);
    }

    #[test]
    fn accuracy_on_empty_index_is_zero() {
        let clf = SoftmaxClassifier { weight: Matrix::zeros(2, 2), bias: vec![0.0; 2] };
        let x = Matrix::zeros(3, 2);
        assert_eq!(clf.accuracy(&x, &[0, 0, 0], &[]), 0.0);
    }

    #[test]
    fn training_only_uses_train_rows() {
        // Identical features, contradictory labels outside the train set must
        // not affect the fit.
        let mut x = Matrix::zeros(4, 1);
        x.set(0, 0, -1.0);
        x.set(1, 0, 1.0);
        x.set(2, 0, -1.0);
        x.set(3, 0, 1.0);
        let labels = vec![0, 1, 1, 0]; // rows 2,3 are mislabeled but unused
        let clf = fit_softmax(&x, &labels, &[0, 1], 2, TrainConfig::default());
        assert_eq!(clf.predict(x.row(0)), 0);
        assert_eq!(clf.predict(x.row(1)), 1);
    }
}
