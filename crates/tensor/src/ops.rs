//! Element-wise vector kernels.
//!
//! These are the primitives the aggregation phase is built from. The
//! monotonic-aggregation rules in InkStream reason channel-by-channel about
//! equality between an old aggregate and a deleted message, so the comparison
//! kernels here are deliberately *bit-exact* (`==` on `f32`), matching the
//! paper's claim of bit-level identical results for max/min aggregation.

/// `dst += src`.
#[inline]
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// `dst -= src`.
#[inline]
pub fn sub_assign(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d -= s;
    }
}

/// `dst += a * src` (fused multiply-add over the slice).
#[inline]
pub fn axpy(dst: &mut [f32], a: f32, src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d += a * s;
    }
}

/// `dst *= a`.
#[inline]
pub fn scale(dst: &mut [f32], a: f32) {
    for d in dst.iter_mut() {
        *d *= a;
    }
}

/// Element-wise maximum into `dst`.
#[inline]
pub fn max_assign(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        if *s > *d {
            *d = *s;
        }
    }
}

/// Element-wise minimum into `dst`.
#[inline]
pub fn min_assign(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        if *s < *d {
            *d = *s;
        }
    }
}

/// Dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Bit-exact slice equality (`f32 ==` per channel; NaN never equal).
#[inline]
pub fn eq_exact(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x == y)
}

/// True when every channel differs by at most `tol`.
#[inline]
pub fn allclose(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

/// Maximum absolute difference between two slices.
#[inline]
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let mut a = vec![1.0, 2.0, 3.0];
        let b = vec![0.5, -1.0, 2.0];
        add_assign(&mut a, &b);
        assert_eq!(a, vec![1.5, 1.0, 5.0]);
        sub_assign(&mut a, &b);
        assert_eq!(a, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = vec![1.0, 1.0];
        axpy(&mut a, 2.0, &[3.0, -4.0]);
        assert_eq!(a, vec![7.0, -7.0]);
    }

    #[test]
    fn scale_by_zero_clears() {
        let mut a = vec![5.0, -3.0];
        scale(&mut a, 0.0);
        assert_eq!(a, vec![0.0, 0.0]);
    }

    #[test]
    fn max_min_assign_select_per_channel() {
        let mut mx = vec![1.0, 5.0, -2.0];
        max_assign(&mut mx, &[3.0, 4.0, -2.0]);
        assert_eq!(mx, vec![3.0, 5.0, -2.0]);
        let mut mn = vec![1.0, 5.0, -2.0];
        min_assign(&mut mn, &[3.0, 4.0, -2.0]);
        assert_eq!(mn, vec![1.0, 4.0, -2.0]);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn eq_exact_is_bitwise() {
        assert!(eq_exact(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(!eq_exact(&[1.0], &[1.0 + f32::EPSILON]));
        assert!(!eq_exact(&[f32::NAN], &[f32::NAN]));
        assert!(!eq_exact(&[1.0], &[1.0, 2.0]));
    }

    #[test]
    fn allclose_tolerance_boundary() {
        assert!(allclose(&[1.0], &[1.1], 0.100001));
        assert!(!allclose(&[1.0], &[1.2], 0.1));
    }

    #[test]
    fn max_abs_diff_picks_worst_channel() {
        assert_eq!(max_abs_diff(&[0.0, 1.0, 2.0], &[0.0, 3.0, 2.5]), 2.0);
    }
}
